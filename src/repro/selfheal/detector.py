"""Heartbeat-driven failure detection on the simulated clock.

Each ring member runs a heartbeat loop: every ``heartbeat_interval`` (±
bounded, deterministic jitter — :func:`repro.resilience.backoff.
unit_interval` hashed over ``(member, tick)``, so replays are
bit-identical) it stamps its liveness into the shared
:class:`~repro.selfheal.memberlist.Memberlist`, *provided the process is
actually alive*: a crashed ingester's loop keeps ticking but stops
stamping, which is exactly how the silence a real cluster observes
arises.  A gray failure (``HEARTBEAT_LOSS``) mutes the loop without
touching the process — the member keeps serving reads and writes while
its heartbeats vanish.

A periodic sweep then demotes stale members::

    age > suspect_after          ACTIVE  → SUSPECT
    age > dead_after             SUSPECT → DEAD

Config validation enforces ``suspect_after > heartbeat_interval * (1 +
jitter)``: a healthy member's age can never legitimately reach the
suspicion threshold, so a healthy detector never flaps — the property
the Hypothesis suite pins down.  Detection latency is likewise bounded:
a member going silent at time *t* is declared DEAD no later than
``t + heartbeat_interval*(1+jitter) + dead_after + 2*sweep_interval``
(two sweeps because DEAD is only reachable via SUSPECT).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.simclock import NANOS_PER_SECOND, SimClock
from repro.resilience.backoff import unit_interval
from repro.ring.cluster import RingLokiCluster
from repro.selfheal.memberlist import Memberlist, MemberState
from repro.tempo.tracer import Tracer


@dataclass(frozen=True)
class FailureDetectorConfig:
    """Timeout-and-suspicion thresholds, all on the sim clock."""

    heartbeat_interval_ns: int = 5 * NANOS_PER_SECOND
    #: Heartbeat age (since last stamp) past which ACTIVE → SUSPECT.
    suspect_after_ns: int = 15 * NANOS_PER_SECOND
    #: Heartbeat age past which SUSPECT → DEAD.
    dead_after_ns: int = 45 * NANOS_PER_SECOND
    sweep_interval_ns: int = 5 * NANOS_PER_SECOND
    #: Fractional jitter on each heartbeat gap: tick ``n`` fires after
    #: ``interval * (1 + jitter * unit_interval(member, n))``.
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.heartbeat_interval_ns <= 0:
            raise ValidationError("heartbeat interval must be positive")
        if self.sweep_interval_ns <= 0:
            raise ValidationError("sweep interval must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError("jitter must be in [0, 1)")
        worst_gap = self.heartbeat_interval_ns * (1.0 + self.jitter)
        if self.suspect_after_ns <= worst_gap:
            raise ValidationError(
                "suspect_after must exceed the worst-case heartbeat gap "
                f"({int(worst_gap)}ns) or healthy members would flap"
            )
        if self.dead_after_ns <= self.suspect_after_ns:
            raise ValidationError("dead_after must exceed suspect_after")

    @property
    def max_detection_latency_ns(self) -> int:
        """Upper bound on silence → DEAD, for the benches to verify.

        Two sweep intervals, not one: DEAD is only reachable from
        SUSPECT, so when both thresholds fall inside the same sweep gap
        one sweep demotes to SUSPECT and the *next* one declares DEAD.
        """
        return int(
            self.heartbeat_interval_ns * (1.0 + self.jitter)
            + self.dead_after_ns
            + 2 * self.sweep_interval_ns
        )


class FailureDetector:
    """Per-member heartbeat loops + the staleness sweep."""

    def __init__(
        self,
        clock: SimClock,
        cluster: RingLokiCluster,
        memberlist: Memberlist,
        config: FailureDetectorConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.clock = clock
        self.cluster = cluster
        self.memberlist = memberlist
        self.config = config or FailureDetectorConfig()
        self.tracer = tracer
        self._muted: set[str] = set()
        self._started = False
        self.sweeps = 0
        #: member → time its heartbeats were last observed missing, for
        #: the bench's detection-latency measurement.
        self.detected_dead_at_ns: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Gray-failure hooks (HEARTBEAT_LOSS fault)
    # ------------------------------------------------------------------
    def mute(self, member: str) -> None:
        """Silence a member's heartbeats without touching its process."""
        self._muted.add(member)

    def unmute(self, member: str) -> None:
        self._muted.discard(member)

    def muted(self, member: str) -> bool:
        return member in self._muted

    # ------------------------------------------------------------------
    # Loops
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start one heartbeat loop per registered member + the sweep."""
        if self._started:
            return
        self._started = True
        for member in self.memberlist.members():
            self._schedule_heartbeat(member, tick=0)
        self.clock.every(self.config.sweep_interval_ns, self.sweep)

    def watch(self, member: str) -> None:
        """Start heartbeating a member registered after :meth:`start`."""
        if self._started:
            self._schedule_heartbeat(member, tick=0)

    def _schedule_heartbeat(self, member: str, tick: int) -> None:
        gap = int(
            self.config.heartbeat_interval_ns
            * (1.0 + self.config.jitter * unit_interval(member, tick))
        )
        self.clock.call_later(gap, lambda: self._beat(member, tick))

    def _beat(self, member: str, tick: int) -> None:
        ingester = self.cluster.ingesters.get(member)
        if ingester is None:
            return  # removed from the cluster: loop ends
        state = self.memberlist.state_of(member)
        if state is MemberState.FORGOTTEN:
            return
        if ingester.active and member not in self._muted:
            self.memberlist.heartbeat(member)
        self._schedule_heartbeat(member, tick + 1)

    def sweep(self) -> None:
        """Demote members whose heartbeat stamps went stale."""
        self.sweeps += 1
        now = self.clock.now_ns
        for member in self.memberlist.members():
            state = self.memberlist.state_of(member)
            age = self.memberlist.heartbeat_age_ns(member)
            if state is MemberState.ACTIVE and age > self.config.suspect_after_ns:
                self.memberlist.suspect(member)
                self._span("suspect", member, age)
            elif state is MemberState.SUSPECT and age > self.config.dead_after_ns:
                self.memberlist.declare_dead(member)
                self.detected_dead_at_ns[member] = now
                self._span("declare_dead", member, age)

    def _span(self, name: str, member: str, age_ns: int) -> None:
        if self.tracer is None:
            return
        now = self.clock.now_ns
        self.tracer.record(
            "selfheal",
            name,
            None,
            start_ns=now,
            end_ns=now,
            attributes={
                "member": member,
                "heartbeat_age_seconds": f"{age_ns / NANOS_PER_SECOND:.3f}",
            },
        )
