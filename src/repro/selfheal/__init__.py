"""repro.selfheal: failure detection, zone-aware replication, repair.

The ingest ring (``repro.ring``) tolerates crashes *passively*: quorum
writes keep accepting and quorum reads keep answering while a replica is
down, but nothing ever notices the failure, routes around it, or
restores the lost redundancy.  This package closes that loop:

* a heartbeat-driven **failure detector** moves ring members through
  ``ACTIVE → SUSPECT → DEAD → FORGOTTEN`` on the simulated clock
  (:mod:`repro.selfheal.memberlist`, :mod:`repro.selfheal.detector`);
* the distributor consults the shared memberlist to skip unhealthy
  replicas on writes and reads (zone-aware placement keeps the
  survivors failure-independent);
* an **anti-entropy repairer** re-replicates a dead member's streams
  onto the surviving ring owners, then forgets the member and releases
  its tokens (:mod:`repro.selfheal.repairer`);
* a **supervisor** restarts crashed-but-recoverable ingesters with
  capped exponential backoff (:mod:`repro.selfheal.supervisor`).

:class:`repro.selfheal.manager.SelfHealManager` composes the four and is
what the framework wires in behind ``enable_self_healing``.
"""

from repro.selfheal.detector import FailureDetector, FailureDetectorConfig
from repro.selfheal.manager import SelfHealConfig, SelfHealManager
from repro.selfheal.memberlist import Memberlist, MemberState, MemberView
from repro.selfheal.repairer import RepairReport, RingRepairer, RingRepairerConfig
from repro.selfheal.supervisor import IngesterSupervisor, SupervisorConfig

__all__ = [
    "FailureDetector",
    "FailureDetectorConfig",
    "IngesterSupervisor",
    "MemberState",
    "MemberView",
    "Memberlist",
    "RepairReport",
    "RingRepairer",
    "RingRepairerConfig",
    "SelfHealConfig",
    "SelfHealManager",
    "SupervisorConfig",
]
