"""Anti-entropy repair: restore lost redundancy after permanent loss.

When the detector declares a member DEAD and it stays dead past a grace
period (long enough for the supervisor's restarts to have worked if they
were going to), the repairer retires it:

1. **Release its tokens.**  The member leaves the ring, so desired
   placement for every stream becomes the post-removal clockwise walk —
   which is, by consistent hashing, exactly the walk the distributor's
   health-excluded writes were already extending onto.  New writes and
   the repair target therefore agree.
2. **Diff placement against reality.**  For every stream the survivors
   hold, the desired replica set (``distributor.replicas_for``) is
   compared with the actual per-ingester inventories.  A desired replica
   holding fewer resident entries than the fullest surviving copy is
   under-replicated.
3. **Re-replicate.**  The fullest surviving replicas donate: their
   merged history is grafted onto each short target via
   :meth:`~repro.ring.ingester.Ingester.repair_stream` (a from-scratch
   rebuild, because a target holding only a *suffix* cannot accept older
   entries through the ordinary push path).  Touched targets are
   checkpointed, re-anchoring WAL durability at the repaired state; a
   crash between graft and checkpoint merely re-surfaces the gap for the
   next sweep.
4. **Forget the member.**  Terminal — a zombie heartbeat can no longer
   resurrect it — and the husk leaves the ingester map.

Only *resident* entries are copied.  Chunks already shipped to the cold
tier are durable and replica-deduplicated there; re-replicating them
would double-count what the object store already guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import StateError, ValidationError
from repro.common.labels import LabelSet
from repro.common.simclock import NANOS_PER_SECOND, SimClock
from repro.ring.cluster import RingLokiCluster
from repro.ring.merge import merge_replica_entries
from repro.selfheal.memberlist import Memberlist, MemberState
from repro.tempo.tracer import Tracer


@dataclass(frozen=True)
class RingRepairerConfig:
    #: How long a member must stay DEAD before repair retires it — the
    #: supervisor's window to bring a recoverable member back instead.
    grace_ns: int = 30 * NANOS_PER_SECOND
    sweep_interval_ns: int = 10 * NANOS_PER_SECOND

    def __post_init__(self) -> None:
        if self.grace_ns < 0:
            raise ValidationError("grace must be >= 0")
        if self.sweep_interval_ns <= 0:
            raise ValidationError("sweep interval must be positive")


@dataclass
class RepairReport:
    """What one :meth:`RingRepairer.repair_member` run did."""

    member: str
    streams_examined: int = 0
    streams_repaired: int = 0
    entries_copied: int = 0
    targets_checkpointed: int = 0
    transfers: list[tuple[str, str, int]] = field(default_factory=list)


class RingRepairer:
    """Retires DEAD members by re-replicating their streams."""

    def __init__(
        self,
        clock: SimClock,
        cluster: RingLokiCluster,
        memberlist: Memberlist,
        config: RingRepairerConfig | None = None,
        tracer: Tracer | None = None,
        holdback: Callable[[str], bool] | None = None,
    ) -> None:
        self.clock = clock
        self.cluster = cluster
        self.memberlist = memberlist
        self.config = config or RingRepairerConfig()
        self.tracer = tracer
        #: Optional predicate: DEAD members it returns True for are *not*
        #: retired — a known, bounded outage (e.g. the supervisor holds
        #: their whole zone down) where mass data movement would be
        #: wasted work; the supervisor restarts them when it lifts.
        self.holdback = holdback
        self.members_held_back = 0
        self._started = False
        self.sweeps = 0
        self.members_repaired_total = 0
        self.streams_repaired_total = 0
        self.entries_copied_total = 0
        self.heals_total = 0
        self.reports: list[RepairReport] = []

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.clock.every(self.config.sweep_interval_ns, self.sweep)

    # ------------------------------------------------------------------
    # Observation: placement vs. reality
    # ------------------------------------------------------------------
    def _usable(self, member: str) -> bool:
        """Whether a member's replica counts toward redundancy: process
        up and not written off by the detector."""
        ingester = self.cluster.ingesters.get(member)
        if ingester is None or not ingester.active:
            return False
        return not self.memberlist.read_excluded(member)

    def _inventories(self) -> dict[str, dict[LabelSet, int]]:
        return {
            member: self.cluster.ingesters[member].stream_inventory()
            for member in self.cluster.ingesters
            if self._usable(member)
        }

    def placement_diff(self) -> dict[LabelSet, list[str]]:
        """Streams whose desired replicas are missing resident entries:
        stream → the under-filled target members.  Empty means the ring
        is fully replicated — the Hypothesis suite's convergence check
        and the exporter's ``under_replicated_streams`` gauge."""
        inventories = self._inventories()
        streams: set[LabelSet] = set()
        for inventory in inventories.values():
            streams.update(inventory)
        diff: dict[LabelSet, list[str]] = {}
        for labels in streams:
            fullest = max(
                (inv.get(labels, 0) for inv in inventories.values()),
                default=0,
            )
            if fullest == 0:
                continue
            short = [
                target
                for target in self._desired(labels)
                if self._usable(target)
                and inventories.get(target, {}).get(labels, 0) < fullest
            ]
            if short:
                diff[labels] = short
        return diff

    def _desired(self, labels: LabelSet) -> list[str]:
        """The stream's *effective* desired replica set: the ring walk
        excluding unusable members, i.e. where replicas should live
        given the failures in effect right now.  (A DEAD member still
        holding tokens must not count as a valid home — its slot falls
        to the next survivor clockwise, which is also where the
        distributor's health-excluded writes already land.)  When fewer
        ring members remain than the replication factor asks for,
        degrade explicitly to full replication over every survivor."""
        unusable = {
            member
            for member in self.cluster.ring.members()
            if not self._usable(member)
        }
        try:
            return self.cluster.distributor.replicas_excluding(
                labels, unusable
            )
        except StateError:
            return [
                m for m in self.cluster.ring.members() if m not in unusable
            ]

    def under_replicated_streams(self) -> int:
        return len(self.placement_diff())

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def sweep(self) -> None:
        """Retire every member DEAD past the grace period; when the
        cluster is fully healthy, run an anti-entropy heal pass."""
        self.sweeps += 1
        dead = self.memberlist.in_state(MemberState.DEAD)
        for member in dead:
            if self.memberlist.state_age_ns(member) < self.config.grace_ns:
                continue
            if self.holdback is not None and self.holdback(member):
                self.members_held_back += 1
                continue
            self.repair_member(member)
        # A residual diff with *no* failure in progress is not a failure
        # at all — it is a scale-out newcomer or a voluntary leave that
        # left a desired target empty.  Heal it here; during a failure
        # window the supervisor (restart + WAL replay) or repair_member
        # owns resolution, and copying early would pre-empt the cheaper
        # path.
        if (
            not dead
            and not self.memberlist.in_state(MemberState.SUSPECT)
            and all(i.active for i in self.cluster.ingesters.values())
        ):
            self.heal()

    def heal(self) -> RepairReport | None:
        """One anti-entropy pass with no member to retire: close the
        gaps the current placement diff shows (an empty scale-out
        newcomer now inside a stream's walk, a voluntary leave that
        shifted placement onto a member without the history).  Returns
        the report, or ``None`` if the ring was already converged."""
        start_ns = self.clock.now_ns
        diff = self.placement_diff()
        if not diff:
            return None
        report = RepairReport(member="")
        self._graft(diff, report)
        self.heals_total += 1
        self.streams_repaired_total += report.streams_repaired
        self.entries_copied_total += report.entries_copied
        self.reports.append(report)
        if self.tracer is not None:
            self.tracer.record(
                "selfheal",
                "heal",
                None,
                start_ns=start_ns,
                end_ns=self.clock.now_ns,
                attributes={
                    "streams_repaired": str(report.streams_repaired),
                    "entries_copied": str(report.entries_copied),
                },
            )
        return report

    def _graft(
        self, diff: dict[LabelSet, list[str]], report: RepairReport
    ) -> None:
        """Re-replicate every short target in ``diff`` from the fullest
        surviving copies, then checkpoint the touched targets so a later
        crash replays the grafted history, not the pre-repair one."""
        inventories = self._inventories()
        touched: set[str] = set()
        for labels, targets in sorted(
            diff.items(), key=lambda pair: pair[0].items_tuple()
        ):
            report.streams_examined += 1
            donors = [
                self.cluster.ingesters[m].entries_of(labels)
                for m, inv in sorted(inventories.items())
                if inv.get(labels, 0) > 0
            ]
            if not donors:
                continue
            merged = merge_replica_entries(donors)
            repaired_here = False
            for target in targets:
                before = inventories.get(target, {}).get(labels, 0)
                got = self.cluster.ingesters[target].repair_stream(
                    labels, merged
                )
                copied = max(0, got - before)
                report.entries_copied += copied
                report.transfers.append((target, str(labels), copied))
                touched.add(target)
                repaired_here = True
            if repaired_here:
                report.streams_repaired += 1
        for target in sorted(touched):
            self.cluster.ingesters[target].checkpoint()
            report.targets_checkpointed += 1

    def repair_member(self, member: str) -> RepairReport:
        """Release the member's tokens, heal the under-replication its
        loss caused, and forget it."""
        start_ns = self.clock.now_ns
        report = RepairReport(member=member)
        # Tokens first: desired placement must be the post-removal walk
        # before the diff is computed, or we would "repair" toward a
        # layout that still includes the dead member.
        if member in self.cluster.ring.members():
            self.cluster.ring.leave(member)
        self._graft(self.placement_diff(), report)
        self.memberlist.forget(member)
        self.cluster.remove_ingester(member)
        self.members_repaired_total += 1
        self.streams_repaired_total += report.streams_repaired
        self.entries_copied_total += report.entries_copied
        self.reports.append(report)
        if self.tracer is not None:
            self.tracer.record(
                "selfheal",
                "repair_member",
                None,
                start_ns=start_ns,
                end_ns=self.clock.now_ns,
                attributes={
                    "member": member,
                    "streams_repaired": str(report.streams_repaired),
                    "entries_copied": str(report.entries_copied),
                },
            )
        return report
