"""The ingester supervisor: restart what can be restarted.

Crashes come in two flavours and the self-healing loop treats them very
differently:

* **Recoverable** — the process died but the node is fine.  The
  supervisor restarts it (WAL replay rebuilds the exact pre-crash
  store), spacing repeated attempts with the stack's deterministic
  capped exponential backoff so a crash-looping member does not burn
  the cluster down.  The restarted member heartbeats again and the
  detector snaps it back to ACTIVE — no data ever moved.
* **Permanent** — the node is gone (marked unrecoverable by the fault,
  e.g. hardware loss) or its whole zone is down.  The supervisor leaves
  it alone; once the detector declares it DEAD and the grace period
  passes, the anti-entropy repairer re-replicates its streams instead.

The distinction is the crux: restarting is cheap (replay from local
WAL), repair is expensive (copy history across the ring), so the grace
period gives restarts first claim and repair handles only what restarts
cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.simclock import NANOS_PER_SECOND, SimClock
from repro.resilience.backoff import BackoffPolicy
from repro.ring.cluster import RingLokiCluster
from repro.selfheal.memberlist import Memberlist, MemberState


def _default_backoff() -> BackoffPolicy:
    return BackoffPolicy(
        base_ns=2 * NANOS_PER_SECOND,
        cap_ns=60 * NANOS_PER_SECOND,
        multiplier=2.0,
        jitter=0.2,
        seed=0x5E1F,
    )


@dataclass(frozen=True)
class SupervisorConfig:
    sweep_interval_ns: int = 5 * NANOS_PER_SECOND
    backoff: BackoffPolicy = field(default_factory=_default_backoff)

    def __post_init__(self) -> None:
        if self.sweep_interval_ns <= 0:
            raise ValidationError("sweep interval must be positive")


class IngesterSupervisor:
    """Auto-restarts crashed-but-recoverable ring members."""

    def __init__(
        self,
        clock: SimClock,
        cluster: RingLokiCluster,
        memberlist: Memberlist,
        config: SupervisorConfig | None = None,
    ) -> None:
        self.clock = clock
        self.cluster = cluster
        self.memberlist = memberlist
        self.config = config or SupervisorConfig()
        self._unrecoverable: set[str] = set()
        self._down_zones: set[str] = set()
        # member → (consecutive restart attempts, next attempt time).
        self._attempts: dict[str, int] = {}
        self._next_attempt_ns: dict[str, int] = {}
        self._started = False
        self.sweeps = 0
        self.restarts_total = 0
        self.records_replayed_total = 0
        self.skipped_unrecoverable = 0
        self.skipped_zone_down = 0
        self.skipped_backoff = 0

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.clock.every(self.config.sweep_interval_ns, self.sweep)

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def mark_unrecoverable(self, member: str) -> None:
        """Permanent loss: never restart; the repairer takes over."""
        self._unrecoverable.add(member)

    def mark_recoverable(self, member: str) -> None:
        self._unrecoverable.discard(member)
        self._attempts.pop(member, None)
        self._next_attempt_ns.pop(member, None)

    def is_unrecoverable(self, member: str) -> bool:
        return member in self._unrecoverable

    def mark_zone_down(self, zone: str) -> None:
        """A whole zone is out: restarting into it is pointless."""
        self._down_zones.add(zone)

    def mark_zone_up(self, zone: str) -> None:
        self._down_zones.discard(zone)

    def zone_is_down(self, zone: str) -> bool:
        return zone in self._down_zones

    # ------------------------------------------------------------------
    # The restart sweep
    # ------------------------------------------------------------------
    def sweep(self) -> None:
        self.sweeps += 1
        now = self.clock.now_ns
        for member_id, ingester in sorted(self.cluster.ingesters.items()):
            if ingester.active:
                # Surviving past the backoff window clears the crash-loop
                # counter; crashing again inside it keeps escalating.
                next_at = self._next_attempt_ns.get(member_id)
                if next_at is not None and now >= next_at:
                    self._attempts.pop(member_id, None)
                    self._next_attempt_ns.pop(member_id, None)
                continue
            if self.memberlist.state_of(member_id) is MemberState.FORGOTTEN:
                continue
            if member_id in self._unrecoverable:
                self.skipped_unrecoverable += 1
                continue
            zone = self.cluster.ring.zone(member_id)
            if zone is not None and zone in self._down_zones:
                self.skipped_zone_down += 1
                continue
            next_at = self._next_attempt_ns.get(member_id)
            if next_at is not None and now < next_at:
                self.skipped_backoff += 1
                continue
            self._restart(member_id, now)

    def _restart(self, member_id: str, now_ns: int) -> None:
        attempt = self._attempts.get(member_id, 0)
        replayed = self.cluster.ingesters[member_id].restart()
        self.restarts_total += 1
        self.records_replayed_total += replayed
        # The member proves itself by heartbeating; if it crashes again
        # before the next sweep the following attempt waits longer.
        self._attempts[member_id] = attempt + 1
        self._next_attempt_ns[member_id] = now_ns + self.config.backoff.delay_ns(
            attempt
        )
        self.memberlist.heartbeat(member_id)
