"""SelfHealManager: the composed detect → restart → repair loop.

One object owns the four moving parts (memberlist, detector, supervisor,
repairer), registers the ring members, hooks the shared memberlist into
the cluster's write/read paths, and exposes the metrics surface the
exporter scrapes.  The framework constructs it behind
``enable_self_healing`` and calls :meth:`start` when the sim starts.

It is also the fault injector's hook point: ``HEARTBEAT_LOSS`` mutes a
member's heartbeats (gray failure — the process keeps serving while the
detector watches it go silent), ``ZONE_OUTAGE`` crashes a whole
availability zone and bars the supervisor from restarting into it until
the outage ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.simclock import SimClock
from repro.ring.cluster import RingLokiCluster
from repro.selfheal.detector import FailureDetector, FailureDetectorConfig
from repro.selfheal.memberlist import Memberlist, MemberState
from repro.selfheal.repairer import RingRepairer, RingRepairerConfig
from repro.selfheal.supervisor import IngesterSupervisor, SupervisorConfig
from repro.tempo.tracer import Tracer


@dataclass(frozen=True)
class SelfHealConfig:
    detector: FailureDetectorConfig = field(default_factory=FailureDetectorConfig)
    repairer: RingRepairerConfig = field(default_factory=RingRepairerConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)


class SelfHealManager:
    """Failure detection, supervised restarts and anti-entropy repair."""

    def __init__(
        self,
        clock: SimClock,
        cluster: RingLokiCluster,
        config: SelfHealConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.clock = clock
        self.cluster = cluster
        self.config = config or SelfHealConfig()
        self.memberlist = Memberlist(clock)
        for member in sorted(cluster.ingesters):
            self.memberlist.register(member)
        cluster.attach_memberlist(self.memberlist)
        self.detector = FailureDetector(
            clock, cluster, self.memberlist, self.config.detector, tracer
        )
        self.supervisor = IngesterSupervisor(
            clock, cluster, self.memberlist, self.config.supervisor
        )
        self._declared_down: set[str] = set()
        self.repairer = RingRepairer(
            clock,
            cluster,
            self.memberlist,
            self.config.repairer,
            tracer,
            # A member in a *declared bounded* failure — its whole zone
            # is in an outage, or a fault with a known duration crashed
            # it — is coming back: hold repair back and let the restart
            # path (WAL replay) recover it, instead of re-homing data
            # that is about to return.
            holdback=self._held_back,
        )
        self._started = False

    def _held_back(self, member: str) -> bool:
        if member in self._declared_down:
            return True
        zone = self.cluster.ring.zone(member)
        return zone is not None and self.supervisor.zone_is_down(zone)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.detector.start()
        self.supervisor.start()
        self.repairer.start()

    def adopt(self, member: str) -> None:
        """Wire a member that joined the cluster after construction into
        the loop: register it (ACTIVE, fresh stamp) and start its
        heartbeat chain.  The repairer's anti-entropy heal pass then
        fills it with the history its token ranges make it responsible
        for."""
        if member not in self.cluster.ingesters:
            raise ValidationError(f"no such ingester: {member}")
        self.memberlist.register(member)
        self.detector.watch(member)

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def begin_heartbeat_loss(self, member: str) -> None:
        """Gray failure: the member keeps serving but stops heartbeating."""
        if member not in self.cluster.ingesters:
            raise ValidationError(f"no such ingester: {member}")
        self.detector.mute(member)

    def end_heartbeat_loss(self, member: str) -> None:
        self.detector.unmute(member)

    def mark_unrecoverable(self, member: str) -> None:
        """Permanent loss: bar restarts so the repair path takes over."""
        if member not in self.cluster.ingesters:
            raise ValidationError(f"no such ingester: {member}")
        self.supervisor.mark_unrecoverable(member)

    def begin_bounded_crash(self, member: str) -> None:
        """A crash with a *declared* duration: the fault's own end is
        the recovery, so the supervisor stands aside (no restart racing
        the scheduled restore) and repair is held back (the member is
        coming back with its WAL — re-homing its streams would be
        wasted data movement)."""
        if member not in self.cluster.ingesters:
            raise ValidationError(f"no such ingester: {member}")
        self._declared_down.add(member)
        self.supervisor.mark_unrecoverable(member)

    def end_bounded_crash(self, member: str) -> int:
        """The declared outage is over: restart the member here and
        now.  Heartbeating it immediately snaps it back to ACTIVE, so a
        repairer sweep landing on the same tick (the member is DEAD
        past grace — the holdback is what deferred it) can never retire
        a process that just came back.  Returns WAL records replayed."""
        self._declared_down.discard(member)
        self.supervisor.mark_recoverable(member)
        replayed = self.cluster.restart_ingester(member)
        self.memberlist.heartbeat(member)
        return replayed

    def begin_zone_outage(self, zone: str) -> list[str]:
        """Crash every ingester in the zone and bar restarts into it.
        Returns the members taken down (still-active ones only)."""
        members = self.cluster.ring.members_in_zone(zone)
        if not members:
            raise ValidationError(f"no ring members in zone {zone!r}")
        self.supervisor.mark_zone_down(zone)
        downed = []
        for member in members:
            ingester = self.cluster.ingesters.get(member)
            if ingester is not None and ingester.active:
                ingester.crash()
                downed.append(member)
        return downed

    def end_zone_outage(self, zone: str) -> None:
        """Lift the bar and restart the zone's members immediately.

        The eager sweep matters: the instant the bar lifts, the zone's
        members are typically DEAD *past the repair grace* (the holdback
        is what deferred them), so a repairer sweep landing on the same
        tick would retire and re-home them before the supervisor's next
        scheduled sweep could restart them.  Restarting here makes the
        cheap path win the tie unconditionally."""
        self.supervisor.mark_zone_up(zone)
        self.supervisor.sweep()

    # ------------------------------------------------------------------
    # Metrics surface (SelfHealExporter)
    # ------------------------------------------------------------------
    def member_states(self) -> dict[str, str]:
        return {
            member: view.state.value
            for member, view in self.memberlist.snapshot().items()
        }

    def counts_by_state(self) -> dict[str, int]:
        out = {state.value: 0 for state in MemberState}
        for state in self.member_states().values():
            out[state] += 1
        return out

    def under_replicated_streams(self) -> int:
        return self.repairer.under_replicated_streams()

    def health_summary(self) -> dict[str, float]:
        """Scalar gauges for the exporter and ``health_summary``."""
        counts = self.counts_by_state()
        return {
            "members_active": float(counts["active"]),
            "members_suspect": float(counts["suspect"]),
            "members_dead": float(counts["dead"]),
            "members_forgotten": float(counts["forgotten"]),
            "heartbeats_total": float(self.memberlist.heartbeats_total),
            "suspects_total": float(self.memberlist.suspects_total),
            "deaths_total": float(self.memberlist.deaths_total),
            "recoveries_total": float(self.memberlist.recoveries_total),
            "under_replicated_streams": float(self.under_replicated_streams()),
            "members_repaired_total": float(self.repairer.members_repaired_total),
            "heals_total": float(self.repairer.heals_total),
            "streams_repaired_total": float(self.repairer.streams_repaired_total),
            "entries_copied_total": float(self.repairer.entries_copied_total),
            "restarts_total": float(self.supervisor.restarts_total),
            "records_replayed_total": float(
                self.supervisor.records_replayed_total
            ),
        }
