"""The shared membership view: lifecycle states and heartbeat times.

Every component of the self-healing loop reads and writes this one
structure, the way Loki components share the ring's KV store: ingesters
(via the detector's heartbeat loops) stamp their liveness into it, the
detector's sweep demotes members whose stamps go stale, the distributor
consults it to route around unhealthy replicas, and the repairer retires
members it has finished re-replicating.

The lifecycle is strictly ordered but recoverable until the end::

    ACTIVE ⇄ SUSPECT ⇄ DEAD → FORGOTTEN

A heartbeat from a SUSPECT or DEAD member proves it alive and snaps it
back to ACTIVE (gray failures end, crashed members restart).  FORGOTTEN
is terminal: the repairer only forgets a member after re-replicating its
streams, at which point the ring has already released its tokens and a
late heartbeat must not resurrect it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import StateError, ValidationError
from repro.common.simclock import NANOS_PER_SECOND, SimClock


class MemberState(enum.Enum):
    """Detector's verdict on a ring member — not its process state: a
    gray-failed member is SUSPECT while its process is still serving."""

    ACTIVE = "active"
    SUSPECT = "suspect"
    DEAD = "dead"
    FORGOTTEN = "forgotten"


@dataclass(frozen=True)
class MemberView:
    """One member's row in a :meth:`Memberlist.snapshot`."""

    state: MemberState
    last_heartbeat_ns: int
    state_since_ns: int
    heartbeat_age_seconds: float


class Memberlist:
    """Lifecycle states + heartbeat timestamps for the ring members."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._state: dict[str, MemberState] = {}
        self._last_heartbeat_ns: dict[str, int] = {}
        self._state_since_ns: dict[str, int] = {}
        # Transition accounting for the exporter and the benches.
        self.heartbeats_total = 0
        self.suspects_total = 0
        self.deaths_total = 0
        self.recoveries_total = 0
        self.forgotten_total = 0
        self.read_triggered_suspects = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, member: str) -> None:
        """Add a member as ACTIVE with a fresh heartbeat stamp."""
        if not member:
            raise ValidationError("member id must be non-empty")
        if member in self._state:
            raise StateError(f"member {member!r} already registered")
        now = self.clock.now_ns
        self._state[member] = MemberState.ACTIVE
        self._last_heartbeat_ns[member] = now
        self._state_since_ns[member] = now

    def members(self) -> list[str]:
        return sorted(self._state)

    def _require(self, member: str) -> MemberState:
        try:
            return self._state[member]
        except KeyError:
            raise StateError(f"member {member!r} not registered") from None

    def state_of(self, member: str) -> MemberState:
        return self._require(member)

    def last_heartbeat_ns(self, member: str) -> int:
        self._require(member)
        return self._last_heartbeat_ns[member]

    def heartbeat_age_ns(self, member: str) -> int:
        self._require(member)
        return self.clock.now_ns - self._last_heartbeat_ns[member]

    def state_age_ns(self, member: str) -> int:
        self._require(member)
        return self.clock.now_ns - self._state_since_ns[member]

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _transition(self, member: str, state: MemberState) -> None:
        self._state[member] = state
        self._state_since_ns[member] = self.clock.now_ns

    def heartbeat(self, member: str) -> None:
        """Stamp liveness; a SUSPECT/DEAD member snaps back to ACTIVE."""
        state = self._require(member)
        if state is MemberState.FORGOTTEN:
            # Tokens already released, streams already re-homed: a
            # zombie's late heartbeat must not re-enter the ring.
            raise StateError(f"member {member!r} is forgotten")
        self._last_heartbeat_ns[member] = self.clock.now_ns
        self.heartbeats_total += 1
        if state is not MemberState.ACTIVE:
            self._transition(member, MemberState.ACTIVE)
            self.recoveries_total += 1

    def suspect(self, member: str) -> None:
        """ACTIVE → SUSPECT (detector sweep: heartbeat went stale)."""
        state = self._require(member)
        if state is not MemberState.ACTIVE:
            raise StateError(
                f"cannot suspect member {member!r} in state {state.value}"
            )
        self._transition(member, MemberState.SUSPECT)
        self.suspects_total += 1

    def suspect_from_read(self, member: str) -> bool:
        """A read fan-out found the member refusing: suspect it if still
        presumed healthy.  Idempotent (unlike :meth:`suspect`) because
        many concurrent reads may trip over the same dead replica."""
        if self._require(member) is not MemberState.ACTIVE:
            return False
        self._transition(member, MemberState.SUSPECT)
        self.suspects_total += 1
        self.read_triggered_suspects += 1
        return True

    def declare_dead(self, member: str) -> None:
        """SUSPECT → DEAD (suspicion timeout expired unanswered)."""
        state = self._require(member)
        if state is not MemberState.SUSPECT:
            raise StateError(
                f"cannot declare member {member!r} dead from state "
                f"{state.value}"
            )
        self._transition(member, MemberState.DEAD)
        self.deaths_total += 1

    def forget(self, member: str) -> None:
        """DEAD → FORGOTTEN (repair finished; terminal)."""
        state = self._require(member)
        if state is not MemberState.DEAD:
            raise StateError(
                f"cannot forget member {member!r} in state {state.value}"
            )
        self._transition(member, MemberState.FORGOTTEN)
        self.forgotten_total += 1

    # ------------------------------------------------------------------
    # Routing views
    # ------------------------------------------------------------------
    def write_excluded(self) -> set[str]:
        """Members a push must not target: anything not ACTIVE.  The
        distributor extends its clockwise walk over the survivors."""
        return {
            m for m, s in self._state.items() if s is not MemberState.ACTIVE
        }

    def read_excluded(self, member: str) -> bool:
        """Whether a read fan-out should skip the member outright.
        SUSPECT members still serve (they may merely be slow); DEAD and
        FORGOTTEN ones are not worth contacting."""
        state = self._state.get(member)
        return state in (MemberState.DEAD, MemberState.FORGOTTEN)

    def in_state(self, state: MemberState) -> list[str]:
        return sorted(m for m, s in self._state.items() if s is state)

    def snapshot(self) -> dict[str, MemberView]:
        """Point-in-time view for exporters and ``ring_health``."""
        now = self.clock.now_ns
        return {
            member: MemberView(
                state=state,
                last_heartbeat_ns=self._last_heartbeat_ns[member],
                state_since_ns=self._state_since_ns[member],
                heartbeat_age_seconds=(
                    (now - self._last_heartbeat_ns[member]) / NANOS_PER_SECOND
                ),
            )
            for member, state in sorted(self._state.items())
        }
