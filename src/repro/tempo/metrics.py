"""Tracer self-metrics, exported into the TSDB with exemplar trace IDs.

The tracing subsystem closes the observability loop on itself: span
counts and per-stage latency quantiles land in the same VictoriaMetrics
store the rest of the stack uses, so pipeline latency is alertable and
chartable like any other metric.  Each latency sample carries an
*exemplar* — the trace ID of the slowest span behind the number — which
is how Grafana jumps from a latency chart to the trace that explains it.
"""

from __future__ import annotations

from repro.common.simclock import SimClock
from repro.tempo.store import TraceStore
from repro.tsdb.storage import Exemplar, TimeSeriesStore

SPAN_COUNT_METRIC = "tempo_spans"
TRACE_COUNT_METRIC = "tempo_traces"
LATENCY_P50_METRIC = "tempo_stage_latency_p50_seconds"
LATENCY_P99_METRIC = "tempo_stage_latency_p99_seconds"


def _nearest_rank(sorted_values: list[int], quantile: float) -> int:
    """Nearest-rank percentile — exact and deterministic, no interpolation."""
    if not sorted_values:
        return 0
    rank = max(1, -(-int(quantile * 1000) * len(sorted_values) // 1000))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class TraceMetricsExporter:
    """Periodically snapshots the trace store into the metric store."""

    def __init__(
        self,
        store: TraceStore,
        tsdb: TimeSeriesStore,
        clock: SimClock,
        cluster: str = "perlmutter",
    ) -> None:
        self._store = store
        self._tsdb = tsdb
        self._clock = clock
        self._cluster = cluster
        self.exports = 0

    def export(self) -> int:
        """Write one snapshot; returns the number of samples ingested."""
        now = self._clock.now_ns
        base = {"cluster": self._cluster, "job": "tempo"}
        written = 0
        if self._tsdb.ingest(TRACE_COUNT_METRIC, base, float(len(self._store)), now):
            written += 1

        by_service: dict[str, list[tuple[int, str]]] = {}
        for span in self._store.all_spans():
            by_service.setdefault(span.service, []).append(
                (span.duration_ns, span.trace_id)
            )
        for service, items in sorted(by_service.items()):
            labels = {**base, "service": service}
            durations = sorted(d for d, _ in items)
            slowest_ns, slowest_trace = max(items)
            exemplar = Exemplar(
                trace_id=slowest_trace,
                value=slowest_ns / 1e9,
                timestamp_ns=now,
            )
            if self._tsdb.ingest(SPAN_COUNT_METRIC, labels, float(len(items)), now):
                written += 1
            if self._tsdb.ingest(
                LATENCY_P50_METRIC,
                labels,
                _nearest_rank(durations, 0.50) / 1e9,
                now,
            ):
                written += 1
            if self._tsdb.ingest(
                LATENCY_P99_METRIC,
                labels,
                _nearest_rank(durations, 0.99) / 1e9,
                now,
                exemplar=exemplar,
            ):
                written += 1
        self.exports += 1
        return written
