"""Pipeline instrumentation: carrying trace context across the stack.

The hot path crosses three async boundaries where no function call links
cause to effect:

1. **producer → consumer** — bridged by a ``traceparent`` header on the
   broker :class:`~repro.bus.broker.Record` (Kafka-style headers, so the
   payload bytes the benches snapshot are untouched);
2. **store → rule evaluator** — a rule fires minutes after the triggering
   push, linked only by data.  We bridge it the way Grafana links alerts
   to traces: by *label correlation*.  Every store write registers its
   trace context under its correlation labels (``Context``, ``xname``,
   ...); a firing alert carrying a matching label joins that trace;
3. **alertmanager group → receiver** — bridged by remembering the firing
   alert's context per fingerprint until delivery.

All state is bounded (FIFO) and all methods no-op when handed ``None``
contexts, so an unsampled or disabled pipeline takes the exact same code
path with zero recorded state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, Mapping

from repro.alerting.events import AlertEvent, AlertState
from repro.alerting.receivers import Notification, Receiver
from repro.bus.broker import Record
from repro.tempo.model import SpanContext
from repro.tempo.tracer import Tracer

#: Labels that identify *where* an alert came from, in lookup order.
#: They match the stream/series labels the stores were written with.
CORRELATION_LABELS = ("Context", "xname", "hostname", "context", "cdu", "pdu", "fs")


class PipelineTracing:
    """Shared correlation state between producers, stores and alerting."""

    def __init__(self, tracer: Tracer, max_pending: int = 4096) -> None:
        self.tracer = tracer
        self._max_pending = max_pending
        # (label, value) -> (store-span context, data-available timestamp)
        self._pending: OrderedDict[tuple[str, str], tuple[SpanContext, int]] = (
            OrderedDict()
        )
        # alert fingerprint -> (evaluator-span context, fired timestamp)
        self._alert_spans: OrderedDict[int, tuple[SpanContext, int]] = OrderedDict()
        # alert fingerprint -> alertmanager-span context (one per firing)
        self._am_spans: OrderedDict[int, SpanContext] = OrderedDict()

    # ------------------------------------------------------------------
    # Boundary 1: broker record → consumer-side spans
    # ------------------------------------------------------------------
    def begin_record(
        self,
        record: Record,
        consumer_name: str,
        server_index: int | None = None,
    ) -> SpanContext | None:
        """Reconstruct the consume-side chain for one polled record.

        Records the queue-wait span (producer timestamp → now), the
        Telemetry-API fetch and the consumer pod span; returns the
        consumer span's context for the store write to parent under.
        """
        ctx = Tracer.extract(dict(record.headers))
        if ctx is None or not ctx.sampled:
            return None
        now = self.tracer.now_ns
        broker_ctx = self.tracer.record(
            "broker",
            "queue",
            ctx,
            start_ns=record.timestamp_ns,
            end_ns=now,
            attributes={
                "topic": record.topic,
                "partition": str(record.partition),
                "offset": str(record.offset),
            },
        )
        api_attrs = {} if server_index is None else {"server": str(server_index)}
        api_ctx = self.tracer.record(
            "telemetry_api", "fetch", broker_ctx, now, now, attributes=api_attrs
        )
        return self.tracer.record("consumer", consumer_name, api_ctx, now, now)

    # ------------------------------------------------------------------
    # Boundary 2: store write → rule evaluation
    # ------------------------------------------------------------------
    def store_span(
        self,
        parent: SpanContext | None,
        service: str,
        name: str,
        label_sets: Iterable[Mapping[str, str]],
    ) -> SpanContext | None:
        """Record the store-write span and register its correlation keys."""
        if parent is None:
            return None
        now = self.tracer.now_ns
        ctx = self.tracer.record(service, name, parent, now, now)
        if ctx is not None:
            for labels in label_sets:
                self.continue_from_store(ctx, labels, now)
        return ctx

    def continue_from_store(
        self, ctx: SpanContext, labels: Mapping[str, str], available_ns: int
    ) -> None:
        """Remember: data carrying these labels belongs to ``ctx``."""
        for name in CORRELATION_LABELS:
            value = labels.get(name)
            if value:
                key = (name, value)
                self._pending[key] = (ctx, available_ns)
                self._pending.move_to_end(key)
        while len(self._pending) > self._max_pending:
            self._pending.popitem(last=False)

    def _correlate(self, labels: Mapping[str, str]) -> tuple[SpanContext, int] | None:
        for name in CORRELATION_LABELS:
            value = labels.get(name)
            if value and (hit := self._pending.get((name, value))):
                return hit
        return None

    def notifier(
        self, inner: Callable[[AlertEvent], None], service: str
    ) -> Callable[[AlertEvent], None]:
        """Wrap a rule evaluator's notifier to span the evaluation stage.

        The evaluator span covers data-available → fired: the rule's
        ``for`` sustain window plus the evaluation cadence, the dominant
        term in end-to-end alert latency.
        """

        def traced(event: AlertEvent) -> None:
            fp = event.fingerprint()
            if event.state is AlertState.FIRING and fp not in self._alert_spans:
                hit = self._correlate(event.labels)
                if hit is not None:
                    store_ctx, available_ns = hit
                    now = self.tracer.now_ns
                    ctx = self.tracer.record(
                        service,
                        event.name,
                        store_ctx,
                        start_ns=available_ns,
                        end_ns=now,
                        attributes={
                            "alertname": event.name,
                            "severity": event.severity,
                        },
                    )
                    if ctx is not None:
                        self._alert_spans[fp] = (ctx, now)
                        while len(self._alert_spans) > self._max_pending:
                            self._alert_spans.popitem(last=False)
            elif event.state is AlertState.RESOLVED:
                # A future re-fire of the same series starts a new span.
                self._alert_spans.pop(fp, None)
                self._am_spans.pop(fp, None)
            inner(event)

        return traced

    # ------------------------------------------------------------------
    # Boundary 3: alertmanager group → receiver delivery
    # ------------------------------------------------------------------
    def delivery_span(
        self, receiver_name: str, alert: AlertEvent, timestamp_ns: int
    ) -> None:
        """Span the group-wait (once per alert) and this receiver's notify."""
        fp = alert.fingerprint()
        hit = self._alert_spans.get(fp)
        if hit is None:
            return
        eval_ctx, fired_ns = hit
        am_ctx = self._am_spans.get(fp)
        if am_ctx is None:
            am_ctx = self.tracer.record(
                "alertmanager",
                "group_and_route",
                eval_ctx,
                start_ns=fired_ns,
                end_ns=timestamp_ns,
                attributes={"alertname": alert.name},
            )
            if am_ctx is None:
                return
            self._am_spans[fp] = am_ctx
            while len(self._am_spans) > self._max_pending:
                self._am_spans.popitem(last=False)
        self.tracer.record(
            receiver_name,
            "notify",
            am_ctx,
            start_ns=timestamp_ns,
            end_ns=timestamp_ns,
            attributes={"alertname": alert.name, "severity": alert.severity},
        )


class TracingReceiver:
    """Decorates a receiver so every firing delivery closes its trace."""

    def __init__(self, inner: Receiver, tracing: PipelineTracing) -> None:
        self.name = inner.name
        self._inner = inner
        self._tracing = tracing

    def notify(self, notification: Notification) -> None:
        for alert in notification.firing:
            self._tracing.delivery_span(
                self.name, alert, notification.timestamp_ns
            )
        self._inner.notify(notification)
