"""Trace store: span ingestion, assembly by trace ID, search, eviction.

The store is Tempo's role in miniature — it accepts finished spans in any
order, groups them by trace ID, and answers "find traces/spans like X"
queries either directly (:meth:`TraceStore.search`) or through the TraceQL
engine built on top of it.

Capacity is bounded by whole traces, FIFO by first-seen order: when the
``max_traces`` limit is reached the oldest trace is dropped in full, never
individual spans (a half-evicted trace is worse than none).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.tempo.model import Span


@dataclass(frozen=True)
class TraceSummary:
    """Search-result row: the root identity plus trace-level rollups."""

    trace_id: str
    root_service: str
    root_name: str
    start_ns: int
    duration_ns: int
    span_count: int


class TraceStore:
    """In-memory span storage keyed by trace ID."""

    def __init__(self, max_traces: int = 10_000) -> None:
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        self._max_traces = max_traces
        self._traces: OrderedDict[str, list[Span]] = OrderedDict()
        self.spans_added = 0
        self.traces_evicted = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add(self, span: Span) -> None:
        spans = self._traces.get(span.trace_id)
        if spans is None:
            while len(self._traces) >= self._max_traces:
                self._traces.popitem(last=False)
                self.traces_evicted += 1
            spans = self._traces[span.trace_id] = []
        spans.append(span)
        self.spans_added += 1

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._traces)

    @property
    def span_count(self) -> int:
        return sum(len(s) for s in self._traces.values())

    def trace_ids(self) -> list[str]:
        """Trace IDs in first-seen order."""
        return list(self._traces)

    def trace(self, trace_id: str) -> list[Span]:
        """All spans of a trace, ordered by start time (stable on ties)."""
        spans = self._traces.get(trace_id, [])
        return sorted(spans, key=lambda s: s.start_ns)

    def root(self, trace_id: str) -> Span | None:
        """The parentless span of a trace, if one has arrived."""
        for span in self._traces.get(trace_id, []):
            if span.is_root:
                return span
        return None

    def services(self, trace_id: str) -> set[str]:
        return {s.service for s in self._traces.get(trace_id, [])}

    def duration_ns(self, trace_id: str) -> int:
        """Wall span of the whole trace: max end (or start) − min start."""
        spans = self._traces.get(trace_id)
        if not spans:
            return 0
        start = min(s.start_ns for s in spans)
        end = max(s.end_ns if s.end_ns is not None else s.start_ns for s in spans)
        return end - start

    def summary(self, trace_id: str) -> TraceSummary | None:
        spans = self._traces.get(trace_id)
        if not spans:
            return None
        root = self.root(trace_id)
        first = min(spans, key=lambda s: s.start_ns)
        return TraceSummary(
            trace_id=trace_id,
            root_service=root.service if root else first.service,
            root_name=root.name if root else first.name,
            start_ns=first.start_ns,
            duration_ns=self.duration_ns(trace_id),
            span_count=len(spans),
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        service: str | None = None,
        name: str | None = None,
        min_duration_ns: int | None = None,
        attrs: dict[str, str] | None = None,
        limit: int | None = None,
    ) -> list[TraceSummary]:
        """Traces containing at least one span matching all criteria.

        Results come back in first-seen order; ``min_duration_ns`` applies
        to the matching *span*, not the whole trace (Tempo's semantics).
        """
        out: list[TraceSummary] = []
        for trace_id, spans in self._traces.items():
            if any(
                self._span_matches(s, service, name, min_duration_ns, attrs)
                for s in spans
            ):
                summary = self.summary(trace_id)
                assert summary is not None
                out.append(summary)
                if limit is not None and len(out) >= limit:
                    break
        return out

    @staticmethod
    def _span_matches(
        span: Span,
        service: str | None,
        name: str | None,
        min_duration_ns: int | None,
        attrs: dict[str, str] | None,
    ) -> bool:
        if service is not None and span.service != service:
            return False
        if name is not None and span.name != name:
            return False
        if min_duration_ns is not None and span.duration_ns < min_duration_ns:
            return False
        if attrs:
            for key, value in attrs.items():
                if span.attributes.get(key) != value:
                    return False
        return True

    def all_spans(self) -> list[Span]:
        """Every stored span, grouped by trace in first-seen order."""
        out: list[Span] = []
        for trace_id in self._traces:
            out.extend(self.trace(trace_id))
        return out
