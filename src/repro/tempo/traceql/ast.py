"""TraceQL AST: a span filter over predicates combined with ``&&``/``||``.

Every node evaluates against a single :class:`~repro.tempo.model.Span`;
trace-level semantics ("find traces containing a matching span") live in
the engine, matching Tempo's model where the filter selects spansets.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.common.errors import QueryError
from repro.tempo.model import Span


class BinaryOp(enum.Enum):
    EQ = "="
    NEQ = "!="
    RE = "=~"
    NRE = "!~"
    GT = ">"
    GTE = ">="
    LT = "<"
    LTE = "<="


class PredicateExpr:
    """Base class for anything that can judge a span."""

    def matches(self, span: Span) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


#: Intrinsic fields addressable without the ``span.`` prefix.
_INTRINSICS = frozenset({"name", "duration"})

#: ``span.<field>`` paths that read span identity rather than attributes.
_WELL_KNOWN = frozenset({"service", "name"})


@dataclass(frozen=True)
class FieldPredicate(PredicateExpr):
    """``span.service = "loki"``, ``name =~ "push.*"``, ``span.xname != ""``.

    ``field`` is the path without the ``span.`` prefix.  Unknown fields
    read span attributes; a missing attribute fails every operator, so
    ``span.absent != "x"`` is *false*, not vacuously true — Tempo's
    "unscoped attributes match nothing when absent" behaviour.
    """

    field: str
    op: BinaryOp
    value: str

    def __post_init__(self) -> None:
        if self.op in (BinaryOp.RE, BinaryOp.NRE):
            try:
                re.compile(self.value)
            except re.error as exc:
                raise QueryError(f"bad regex {self.value!r}: {exc}") from exc
        elif self.op not in (BinaryOp.EQ, BinaryOp.NEQ):
            raise QueryError(
                f"operator {self.op.value!r} needs a duration or number, "
                f"not string field {self.field!r}"
            )

    def _lookup(self, span: Span) -> str | None:
        if self.field == "service":
            return span.service
        if self.field == "name":
            return span.name
        return span.attributes.get(self.field)

    def matches(self, span: Span) -> bool:
        actual = self._lookup(span)
        if actual is None:
            return False
        if self.op is BinaryOp.EQ:
            return actual == self.value
        if self.op is BinaryOp.NEQ:
            return actual != self.value
        if self.op is BinaryOp.RE:
            return re.search(self.value, actual) is not None
        return re.search(self.value, actual) is None


@dataclass(frozen=True)
class DurationPredicate(PredicateExpr):
    """``duration > 5ms`` — compares the span's own duration."""

    op: BinaryOp
    threshold_ns: int

    def __post_init__(self) -> None:
        if self.op in (BinaryOp.RE, BinaryOp.NRE):
            raise QueryError("duration does not support regex operators")

    def matches(self, span: Span) -> bool:
        d = span.duration_ns
        t = self.threshold_ns
        if self.op is BinaryOp.EQ:
            return d == t
        if self.op is BinaryOp.NEQ:
            return d != t
        if self.op is BinaryOp.GT:
            return d > t
        if self.op is BinaryOp.GTE:
            return d >= t
        if self.op is BinaryOp.LT:
            return d < t
        return d <= t


@dataclass(frozen=True)
class BooleanExpr(PredicateExpr):
    """``left && right`` / ``left || right``."""

    left: PredicateExpr
    right: PredicateExpr
    conjunction: bool  # True for &&, False for ||

    def matches(self, span: Span) -> bool:
        if self.conjunction:
            return self.left.matches(span) and self.right.matches(span)
        return self.left.matches(span) or self.right.matches(span)


@dataclass(frozen=True)
class SpanFilter:
    """A whole query: ``{ <expr> }``."""

    expr: PredicateExpr

    def matches(self, span: Span) -> bool:
        return self.expr.matches(span)
