"""TraceQL evaluation over a :class:`~repro.tempo.store.TraceStore`.

Two result shapes, matching Tempo's API split:

* :meth:`TraceQLEngine.find_spans` — every stored span satisfying the
  filter (the "spanset" view, with exact timings for waterfalls);
* :meth:`TraceQLEngine.find_traces` — summaries of traces containing at
  least one matching span (the search-results view).
"""

from __future__ import annotations

from repro.tempo.model import Span
from repro.tempo.store import TraceStore, TraceSummary
from repro.tempo.traceql.ast import SpanFilter
from repro.tempo.traceql.parser import parse_query


class TraceQLEngine:
    def __init__(self, store: TraceStore) -> None:
        self.store = store

    def compile(self, query: str) -> SpanFilter:
        return parse_query(query)

    def find_spans(self, query: str, limit: int | None = None) -> list[Span]:
        """All spans matching ``query``, in trace order then start order."""
        span_filter = parse_query(query)
        out: list[Span] = []
        for span in self.store.all_spans():
            if span_filter.matches(span):
                out.append(span)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def find_traces(
        self, query: str, limit: int | None = None
    ) -> list[TraceSummary]:
        """Summaries of traces with at least one span matching ``query``."""
        span_filter = parse_query(query)
        out: list[TraceSummary] = []
        for trace_id in self.store.trace_ids():
            if any(span_filter.matches(s) for s in self.store.trace(trace_id)):
                summary = self.store.summary(trace_id)
                assert summary is not None
                out.append(summary)
                if limit is not None and len(out) >= limit:
                    break
        return out
