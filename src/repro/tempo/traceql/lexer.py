"""TraceQL lexer.

Same flat-token-stream approach as ``loki.logql.lexer``; TraceQL needs a
smaller operator set plus the boolean connectives ``&&``/``||`` and the
``.`` of ``span.<attribute>`` field paths.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.common.errors import QueryError


class Tok(enum.Enum):
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    AND = "&&"
    OR = "||"
    DOT = "."
    EQ = "="
    NEQ = "!="
    RE = "=~"
    NRE = "!~"
    GT = ">"
    GTE = ">="
    LT = "<"
    LTE = "<="
    STRING = "STRING"
    NUMBER = "NUMBER"
    DURATION = "DURATION"
    IDENT = "IDENT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: Tok
    text: str
    pos: int


_DURATION_RE = re.compile(r"\d+(?:\.\d+)?(?:ms|s|m|h|d|w|y)(?:\d+(?:ms|s|m|h|d|w|y))*")
_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?(?:[eE][+-]?\d+)?")
_IDENT_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")

# Multi-char operators first so "=~" never lexes as "=" + "~".
_OPERATORS: list[tuple[str, Tok]] = [
    ("&&", Tok.AND),
    ("||", Tok.OR),
    ("!=", Tok.NEQ),
    ("!~", Tok.NRE),
    ("=~", Tok.RE),
    (">=", Tok.GTE),
    ("<=", Tok.LTE),
    ("{", Tok.LBRACE),
    ("}", Tok.RBRACE),
    ("(", Tok.LPAREN),
    (")", Tok.RPAREN),
    (".", Tok.DOT),
    ("=", Tok.EQ),
    (">", Tok.GT),
    ("<", Tok.LT),
]

_QUOTES = {'"': '"', "'": "'", "`": "`"}


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _QUOTES:
            literal, end = _read_string(text, i)
            tokens.append(Token(Tok.STRING, literal, i))
            i = end
            continue
        if ch.isdigit():
            m = _DURATION_RE.match(text, i)
            if m:
                tokens.append(Token(Tok.DURATION, m.group(), i))
                i = m.end()
                continue
            m = _NUMBER_RE.match(text, i)
            if m:
                tokens.append(Token(Tok.NUMBER, m.group(), i))
                i = m.end()
                continue
        matched = False
        for op, kind in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(kind, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        m = _IDENT_RE.match(text, i)
        if m:
            tokens.append(Token(Tok.IDENT, m.group(), i))
            i = m.end()
            continue
        raise QueryError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(Tok.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a quoted string starting at ``start``; returns (value, end_index)."""
    quote = text[start]
    raw = quote == "`"
    out: list[str] = []
    i = start + 1
    while i < len(text):
        ch = text[i]
        if ch == quote:
            return "".join(out), i + 1
        if ch == "\\" and not raw:
            if i + 1 >= len(text):
                break
            nxt = text[i + 1]
            escapes = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", quote: quote}
            out.append(escapes.get(nxt, nxt))
            i += 2
            continue
        out.append(ch)
        i += 1
    raise QueryError(f"unterminated string starting at position {start}")
