"""repro.tempo.traceql — a TraceQL subset over the trace store.

Supports the span-filter core of Grafana Tempo's query language::

    { span.service = "loki" && duration > 5ms }
    { name =~ "push|write" || span.alertname != "" }
    { (span.service = "ruler" || span.service = "vmalert") && duration >= 30s }

Layout mirrors ``repro.loki.logql``: :mod:`lexer` → :mod:`parser` →
:mod:`ast` nodes → :mod:`engine` evaluation.
"""

from repro.tempo.traceql.ast import (
    BinaryOp,
    DurationPredicate,
    FieldPredicate,
    PredicateExpr,
    SpanFilter,
)
from repro.tempo.traceql.engine import TraceQLEngine
from repro.tempo.traceql.parser import parse_query

__all__ = [
    "BinaryOp",
    "DurationPredicate",
    "FieldPredicate",
    "PredicateExpr",
    "SpanFilter",
    "TraceQLEngine",
    "parse_query",
]
