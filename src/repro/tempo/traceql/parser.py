"""TraceQL recursive-descent parser.

Grammar (|| binds looser than &&, parentheses override)::

    query     := "{" or_expr "}"
    or_expr   := and_expr ( "||" and_expr )*
    and_expr  := predicate ( "&&" predicate )*
    predicate := "(" or_expr ")"
               | "span" "." IDENT op value
               | "name" op value
               | "duration" cmp_op (DURATION | NUMBER)
    op        := "=" | "!=" | "=~" | "!~"
    cmp_op    := "=" | "!=" | ">" | ">=" | "<" | "<="
"""

from __future__ import annotations

from repro.common.durations import parse_duration_ns
from repro.common.errors import QueryError
from repro.tempo.traceql.ast import (
    BinaryOp,
    BooleanExpr,
    DurationPredicate,
    FieldPredicate,
    PredicateExpr,
    SpanFilter,
)
from repro.tempo.traceql.lexer import Tok, Token, tokenize

_OP_BY_TOK = {
    Tok.EQ: BinaryOp.EQ,
    Tok.NEQ: BinaryOp.NEQ,
    Tok.RE: BinaryOp.RE,
    Tok.NRE: BinaryOp.NRE,
    Tok.GT: BinaryOp.GT,
    Tok.GTE: BinaryOp.GTE,
    Tok.LT: BinaryOp.LT,
    Tok.LTE: BinaryOp.LTE,
}


def parse_query(text: str) -> SpanFilter:
    """Parse a TraceQL query string into a :class:`SpanFilter`."""
    parser = _Parser(tokenize(text))
    parser.expect(Tok.LBRACE)
    expr = parser.parse_or()
    parser.expect(Tok.RBRACE)
    parser.expect(Tok.EOF)
    return SpanFilter(expr)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self._tokens[self._pos]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not Tok.EOF:
            self._pos += 1
        return tok

    def at(self, kind: Tok) -> bool:
        return self.peek().kind is kind

    def expect(self, kind: Tok) -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise QueryError(
                f"expected {kind.value!r} at position {tok.pos}, "
                f"got {tok.text or 'end of query'!r}"
            )
        return self.next()

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_or(self) -> PredicateExpr:
        left = self.parse_and()
        while self.at(Tok.OR):
            self.next()
            right = self.parse_and()
            left = BooleanExpr(left, right, conjunction=False)
        return left

    def parse_and(self) -> PredicateExpr:
        left = self.parse_predicate()
        while self.at(Tok.AND):
            self.next()
            right = self.parse_predicate()
            left = BooleanExpr(left, right, conjunction=True)
        return left

    def parse_predicate(self) -> PredicateExpr:
        if self.at(Tok.LPAREN):
            self.next()
            expr = self.parse_or()
            self.expect(Tok.RPAREN)
            return expr
        tok = self.expect(Tok.IDENT)
        if tok.text == "span":
            self.expect(Tok.DOT)
            field = self.expect(Tok.IDENT).text
            return self._field_predicate(field)
        if tok.text == "name":
            return self._field_predicate("name")
        if tok.text == "duration":
            return self._duration_predicate()
        raise QueryError(
            f"unknown field {tok.text!r} at position {tok.pos}; "
            "expected 'span.<field>', 'name' or 'duration'"
        )

    def _operator(self) -> BinaryOp:
        tok = self.next()
        op = _OP_BY_TOK.get(tok.kind)
        if op is None:
            raise QueryError(f"expected an operator at position {tok.pos}")
        return op

    def _field_predicate(self, field: str) -> FieldPredicate:
        op = self._operator()
        tok = self.peek()
        if tok.kind not in (Tok.STRING, Tok.NUMBER, Tok.DURATION, Tok.IDENT):
            raise QueryError(f"expected a value at position {tok.pos}")
        self.next()
        return FieldPredicate(field, op, tok.text)

    def _duration_predicate(self) -> DurationPredicate:
        op = self._operator()
        tok = self.next()
        if tok.kind is Tok.DURATION:
            threshold = parse_duration_ns(tok.text)
        elif tok.kind is Tok.NUMBER:
            # A bare number is seconds, like Tempo accepts.
            threshold = int(float(tok.text) * 1_000_000_000)
        else:
            raise QueryError(
                f"duration needs a duration literal at position {tok.pos}"
            )
        return DurationPredicate(op, threshold)
