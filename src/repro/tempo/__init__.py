"""repro.tempo — distributed tracing of the monitoring pipeline itself.

The paper's stack observes Perlmutter but is blind to itself: §III.D's
concern about the telemetry pipeline's own silent failures is covered only
by the ``absent()`` rule.  This package adds the missing third pillar — a
Grafana-Tempo-like tracing subsystem that instruments the reproduction's
own hot path (Redfish/FM event birth → broker → Telemetry API → consumer
pods → Loki/TSDB → Ruler/vmalert → Alertmanager → Slack/ServiceNow) so a
single leak event yields one coherent trace with per-stage timings on the
simulated clock.

Layout mirrors ``repro.loki``:

* :mod:`repro.tempo.model` — spans and W3C-traceparent span contexts;
* :mod:`repro.tempo.tracer` — the in-process tracer with head sampling;
* :mod:`repro.tempo.store` — the trace store (search, assembly, eviction);
* :mod:`repro.tempo.traceql` — a TraceQL subset (lexer → parser → engine);
* :mod:`repro.tempo.instrument` — pipeline glue (envelope headers, alert
  correlation, receiver wrappers);
* :mod:`repro.tempo.metrics` — tracer self-metrics exported into the TSDB
  with exemplar trace IDs.
"""

from repro.tempo.model import Span, SpanContext, SpanStatus
from repro.tempo.store import TraceStore, TraceSummary
from repro.tempo.tracer import SpanHandle, Tracer

__all__ = [
    "Span",
    "SpanContext",
    "SpanStatus",
    "SpanHandle",
    "TraceStore",
    "TraceSummary",
    "Tracer",
]
