"""Span model and W3C-traceparent-style context propagation.

A *span* is one timed stage of work attributed to a *service* (``redfish``,
``broker``, ``loki``, ...).  Spans sharing a ``trace_id`` form a trace; the
parent/child links reconstruct the pipeline's causal chain.  Context rides
on message envelopes as a single ``traceparent`` header in the W3C Trace
Context wire format (``00-<trace-id>-<span-id>-<flags>``), the same header
real Tempo/OpenTelemetry deployments propagate through Kafka.

Timestamps are nanoseconds on the simulated clock, like everything else in
the stack — which is what makes per-stage latency attribution exact rather
than sampled.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.common.errors import ValidationError

#: Header/envelope key carrying the serialized context.
TRACEPARENT_KEY = "traceparent"

#: The only version of the W3C format we emit or accept.
_TRACEPARENT_RE = re.compile(
    r"^00-(?P<trace>[0-9a-f]{32})-(?P<span>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

_SAMPLED_FLAG = 0x01


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of a span: enough to parent a child to it."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id):
            raise ValidationError(f"bad trace id: {self.trace_id!r}")
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id):
            raise ValidationError(f"bad span id: {self.span_id!r}")

    def to_traceparent(self) -> str:
        """Serialize as a W3C ``traceparent`` header value."""
        flags = _SAMPLED_FLAG if self.sampled else 0
        return f"00-{self.trace_id}-{self.span_id}-{flags:02x}"

    @classmethod
    def from_traceparent(cls, value: str) -> "SpanContext | None":
        """Parse a header value; returns ``None`` on any malformation
        (tracing must never break the pipeline it observes)."""
        m = _TRACEPARENT_RE.match(value)
        if m is None:
            return None
        return cls(
            trace_id=m.group("trace"),
            span_id=m.group("span"),
            sampled=bool(int(m.group("flags"), 16) & _SAMPLED_FLAG),
        )


class SpanStatus(enum.Enum):
    OK = "ok"
    ERROR = "error"


@dataclass
class Span:
    """One timed, attributed stage of work inside a trace.

    ``end_ns`` is ``None`` while the span is open; an open span has zero
    duration for search and summary purposes.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    service: str
    name: str
    start_ns: int
    end_ns: int | None = None
    attributes: dict[str, str] = field(default_factory=dict)
    status: SpanStatus = SpanStatus.OK

    def __post_init__(self) -> None:
        if not self.service:
            raise ValidationError("span needs a service name")
        if not self.name:
            raise ValidationError("span needs a name")
        if self.end_ns is not None and self.end_ns < self.start_ns:
            raise ValidationError("span cannot end before it starts")

    @property
    def duration_ns(self) -> int:
        """Completed duration; an open span counts as zero."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, sampled=True)
