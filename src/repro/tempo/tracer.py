"""The in-process tracer: ID generation, head sampling, span recording.

Two recording styles are offered:

* :meth:`Tracer.start_trace` / :meth:`Tracer.start_span` return a
  :class:`SpanHandle` that is closed with ``end()`` — the familiar
  open/close style for synchronous work;
* :meth:`Tracer.record` writes a finished span with explicit start/end
  timestamps in one call — the natural style in a discrete-event
  simulation, where a stage like "broker queue wait" is only known to be
  over at the *consumer* side, long after the producer returned.

Sampling is head-based and decided once per trace at the root: a sampled-
out root returns ``None`` and every downstream stage, seeing no context,
records nothing.  ``sampling <= 0`` short-circuits before the RNG is
touched, so a disabled tracer is a pure no-op and perturbs nothing.
"""

from __future__ import annotations

import random
from collections.abc import Mapping

from repro.common.simclock import SimClock
from repro.tempo.model import TRACEPARENT_KEY, Span, SpanContext, SpanStatus
from repro.tempo.store import TraceStore


class SpanHandle:
    """An open span; ``end()`` stamps the finish time and stores it."""

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._ended = False

    @property
    def context(self) -> SpanContext:
        return self._span.context()

    @property
    def span(self) -> Span:
        return self._span

    def set_attribute(self, key: str, value: str) -> None:
        self._span.attributes[key] = value

    def end(self, status: SpanStatus = SpanStatus.OK) -> Span:
        if not self._ended:
            self._ended = True
            self._span.end_ns = self._tracer.now_ns
            self._span.status = status
            self._tracer._commit(self._span)
        return self._span


class Tracer:
    """Creates spans against the simulated clock and a :class:`TraceStore`."""

    def __init__(
        self,
        store: TraceStore,
        clock: SimClock,
        sampling: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sampling <= 1.0:
            raise ValueError(f"sampling must be in [0, 1], got {sampling}")
        self.store = store
        self._clock = clock
        self._sampling = sampling
        self._rng = random.Random(seed)
        self.traces_started = 0
        self.traces_sampled_out = 0
        self.spans_recorded = 0

    @property
    def enabled(self) -> bool:
        return self._sampling > 0.0

    @property
    def now_ns(self) -> int:
        """Clock passthrough for instrumentation sites without a clock."""
        return self._clock.now_ns

    # ------------------------------------------------------------------
    # ID generation and sampling
    # ------------------------------------------------------------------
    def _new_trace_id(self) -> str:
        return f"{self._rng.getrandbits(128):032x}"

    def _new_span_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"

    def _sample_root(self) -> bool:
        """One head-sampling decision per new trace."""
        if self._sampling <= 0.0:
            return False
        self.traces_started += 1
        if self._sampling >= 1.0:
            return True
        if self._rng.random() < self._sampling:
            return True
        self.traces_sampled_out += 1
        return False

    # ------------------------------------------------------------------
    # Open/close recording
    # ------------------------------------------------------------------
    def start_trace(
        self,
        service: str,
        name: str,
        start_ns: int | None = None,
        attributes: dict[str, str] | None = None,
    ) -> SpanHandle | None:
        """Begin a new root span, or ``None`` if the trace is sampled out."""
        if not self._sample_root():
            return None
        span = Span(
            trace_id=self._new_trace_id(),
            span_id=self._new_span_id(),
            parent_id=None,
            service=service,
            name=name,
            start_ns=self.now_ns if start_ns is None else start_ns,
            attributes=dict(attributes or {}),
        )
        return SpanHandle(self, span)

    def start_span(
        self,
        parent: SpanContext,
        service: str,
        name: str,
        start_ns: int | None = None,
        attributes: dict[str, str] | None = None,
    ) -> SpanHandle:
        """Begin a child span under an already-sampled context."""
        span = Span(
            trace_id=parent.trace_id,
            span_id=self._new_span_id(),
            parent_id=parent.span_id,
            service=service,
            name=name,
            start_ns=self.now_ns if start_ns is None else start_ns,
            attributes=dict(attributes or {}),
        )
        return SpanHandle(self, span)

    # ------------------------------------------------------------------
    # One-shot recording
    # ------------------------------------------------------------------
    def record(
        self,
        service: str,
        name: str,
        parent: SpanContext | None,
        start_ns: int,
        end_ns: int,
        attributes: dict[str, str] | None = None,
        status: SpanStatus = SpanStatus.OK,
    ) -> SpanContext | None:
        """Record a finished span with explicit timestamps.

        With ``parent=None`` this roots a new trace (subject to the head-
        sampling decision); otherwise the span joins the parent's trace
        unconditionally.  Returns the new span's context for further
        children, or ``None`` if the root was sampled out.
        """
        if parent is None:
            if not self._sample_root():
                return None
            trace_id = self._new_trace_id()
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id=parent_id,
            service=service,
            name=name,
            start_ns=start_ns,
            end_ns=end_ns,
            attributes=dict(attributes or {}),
            status=status,
        )
        self._commit(span)
        return span.context()

    def _commit(self, span: Span) -> None:
        self.store.add(span)
        self.spans_recorded += 1

    # ------------------------------------------------------------------
    # Context propagation
    # ------------------------------------------------------------------
    @staticmethod
    def inject(ctx: SpanContext) -> dict[str, str]:
        """Context → carrier headers for a message envelope."""
        return {TRACEPARENT_KEY: ctx.to_traceparent()}

    @staticmethod
    def extract(carrier: Mapping[str, str]) -> SpanContext | None:
        """Carrier headers → context; ``None`` if absent or malformed."""
        value = carrier.get(TRACEPARENT_KEY)
        if value is None:
            return None
        return SpanContext.from_traceparent(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {
            "traces_started": self.traces_started,
            "traces_sampled_out": self.traces_sampled_out,
            "spans_recorded": self.spans_recorded,
        }
