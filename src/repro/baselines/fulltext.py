"""Elasticsearch-style full-text indexed log store.

Every token of every line goes into an inverted index, which is what
Loki's design explicitly avoids.  The trade-off bench (C3) measures both
sides: this store pays a much larger index and slower ingest, but answers
arbitrary content queries without scanning.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet
from repro.loki.model import LogEntry

_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+")


class FullTextLogStore:
    """Documents + inverted token index + label postings."""

    def __init__(self) -> None:
        #: doc id -> (timestamp, labels, line)
        self._docs: list[tuple[int, LabelSet, str]] = []
        self._token_postings: dict[str, list[int]] = {}
        self._label_postings: dict[tuple[str, str], list[int]] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self, labels: Mapping[str, str] | LabelSet, timestamp_ns: int, line: str
    ) -> int:
        """Index one document; returns its doc id."""
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        doc_id = len(self._docs)
        self._docs.append((timestamp_ns, labelset, line))
        for token in set(_TOKEN_RE.findall(line.lower())):
            self._token_postings.setdefault(token, []).append(doc_id)
        for pair in labelset.items_tuple():
            self._label_postings.setdefault(pair, []).append(doc_id)
        return doc_id

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def search(
        self,
        tokens: list[str],
        label_equals: Mapping[str, str] | None = None,
        start_ns: int = 0,
        end_ns: int | None = None,
    ) -> list[tuple[int, LabelSet, str]]:
        """Docs containing every token (AND), optionally label-filtered."""
        if not tokens:
            raise ValidationError("full-text search needs at least one token")
        posting_lists = []
        for token in tokens:
            postings = self._token_postings.get(token.lower())
            if not postings:
                return []
            posting_lists.append(postings)
        if label_equals:
            for name, value in label_equals.items():
                postings = self._label_postings.get((name, value))
                if not postings:
                    return []
                posting_lists.append(postings)
        # Intersect smallest-first.
        posting_lists.sort(key=len)
        result = set(posting_lists[0])
        for postings in posting_lists[1:]:
            result &= set(postings)
            if not result:
                return []
        out = []
        for doc_id in sorted(result):
            ts, labels, line = self._docs[doc_id]
            if ts < start_ns:
                continue
            if end_ns is not None and ts >= end_ns:
                continue
            out.append((ts, labels, line))
        return out

    # ------------------------------------------------------------------
    # Accounting (the C3 comparison axes)
    # ------------------------------------------------------------------
    def index_bytes(self) -> int:
        """Resident inverted-index size (tokens + postings + labels)."""
        total = 0
        for token, postings in self._token_postings.items():
            total += len(token.encode()) + 8 * len(postings)
        for (name, value), postings in self._label_postings.items():
            total += len(name.encode()) + len(value.encode()) + 8 * len(postings)
        return total

    def stored_bytes(self) -> int:
        """Raw document bytes (ES stores _source uncompressed-ish)."""
        return sum(len(line.encode()) for _, _, line in self._docs)

    def doc_count(self) -> int:
        return len(self._docs)

    def unique_tokens(self) -> int:
        return len(self._token_postings)

    @staticmethod
    def entries_of(results: list[tuple[int, LabelSet, str]]) -> list[LogEntry]:
        return [LogEntry(ts, line) for ts, _, line in results]
