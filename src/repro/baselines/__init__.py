"""Comparison baselines.

The paper motivates Loki's design by contrast: "In contrast with other
logging platforms, Loki does not index the text of the logs ... a small
index and compressed chunks significantly reduce the costs for storage
and the log query times" (§III.A), and motivates the automation by
contrast with manual monitoring: "A person would be spending their time
physically looking through the HPE tools ... read it line by line"
(§IV.A).  Both contrasts are implemented so benches C3 and C5 can measure
them:

* :mod:`repro.baselines.fulltext` — an Elasticsearch-style inverted
  full-text index over log content;
* :mod:`repro.baselines.grepstore` — the no-index linear-scan store;
* :mod:`repro.baselines.manual` — the human-polling detection model.
"""

from repro.baselines.fulltext import FullTextLogStore
from repro.baselines.grepstore import GrepLogStore
from repro.baselines.manual import ManualMonitoringModel

__all__ = ["FullTextLogStore", "GrepLogStore", "ManualMonitoringModel"]
