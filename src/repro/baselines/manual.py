"""Manual-monitoring detection model (the paper's counterfactual).

§IV.A: "Without this implementation, there would not be an automatic way
of being alerted to leaks ... A person would be spending their time
physically looking through the HPE tools and this would be their job for
the whole day. Because these tools looks like lines without any color
differentiation, a person would have to read it line by line."

The model: a staff member scans the event feed every ``scan_interval``;
during a scan they read line-by-line at ``lines_per_second`` through the
backlog since the previous scan, and notice the fault line only when they
reach it (with a miss probability per pass — interspersed events are easy
to skip).  Detection time = when their reading position crosses the fault
event in a scan where they don't miss it.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.simclock import NANOS_PER_SECOND, minutes


class ManualMonitoringModel:
    """Computes time-to-detection for a fault event in a log backlog."""

    def __init__(
        self,
        scan_interval_ns: int = minutes(30),
        lines_per_second: float = 10.0,
        miss_probability: float = 0.2,
        seed: int = 0,
    ) -> None:
        if scan_interval_ns <= 0:
            raise ValidationError("scan interval must be positive")
        if lines_per_second <= 0:
            raise ValidationError("reading speed must be positive")
        if not 0.0 <= miss_probability < 1.0:
            raise ValidationError("miss probability must be in [0, 1)")
        self.scan_interval_ns = scan_interval_ns
        self.lines_per_second = lines_per_second
        self.miss_probability = miss_probability
        self._rng = np.random.default_rng(seed)

    def detection_time_ns(
        self,
        fault_ns: int,
        background_rate_per_s: float,
        first_scan_offset_ns: int | None = None,
    ) -> int:
        """When a human notices an event that occurred at ``fault_ns``.

        ``background_rate_per_s`` is the rate of other log lines the fault
        line is interspersed with; the reader must wade through the
        backlog accumulated since their last scan.
        """
        if background_rate_per_s < 0:
            raise ValidationError("background rate must be non-negative")
        if first_scan_offset_ns is None:
            # Scans are unsynchronised with the fault: uniform phase.
            first_scan_offset_ns = int(
                self._rng.integers(0, self.scan_interval_ns)
            )
        scan_time = fault_ns + first_scan_offset_ns
        while True:
            # Backlog accumulated during one interval, read at human speed.
            backlog_lines = background_rate_per_s * (
                self.scan_interval_ns / NANOS_PER_SECOND
            )
            # The fault line sits at a uniform position in the backlog.
            position = float(self._rng.uniform(0.0, 1.0))
            reading_ns = int(
                backlog_lines * position / self.lines_per_second * NANOS_PER_SECOND
            )
            if self._rng.random() >= self.miss_probability:
                return scan_time + reading_ns
            scan_time += self.scan_interval_ns

    def mean_detection_latency_ns(
        self, background_rate_per_s: float, trials: int = 200
    ) -> float:
        """Monte-Carlo mean detection latency for a fault at t=0."""
        if trials < 1:
            raise ValidationError("need at least one trial")
        total = 0
        for _ in range(trials):
            total += self.detection_time_ns(0, background_rate_per_s)
        return total / trials
