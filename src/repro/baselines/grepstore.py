"""The no-index baseline: append everything, scan everything.

This is "a person reading line by line", mechanised — and also roughly
what querying raw files with grep costs.  Zero index bytes, O(corpus)
per query.
"""

from __future__ import annotations

from typing import Mapping

from repro.common.labels import LabelSet


class GrepLogStore:
    """Flat list of lines; every query is a full scan."""

    def __init__(self) -> None:
        self._docs: list[tuple[int, LabelSet, str]] = []

    def ingest(
        self, labels: Mapping[str, str] | LabelSet, timestamp_ns: int, line: str
    ) -> int:
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        self._docs.append((timestamp_ns, labelset, line))
        return len(self._docs) - 1

    def grep(
        self,
        needle: str,
        label_equals: Mapping[str, str] | None = None,
        start_ns: int = 0,
        end_ns: int | None = None,
    ) -> list[tuple[int, LabelSet, str]]:
        out = []
        for ts, labels, line in self._docs:
            if ts < start_ns or (end_ns is not None and ts >= end_ns):
                continue
            if needle not in line:
                continue
            if label_equals and any(
                labels.get(k, "") != v for k, v in label_equals.items()
            ):
                continue
            out.append((ts, labels, line))
        return out

    def index_bytes(self) -> int:
        return 0  # the whole point

    def stored_bytes(self) -> int:
        return sum(len(line.encode()) for _, _, line in self._docs)

    def doc_count(self) -> int:
        return len(self._docs)
