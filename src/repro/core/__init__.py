"""The paper's primary contribution: the integrated framework.

* :mod:`repro.core.transform` — the §IV.A data cleanup: raw Telemetry-API
  Redfish JSON (Fig. 2) → Loki push payload (Fig. 3);
* :mod:`repro.core.consumers` — the "K3s python pods" reading Kafka topics
  through the Telemetry API and writing to Loki / VictoriaMetrics;
* :mod:`repro.core.framework` — the full Figure-1 wiring: sources → bus →
  stores → rulers → Alertmanager → Slack + ServiceNow, plus dashboards;
* :mod:`repro.core.remediation` — automated remediation workflows;
* :mod:`repro.core.casestudies` — the two §IV case studies (cabinet leak,
  switch offline) as scripted end-to-end scenarios;
* :mod:`repro.core.mttr` — the MTTR study versus manual monitoring.
"""

from repro.core.transform import redfish_payload_to_push, clean_event
from repro.core.framework import MonitoringFramework, FrameworkConfig
from repro.core.remediation import AutoRemediator

__all__ = [
    "redfish_payload_to_push",
    "clean_event",
    "MonitoringFramework",
    "FrameworkConfig",
    "AutoRemediator",
]
