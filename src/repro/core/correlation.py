"""Automated root-cause analysis over correlated alerts.

Paper §I/§V: the framework enables "real-time automated root cause
analysis" by "the correlation of all events".  This module implements
that correlation: given the set of currently-active alerts, it uses the
physical topology (which Rosetta switch serves which nodes, which CDU
cools which cabinets, which chassis contains what) to partition alerts
into *root causes* and their *consequences*.

Heuristics, in precedence order:

1. **Switch fan-out** — a switch alert explains compute alerts on every
   node that switch serves (the paper's §IV.B motivation: "If one switch
   goes offline, the connection of the group of eight compute nodes goes
   down").
2. **Cooling fan-out** — a CDU alert explains thermal alerts on every
   component inside the cabinets that CDU cools.
3. **Containment** — an alert on an enclosing component (cabinet,
   chassis) explains alerts on components inside it.

Unexplained alerts are their own roots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.xname import XName
from repro.alerting.events import AlertEvent
from repro.cluster.facility import FacilityModel
from repro.cluster.topology import Cluster

#: Labels inspected (in order) to locate an alert on the machine.
_LOCATION_LABELS = ("xname", "Context", "hostname")


@dataclass
class CauseGroup:
    """One root alert and the alerts it explains."""

    root: AlertEvent
    consequences: list[AlertEvent] = field(default_factory=list)
    rule: str = ""  # which heuristic linked them

    @property
    def size(self) -> int:
        return 1 + len(self.consequences)


@dataclass
class RcaReport:
    """The analysis result: cause groups, largest first."""

    groups: list[CauseGroup]

    @property
    def alert_count(self) -> int:
        return sum(g.size for g in self.groups)

    @property
    def root_count(self) -> int:
        return len(self.groups)

    def compression_factor(self) -> float:
        """Alerts per root cause — how much triage work correlation saves."""
        if not self.groups:
            return 0.0
        return self.alert_count / len(self.groups)

    def render(self) -> str:
        if not self.groups:
            return "(no active alerts)"
        lines = [
            f"{self.alert_count} active alert(s) -> "
            f"{self.root_count} probable root cause(s)"
        ]
        for group in self.groups:
            root = group.root
            lines.append(
                f"ROOT  {root.name} @ {_location(root) or '?'} "
                f"[{root.severity}]"
            )
            for alert in group.consequences:
                lines.append(
                    f"  └─ {alert.name} @ {_location(alert) or '?'} "
                    f"(via {group.rule})"
                )
        return "\n".join(lines)


def _location(alert: AlertEvent) -> str | None:
    for name in _LOCATION_LABELS:
        value = alert.labels.get(name)
        if value:
            return value
    for name in ("cdu", "pdu", "fs"):
        value = alert.labels.get(name)
        if value:
            return value
    return None


class RootCauseAnalyzer:
    """Correlates active alerts against the machine topology."""

    def __init__(
        self, cluster: Cluster, facility: FacilityModel | None = None
    ) -> None:
        self._cluster = cluster
        self._facility = facility
        # node xname (str) -> serving switch xname (str)
        self._switch_of: dict[str, str] = {}
        for sw_x, switch in cluster.switches.items():
            for node_x in switch.nodes:
                self._switch_of[str(node_x)] = str(sw_x)

    def analyze(self, alerts: list[AlertEvent]) -> RcaReport:
        """Partition ``alerts`` into cause groups (largest first)."""
        if any(not isinstance(a, AlertEvent) for a in alerts):
            raise ValidationError("analyze() takes AlertEvent instances")
        remaining = list(alerts)
        groups: list[CauseGroup] = []

        # Pass 1: switch roots absorb node-level alerts they serve.
        switch_alerts = [a for a in remaining if self._is_switch_alert(a)]
        for root in switch_alerts:
            root_switch = _location(root)
            consequences = [
                a
                for a in remaining
                if a is not root
                and self._switch_of.get(_location(a) or "") == root_switch
            ]
            if consequences or root in remaining:
                groups.append(
                    CauseGroup(root, consequences, rule="switch fan-out")
                )
                remaining = [
                    a for a in remaining if a is not root and a not in consequences
                ]

        # Pass 2: CDU roots absorb thermal/compute alerts in served cabinets.
        if self._facility is not None:
            cdu_alerts = [a for a in remaining if a.labels.get("cdu")]
            for root in cdu_alerts:
                cdu = self._facility.cdus.get(root.labels["cdu"])
                if cdu is None:
                    continue
                served = set(cdu.cabinets)
                consequences = [
                    a
                    for a in remaining
                    if a is not root and self._cabinet_of(a) in served
                ]
                groups.append(
                    CauseGroup(root, consequences, rule="cooling fan-out")
                )
                remaining = [
                    a for a in remaining if a is not root and a not in consequences
                ]

        # Pass 3: containment — enclosing components explain inner alerts.
        located = [(a, self._parse_location(a)) for a in remaining]
        located.sort(key=lambda pair: _depth(pair[1]))
        used: set[int] = set()
        for i, (root, root_x) in enumerate(located):
            if i in used or root_x is None:
                continue
            consequences = []
            for j in range(i + 1, len(located)):
                if j in used:
                    continue
                inner, inner_x = located[j]
                if inner_x is not None and root_x != inner_x and root_x.contains(inner_x):
                    consequences.append(inner)
                    used.add(j)
            if consequences:
                groups.append(CauseGroup(root, consequences, rule="containment"))
                used.add(i)

        # Whatever is left stands alone.
        for i, (alert, _) in enumerate(located):
            if i not in used:
                groups.append(CauseGroup(alert, [], rule="standalone"))
        # Un-locatable leftovers from passes 1-2 (no labels at all).
        for alert in remaining:
            if all(alert is not g.root and alert not in g.consequences
                   for g in groups):
                groups.append(CauseGroup(alert, [], rule="standalone"))

        groups.sort(key=lambda g: (-g.size, g.root.name))
        return RcaReport(groups)

    # -- helpers ------------------------------------------------------------
    def _is_switch_alert(self, alert: AlertEvent) -> bool:
        loc = _location(alert)
        if not loc:
            return False
        try:
            x = XName.parse(loc)
        except Exception:
            return False
        return x.is_switch

    def _cabinet_of(self, alert: AlertEvent) -> str | None:
        x = self._parse_location(alert)
        return f"x{x.cabinet}" if x is not None else None

    @staticmethod
    def _parse_location(alert: AlertEvent) -> XName | None:
        loc = _location(alert)
        if not loc:
            return None
        try:
            return XName.parse(loc)
        except Exception:
            return None


def _depth(x: XName | None) -> int:
    if x is None:
        return 99
    depth = 1
    for level in (x.chassis, x.slot, x.switch, x.bmc, x.node):
        if level is not None:
            depth += 1
    return depth
