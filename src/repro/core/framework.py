"""The integrated monitoring framework — the paper's Figure 1, assembled.

One object wires the full pipeline:

  sensors/Redfish/FM → HMS collector → Kafka → Telemetry API → k3s pods
  → { Loki (logs), VictoriaMetrics (metrics) } inside OMNI
  → { Ruler, vmalert } → Alertmanager → { Slack, ServiceNow }
  → Grafana dashboards over both stores.

Everything runs on one simulated clock; ``run_for`` advances the world.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.labels import Matcher, MatchOp
from repro.common.simclock import NANOS_PER_DAY, SimClock, hours, minutes, seconds
from repro.alerting.alertmanager import Alertmanager, Route
from repro.alerting.rules import RuleSpec
from repro.bus.broker import Broker
from repro.cluster.facility import FacilityModel
from repro.cluster.faults import FaultInjector
from repro.cluster.gpfs import GpfsFilesystem, GpfsModel
from repro.cluster.sensors import build_standard_bank
from repro.cluster.topology import Cluster, ClusterSpec
from repro.core.correlation import RootCauseAnalyzer
from repro.core.consumers import (
    LogLineConsumer,
    RedfishEventConsumer,
    SensorMetricConsumer,
)
from repro.exporters.aruba import ArubaExporter
from repro.exporters.blackbox import BlackboxExporter, ProbeTarget
from repro.exporters.delivery_exporter import DeliveryExporter
from repro.exporters.kafka_exporter import KafkaExporter
from repro.exporters.node import NodeExporter
from repro.exporters.ring_exporter import RingExporter
from repro.grafana.dashboard import Dashboard
from repro.grafana.datasource import (
    LokiDatasource,
    PrometheusDatasource,
    TempoDatasource,
)
from repro.grafana.panels import (
    HeatmapPanel,
    LogsPanel,
    StatPanel,
    TimeSeriesPanel,
    TopListPanel,
    TracePanel,
)
from repro.exporters.tenancy_exporter import TenancyExporter
from repro.exporters.objstore_exporter import ObjstoreExporter
from repro.exporters.queryx_exporter import QueryxExporter
from repro.loki.frontend import QueryFrontend
from repro.loki.logql.engine import LogQLEngine
from repro.loki.ruler import Ruler
from repro.loki.store import LokiStore
from repro.objstore.compactor import CompactionPolicy, Compactor
from repro.objstore.gateway import StoreGateway
from repro.objstore.index import ShipperIndex
from repro.objstore.objectstore import ObjectStore
from repro.objstore.shipper import ChunkShipper
from repro.objstore.tiered import TieredLokiStore
from repro.omni.anomaly import EwmaDetector, ProactiveMonitor
from repro.exporters.patterns_exporter import PatternsExporter
from repro.patterns.ingester import PatternIngester
from repro.patterns.miner import DrainConfig
from repro.patterns.ruler import BURST_EXPR, NOVEL_EXPR, PatternRuler
from repro.patterns.store import PatternStore
from repro.queryx.bloom import BloomStore
from repro.queryx.engine import DEFAULT_SLOW_QUERY_NS, ShardedQueryEngine
from repro.queryx.executor import QuerierPool
from repro.queryx.planner import QueryPlanner
from repro.omni.eventstore import EventStore, record_from_alert
from repro.omni.warehouse import OmniWarehouse
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.journal import NotificationJournal
from repro.resilience.receivers import (
    FlakyReceiver,
    IdempotentReceiver,
    RetryingReceiver,
)
from repro.ring.cluster import RingLokiCluster
from repro.selfheal.detector import FailureDetectorConfig
from repro.selfheal.manager import SelfHealConfig, SelfHealManager
from repro.selfheal.repairer import RingRepairerConfig
from repro.selfheal.supervisor import SupervisorConfig
from repro.exporters.selfheal_exporter import SelfHealExporter
from repro.servicenow.cmdb import build_from_cluster
from repro.servicenow.platform import ServiceNowPlatform, ServiceNowReceiver
from repro.servicenow.service_map import ServiceMap
from repro.shasta.fabric_manager import (
    FabricManager,
    FabricManagerMonitor,
    MONITOR_APP_LABEL,
    SwitchEvent,
)
from repro.shasta.console import ConsoleCollector, TOPIC_CONSOLE_LOGS
from repro.shasta.hms import (
    HmsCollector,
    TOPIC_CONTAINER_LOGS,
    TOPIC_REDFISH_EVENTS,
    TOPIC_SENSOR_TELEMETRY,
    TOPIC_SYSLOG,
)
from repro.shasta.ldms import LdmsAggregator, LdmsConsumer
from repro.shasta.redfish import RedfishEventSource
from repro.shasta.telemetry_api import TelemetryAPI
from repro.slackmock.webhook import SlackReceiver, SlackWebhook
from repro.tempo.instrument import PipelineTracing, TracingReceiver
from repro.tenancy.admission import AdmissionController
from repro.tenancy.limits import DEFAULT_TENANT, LimitsRegistry, TenantLimits
from repro.tenancy.scheduler import QueryScheduler
from repro.tempo.metrics import TraceMetricsExporter
from repro.tempo.store import TraceStore
from repro.tempo.tracer import Tracer
from repro.tempo.traceql.engine import TraceQLEngine
from repro.exporters.slo_exporter import SloExporter
from repro.slo.burnrate import (
    DEFAULT_BURN_WINDOWS,
    BurnWindow,
    burn_metric_name,
)
from repro.slo.manager import SloManager
from repro.slo.model import SLO
from repro.slo.sources import (
    AlertDeliverySource,
    IngestAvailabilitySource,
    PatternFreshnessSource,
    QueryLatencySource,
)
from repro.tsdb.promql import PromQLEngine
from repro.tsdb.vmagent import ScrapeTarget, VMAgent
from repro.tsdb.vmalert import VMAlert
from repro.common.jsonutil import dumps_compact

#: The paper's Figure-8 switch-offline pattern (§IV.B).
SWITCH_PATTERN = "[<severity>] problem:<problem>, xname:<xname>, state:<state>"

#: The paper's Figure-5 leak query, over the live-alerting window.
LEAK_QUERY = (
    'sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" '
    "| json [60m])) by (Severity, cluster, Context, MessageId, Message)"
)
#: Same shape with a short window, used for the alerting rule so alerts
#: resolve promptly once the condition clears (the 60m figure window would
#: hold the alert up for an hour).
LEAK_RULE_QUERY = (
    'sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" '
    "| json [5m])) by (Context, cluster)"
)
SWITCH_RULE_QUERY = (
    'sum(count_over_time({app="fabric_manager_monitor"} '
    '|= "fm_switch_offline" | pattern "' + SWITCH_PATTERN + '" [5m])) '
    "by (severity, problem, xname, state)"
)


def _reliable_delivery_default() -> bool:
    """CI's reliable-delivery leg flips the framework default via env so
    the whole integration suite runs in both delivery modes unmodified."""
    return os.environ.get("REPRO_RELIABLE_DELIVERY", "") not in ("", "0")


def _multi_tenancy_default() -> bool:
    """CI's multi-tenancy leg flips the framework default via env so the
    integration suite runs with the tenant plane switched on unmodified."""
    return os.environ.get("REPRO_MULTI_TENANCY", "") not in ("", "0")


def _object_storage_default() -> bool:
    """CI's object-storage leg flips the framework default via env so the
    integration suite runs with the tiered cold store switched on."""
    return os.environ.get("REPRO_OBJECT_STORAGE", "") not in ("", "0")


def _query_engine_default() -> bool:
    """CI's query-engine leg flips the framework default via env so the
    integration suite runs with the sharded read path switched on."""
    return os.environ.get("REPRO_QUERY_ENGINE", "") not in ("", "0")


def _self_healing_default() -> bool:
    """CI's self-healing leg flips the framework default via env so the
    integration suite runs with the detect/restart/repair loop on."""
    return os.environ.get("REPRO_SELF_HEAL", "") not in ("", "0")


def _pattern_mining_default() -> bool:
    """CI's pattern-mining leg flips the framework default via env so the
    integration suite runs with online template mining switched on."""
    return os.environ.get("REPRO_PATTERNS", "") not in ("", "0")


def _slo_default() -> bool:
    """CI's SLO leg flips the framework default via env so the
    integration suite runs with the SLO plane switched on unmodified."""
    return os.environ.get("REPRO_SLO", "") not in ("", "0")


#: Default objectives for the built-in SLOs; override per SLO name via
#: ``FrameworkConfig.slo_objectives``.
DEFAULT_SLO_OBJECTIVES: dict[str, float] = {
    "ingest-availability": 0.999,
    "query-latency": 0.95,
    "alert-delivery": 0.999,
    "pattern-freshness": 0.9,
}


@dataclass
class FrameworkConfig:
    """All the knobs, with production-plausible defaults."""

    cluster_spec: ClusterSpec = field(default_factory=ClusterSpec)
    cluster_name: str = "perlmutter"
    seed: int = 0
    # Collection cadences.
    redfish_poll_interval_ns: int = seconds(10)
    sensor_interval_ns: int = seconds(60)
    fm_poll_interval_ns: int = seconds(30)
    consumer_interval_ns: int = seconds(10)
    scrape_interval_ns: int = seconds(60)
    gpfs_interval_ns: int = seconds(60)
    console_interval_ns: int = seconds(60)
    console_lines_per_tick: int = 5
    ldms_interval_ns: int = seconds(60)
    facility_interval_ns: int = seconds(60)
    # Alerting cadences.
    ruler_interval_ns: int = seconds(30)
    vmalert_interval_ns: int = seconds(30)
    rule_for: str = "1m"  # "lasts more than one minute" (paper §IV.A)
    group_wait: str = "30s"
    group_interval: str = "5m"
    repeat_interval: str = "4h"
    # Node-temperature alert threshold (°C).
    hot_node_threshold_c: float = 90.0
    install_default_rules: bool = True
    # §II/§III.D "machine learning methods for proactive incident
    # response": EWMA anomaly scanning over key metrics.
    enable_proactive_detection: bool = False
    proactive_interval_ns: int = seconds(300)
    # Self-tracing of the pipeline (repro.tempo). 0.0 = off: no tracer is
    # constructed and every instrumented site takes its untraced path.
    tracing_sampling: float = 0.0
    tracing_max_traces: int = 10_000
    tracing_metrics_interval_ns: int = seconds(60)
    # Replicated ingest (repro.ring).  Off by default: logs land in a
    # single LokiStore as before.  On: pushes go through a distributor to
    # a consistent-hash ring of WAL-backed ingesters at write quorum.
    enable_ingest_ring: bool = False
    ring_ingesters: int = 4
    ring_replication: int = 3
    #: Availability zones the ring ingesters spread over (round-robin).
    #: 0 = unzoned; > 0 also turns on zone-aware replica placement.
    ring_zones: int = 0
    # Self-healing (repro.selfheal).  Off by default (or via the
    # REPRO_SELF_HEAL env var, for CI's self-healing leg).  On — and
    # only meaningful with the ingest ring also on — a heartbeat-driven
    # failure detector moves ring members through ACTIVE → SUSPECT →
    # DEAD → FORGOTTEN, the distributor routes writes/reads around
    # unhealthy members, a supervisor restarts crashed-but-recoverable
    # ingesters with capped exponential backoff, and an anti-entropy
    # repairer re-replicates a permanently lost member's streams onto
    # the surviving ring owners before releasing its tokens.
    enable_self_healing: bool = field(default_factory=_self_healing_default)
    selfheal_heartbeat_interval_ns: int = seconds(5)
    selfheal_suspect_after_ns: int = seconds(15)
    selfheal_dead_after_ns: int = seconds(45)
    selfheal_sweep_interval_ns: int = seconds(5)
    selfheal_repair_grace_ns: int = seconds(30)
    selfheal_repair_interval_ns: int = seconds(10)
    selfheal_supervisor_interval_ns: int = seconds(5)
    # At-least-once alert delivery (repro.resilience).  Off by default
    # (or via the REPRO_RELIABLE_DELIVERY env var, for CI's second leg):
    # receivers are called directly and a failure loses the notification.
    # On: consumers commit offsets only after processing (poison records
    # quarantine to per-topic DLQs), and every notification is journaled
    # and retried with backoff + circuit breaking until delivered, with
    # idempotency keys preventing duplicate incidents/posts.
    enable_reliable_delivery: bool = field(
        default_factory=_reliable_delivery_default
    )
    delivery_backoff_base_ns: int = seconds(30)
    delivery_backoff_cap_ns: int = minutes(10)
    delivery_backoff_jitter: float = 0.2
    #: None = retry forever (a lost alert is the unacceptable outcome);
    #: finite budgets dead-letter the notification in the journal.
    delivery_max_attempts: int | None = None
    breaker_failure_threshold: int = 3
    breaker_reset_timeout_ns: int = minutes(2)
    #: Consumer-side processing failures before a record is poison and
    #: quarantines to the topic's dead-letter queue.
    max_delivery_failures: int = 3
    # Multi-tenancy (repro.tenancy).  Off by default (or via the
    # REPRO_MULTI_TENANCY env var, for CI's tenancy leg): the stack is
    # single-tenant exactly as before.  On: every log push is attributed
    # to a tenant, tagged with the ``tenant`` stream label, limit-checked
    # at admission (typed 429s on overdraw), shuffle-sharded onto the
    # ingest ring when the ring is enabled, and queried through a fair
    # per-tenant scheduler in front of the split/cache frontend.
    enable_multi_tenancy: bool = field(default_factory=_multi_tenancy_default)
    default_tenant: str = DEFAULT_TENANT
    #: None = the generous built-in defaults every tenant inherits.
    tenant_default_limits: TenantLimits | None = None
    tenant_overrides: dict[str, TenantLimits] = field(default_factory=dict)
    #: Ingesters per tenant shard when the ingest ring is also enabled;
    #: 0 disables shuffle sharding (every tenant uses the whole ring).
    tenant_shard_size: int = 3
    #: Querier slots the fair scheduler multiplexes across tenants.
    query_max_concurrency: int = 4
    # Tiered object storage (repro.objstore).  Off by default (or via
    # the REPRO_OBJECT_STORAGE env var, for CI's object-storage leg):
    # chunks stay resident in ingester memory forever, exactly as
    # before.  On: a shipper periodically seals aged chunks and uploads
    # them to a simulated S3 bucket behind a period-partitioned index
    # (replica copies deduplicate by content hash), freeing hot memory;
    # a compactor merges small objects and applies retention; queries
    # merge recent-from-ingester with cold-from-gateway transparently.
    enable_object_storage: bool = field(default_factory=_object_storage_default)
    objstore_flush_interval_ns: int = minutes(5)
    objstore_compaction_interval_ns: int = minutes(30)
    objstore_index_period_ns: int = NANOS_PER_DAY
    objstore_target_object_bytes: int = 1 << 20
    #: None = cold chunks are kept forever; the OMNI retention manager
    #: still sweeps both tiers on its own schedule either way.
    objstore_default_retention_ns: int | None = None
    objstore_tenant_retention_ns: dict[str, int] = field(default_factory=dict)
    # Sharded parallel query engine (repro.queryx).  Off by default (or
    # via the REPRO_QUERY_ENGINE env var, for CI's query-engine leg):
    # queries run monolithically on one LogQL engine as before.  On:
    # range queries are planned into time-split × stream-shard
    # subqueries, fanned out across a pool of simulated querier workers
    # (accounted wall-clock = busiest worker, not the sum) and merged
    # back exactly; when object storage is also on, the compactor builds
    # per-stream n-gram bloom blocks and the store-gateway uses them to
    # skip cold chunks that cannot match a line filter.
    enable_query_engine: bool = field(default_factory=_query_engine_default)
    #: Stream shards per shardable query (Loki's -querier.max-query-parallelism).
    queryx_shard_count: int = 4
    #: Simulated querier workers in the executor pool.
    queryx_workers: int = 4
    #: Time-split interval; shared with the frontend cache so both cut a
    #: range at identical aligned boundaries.
    queryx_split_interval_ns: int = hours(1)
    #: Accounted wall-clock above this marks a query slow (SlowQueries).
    queryx_slow_query_threshold_ns: int = DEFAULT_SLOW_QUERY_NS
    #: Target false-positive rate for the compactor-built bloom blocks.
    queryx_bloom_fp_rate: float = 0.01
    # Online log-template mining (repro.patterns).  Off by default (or
    # via the REPRO_PATTERNS env var, for CI's pattern-mining leg).  On:
    # a Drain-style miner tees off every accepted log push per (tenant,
    # stream), maintaining templates with content-derived pattern ids;
    # period-partitioned pattern blocks persist through the object store
    # beside the chunks (when object storage is on) and the compactor
    # rebuilds them cold; ``detected_patterns`` is served through the
    # LogQL engine, logcli and the frontend cache; and a pattern ruler
    # emits self-resolving PatternBurst / NovelErrorPattern alerts whose
    # ``pattern_id`` label lets Alertmanager collapse an alert storm
    # into one grouped incident.
    enable_pattern_mining: bool = field(default_factory=_pattern_mining_default)
    #: Drain similarity threshold: the exact-match fraction a line needs
    #: to join an existing cluster instead of seeding a new one.
    patterns_sim_threshold: float = 0.5
    patterns_ruler_interval_ns: int = seconds(30)
    #: EWMA smoothing for per-template rate baselines.
    patterns_ewma_alpha: float = 0.3
    #: A warmed-up template bursts at burst_factor × its EWMA baseline.
    patterns_burst_factor: float = 8.0
    #: Absolute storm floor (lines/s): any template above this rate is
    #: bursting regardless of baseline — catches storms of brand-new
    #: templates that have no history yet.
    patterns_min_burst_rate: float = 50.0
    #: Evaluations of baseline history before relative bursts can fire.
    patterns_warmup_evals: int = 3
    #: How long a NovelErrorPattern series stays active before it
    #: self-resolves.
    patterns_novel_active_ns: int = minutes(10)
    #: Cold-start corpus bootstrap: templates first sighted within this
    #: window of startup are not "novel" — an empty template store makes
    #: every early line never-before-seen.
    patterns_novel_bootstrap_ns: int = seconds(90)
    # Service-level objectives (repro.slo).  Off by default (or via the
    # REPRO_SLO env var, for CI's SLO leg).  On: built-in SLOs for
    # ingest availability, query latency (query engine on), alert
    # delivery (reliable delivery on) and pattern-detection freshness
    # (pattern mining on) are registered with an SloManager; burn-rate
    # recording rules persist derived series back into the TSDB, vmalert
    # runs Google-SRE-workbook multi-window multi-burn-rate rules over
    # them, pages (severity=critical) open ServiceNow incidents while
    # slow-burn tickets only annotate, and budget exhaustion escalates
    # as a critical incident with the burn history attached.
    enable_slo: bool = field(default_factory=_slo_default)
    #: Recording-rule + budget evaluation cadence.
    slo_eval_interval_ns: int = seconds(30)
    #: Error-budget window shared by the built-in SLOs.
    slo_window: str = "30d"
    #: Per-SLO objective overrides on top of DEFAULT_SLO_OBJECTIVES.
    slo_objectives: dict[str, float] = field(default_factory=dict)
    #: The multi-window multi-burn-rate alert tiers.
    slo_burn_windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS
    #: A novel pattern detected within this bound counts as "fresh".
    slo_pattern_freshness_bound_ns: int = minutes(2)

    def __post_init__(self) -> None:
        if not 0.0 <= self.tracing_sampling <= 1.0:
            raise ValidationError("tracing_sampling must be in [0, 1]")
        if self.enable_reliable_delivery:
            if self.delivery_backoff_base_ns <= 0:
                raise ValidationError("delivery backoff base must be positive")
            if self.delivery_backoff_cap_ns < self.delivery_backoff_base_ns:
                raise ValidationError("delivery backoff cap must be >= base")
            if self.breaker_failure_threshold < 1:
                raise ValidationError("breaker threshold must be positive")
            if self.max_delivery_failures < 1:
                raise ValidationError("max_delivery_failures must be positive")
        if self.enable_ingest_ring:
            if self.ring_ingesters < 1:
                raise ValidationError("ring needs at least one ingester")
            if not 1 <= self.ring_replication <= self.ring_ingesters:
                raise ValidationError(
                    "ring_replication must be in [1, ring_ingesters]"
                )
            if not 0 <= self.ring_zones <= self.ring_ingesters:
                raise ValidationError(
                    "ring_zones must be in [0, ring_ingesters]"
                )
        if self.enable_self_healing and self.enable_ingest_ring:
            # The FailureDetectorConfig/RingRepairerConfig constructors
            # validate the relationships (suspect_after vs heartbeat gap,
            # dead_after vs suspect_after); here just the signs.
            for name in (
                "selfheal_heartbeat_interval_ns",
                "selfheal_suspect_after_ns",
                "selfheal_dead_after_ns",
                "selfheal_sweep_interval_ns",
                "selfheal_repair_interval_ns",
                "selfheal_supervisor_interval_ns",
            ):
                if getattr(self, name) <= 0:
                    raise ValidationError(f"{name} must be positive")
            if self.selfheal_repair_grace_ns < 0:
                raise ValidationError(
                    "selfheal_repair_grace_ns must be >= 0"
                )
        if self.enable_multi_tenancy:
            if not self.default_tenant:
                raise ValidationError("default_tenant must be non-empty")
            if self.query_max_concurrency < 1:
                raise ValidationError("query_max_concurrency must be >= 1")
            if self.tenant_shard_size < 0:
                raise ValidationError("tenant_shard_size must be >= 0")
            if (
                self.enable_ingest_ring
                and 0 < self.tenant_shard_size < self.ring_replication
            ):
                raise ValidationError(
                    "tenant_shard_size must be 0 (disabled) or >= "
                    "ring_replication"
                )
        if self.enable_object_storage:
            if self.objstore_flush_interval_ns <= 0:
                raise ValidationError(
                    "objstore_flush_interval_ns must be positive"
                )
            if self.objstore_compaction_interval_ns <= 0:
                raise ValidationError(
                    "objstore_compaction_interval_ns must be positive"
                )
            if self.objstore_index_period_ns <= 0:
                raise ValidationError(
                    "objstore_index_period_ns must be positive"
                )
            if self.objstore_target_object_bytes < 1:
                raise ValidationError(
                    "objstore_target_object_bytes must be positive"
                )
            if self.objstore_default_retention_ns is not None and (
                self.objstore_default_retention_ns <= 0
            ):
                raise ValidationError(
                    "objstore_default_retention_ns must be positive or None"
                )
        if self.enable_query_engine:
            if self.queryx_shard_count < 1:
                raise ValidationError("queryx_shard_count must be >= 1")
            if self.queryx_workers < 1:
                raise ValidationError("queryx_workers must be >= 1")
            if self.queryx_split_interval_ns <= 0:
                raise ValidationError(
                    "queryx_split_interval_ns must be positive"
                )
            if self.queryx_slow_query_threshold_ns <= 0:
                raise ValidationError(
                    "queryx_slow_query_threshold_ns must be positive"
                )
            if not 0.0 < self.queryx_bloom_fp_rate < 1.0:
                raise ValidationError(
                    "queryx_bloom_fp_rate must be in (0, 1)"
                )
        if self.enable_pattern_mining:
            if not 0.0 < self.patterns_sim_threshold <= 1.0:
                raise ValidationError(
                    "patterns_sim_threshold must be in (0, 1]"
                )
            if self.patterns_ruler_interval_ns <= 0:
                raise ValidationError(
                    "patterns_ruler_interval_ns must be positive"
                )
            if not 0.0 < self.patterns_ewma_alpha <= 1.0:
                raise ValidationError(
                    "patterns_ewma_alpha must be in (0, 1]"
                )
            if self.patterns_burst_factor <= 1.0:
                raise ValidationError("patterns_burst_factor must be > 1")
            if self.patterns_min_burst_rate <= 0.0:
                raise ValidationError(
                    "patterns_min_burst_rate must be positive"
                )
            if self.patterns_warmup_evals < 1:
                raise ValidationError("patterns_warmup_evals must be >= 1")
            if self.patterns_novel_active_ns <= 0:
                raise ValidationError(
                    "patterns_novel_active_ns must be positive"
                )
            if self.patterns_novel_bootstrap_ns < 0:
                raise ValidationError(
                    "patterns_novel_bootstrap_ns must be >= 0"
                )
        if self.enable_slo:
            if self.slo_eval_interval_ns <= 0:
                raise ValidationError("slo_eval_interval_ns must be positive")
            if not self.slo_burn_windows:
                raise ValidationError(
                    "slo_burn_windows needs at least one tier"
                )
            if self.slo_pattern_freshness_bound_ns <= 0:
                raise ValidationError(
                    "slo_pattern_freshness_bound_ns must be positive"
                )
            for name, objective in self.slo_objectives.items():
                if not 0.0 < objective < 1.0:
                    raise ValidationError(
                        f"slo objective for {name!r} must be in (0, 1) "
                        f"exclusive, got {objective}"
                    )
        for name in (
            "redfish_poll_interval_ns",
            "sensor_interval_ns",
            "fm_poll_interval_ns",
            "consumer_interval_ns",
            "scrape_interval_ns",
            "ruler_interval_ns",
            "vmalert_interval_ns",
        ):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")


class MonitoringFramework:
    """The assembled stack. Construct, :meth:`start`, then advance time."""

    def __init__(
        self, config: FrameworkConfig | None = None, clock: SimClock | None = None
    ) -> None:
        self.config = config or FrameworkConfig()
        self.clock = clock or SimClock()
        cfg = self.config

        # --- the machine ------------------------------------------------
        self.cluster = Cluster(cfg.cluster_spec)
        self.sensors = build_standard_bank(self.cluster, seed=cfg.seed)
        self.faults = FaultInjector(self.cluster, self.clock, self.sensors)
        self.gpfs = GpfsModel(
            [GpfsFilesystem("scratch"), GpfsFilesystem("community")],
            seed=cfg.seed + 7,
        )
        self.facility = FacilityModel(
            [str(x) for x in sorted(self.cluster.cabinets)], seed=cfg.seed + 11
        )

        # --- self-tracing (repro.tempo) ---------------------------------
        self.traces: TraceStore | None = None
        self.tracer: Tracer | None = None
        self.traceql: TraceQLEngine | None = None
        self.tracing: PipelineTracing | None = None
        self.trace_metrics: TraceMetricsExporter | None = None
        if cfg.tracing_sampling > 0.0:
            self.traces = TraceStore(cfg.tracing_max_traces)
            self.tracer = Tracer(
                self.traces,
                self.clock,
                sampling=cfg.tracing_sampling,
                seed=cfg.seed + 23,
            )
            self.traceql = TraceQLEngine(self.traces)
            self.tracing = PipelineTracing(self.tracer)

        # --- the Shasta telemetry plane -----------------------------------
        self.broker = Broker(self.clock)
        self.redfish_source = RedfishEventSource(self.cluster, self.clock)
        self.hms = HmsCollector(
            self.broker, self.clock, self.redfish_source, self.sensors,
            tracer=self.tracer,
        )
        self.telemetry_api = TelemetryAPI(self.broker, servers=2)
        self.telemetry_api.register_client("nersc-k3s", "token-nersc-k3s")
        self.console = ConsoleCollector(
            self.broker, self.clock, sorted(self.cluster.nodes),
            cluster=cfg.cluster_name, seed=cfg.seed + 13,
        )
        self.ldms = LdmsAggregator(
            self.broker, self.clock, self.cluster,
            seed=cfg.seed + 17, cluster_name=cfg.cluster_name,
        )

        # --- multi-tenancy (repro.tenancy) -------------------------------
        self.limits: LimitsRegistry | None = None
        self.admission: AdmissionController | None = None
        self.frontend: QueryFrontend | None = None
        self.scheduler: QueryScheduler | None = None
        self.tenancy_exporter: TenancyExporter | None = None
        if cfg.enable_multi_tenancy:
            self.limits = LimitsRegistry(
                cfg.tenant_default_limits, cfg.tenant_overrides
            )
            self.admission = AdmissionController(
                self.limits,
                self.clock,
                default_tenant=cfg.default_tenant,
                tracer=self.tracer,
            )

        # --- OMNI: the stores ------------------------------------------------
        self.ring: RingLokiCluster | None = None
        self.ring_exporter: RingExporter | None = None
        self.selfheal: SelfHealManager | None = None
        self.selfheal_exporter: SelfHealExporter | None = None
        if cfg.enable_ingest_ring:
            self.ring = RingLokiCluster(
                ingesters=cfg.ring_ingesters,
                replication_factor=cfg.ring_replication,
                tracer=self.tracer,
                shard_size=(
                    cfg.tenant_shard_size if cfg.enable_multi_tenancy else 0
                ),
                zones=cfg.ring_zones,
            )
            self.ring_exporter = RingExporter(self.ring)
            self.faults.attach_ring(self.ring)
            # Self-healing needs something to heal: with the ring off the
            # flag is a no-op, so CI's REPRO_SELF_HEAL leg can run the
            # whole suite (ring-less tests included) unmodified.
            if cfg.enable_self_healing:
                self.selfheal = SelfHealManager(
                    self.clock,
                    self.ring,
                    SelfHealConfig(
                        detector=FailureDetectorConfig(
                            heartbeat_interval_ns=(
                                cfg.selfheal_heartbeat_interval_ns
                            ),
                            suspect_after_ns=cfg.selfheal_suspect_after_ns,
                            dead_after_ns=cfg.selfheal_dead_after_ns,
                            sweep_interval_ns=cfg.selfheal_sweep_interval_ns,
                        ),
                        repairer=RingRepairerConfig(
                            grace_ns=cfg.selfheal_repair_grace_ns,
                            sweep_interval_ns=cfg.selfheal_repair_interval_ns,
                        ),
                        supervisor=SupervisorConfig(
                            sweep_interval_ns=(
                                cfg.selfheal_supervisor_interval_ns
                            ),
                        ),
                    ),
                    tracer=self.tracer,
                )
                self.selfheal_exporter = SelfHealExporter(self.selfheal)
                self.faults.attach_selfheal(self.selfheal)
        # Tiered cold storage wraps whatever hot tier is configured — the
        # ring when it is on, a plain LokiStore otherwise — so both CI
        # legs compose: REPRO_OBJECT_STORAGE=1 on top of the ring gives
        # replicated hot ingest *and* deduplicated cold flush.
        self.objstore: ObjectStore | None = None
        self.shipper_index: ShipperIndex | None = None
        self.shipper: ChunkShipper | None = None
        self.compactor: Compactor | None = None
        self.store_gateway: StoreGateway | None = None
        self.tiered: TieredLokiStore | None = None
        self.objstore_exporter: ObjstoreExporter | None = None
        self.blooms: BloomStore | None = None
        log_backend: RingLokiCluster | TieredLokiStore | LokiStore | None = (
            self.ring
        )
        if cfg.enable_object_storage:
            hot = self.ring if self.ring is not None else LokiStore()
            self.objstore = ObjectStore(self.clock)
            self.shipper_index = ShipperIndex(
                self.objstore, period_ns=cfg.objstore_index_period_ns
            )
            self.shipper = ChunkShipper(
                hot, self.objstore, self.shipper_index, self.clock,
                tracer=self.tracer,
            )
            # Bloom blocks ride the same bucket as the chunks; the
            # compactor builds them, the gateway consults them.
            if cfg.enable_query_engine:
                self.blooms = BloomStore(
                    self.objstore, fp_rate=cfg.queryx_bloom_fp_rate
                )
            self.compactor = Compactor(
                self.objstore,
                self.shipper_index,
                self.clock,
                policy=CompactionPolicy(
                    target_object_bytes=cfg.objstore_target_object_bytes
                ),
                default_retention_ns=cfg.objstore_default_retention_ns,
                tenant_retention_ns=cfg.objstore_tenant_retention_ns,
                tracer=self.tracer,
                blooms=self.blooms,
            )
            self.store_gateway = StoreGateway(
                self.objstore, self.shipper_index, self.clock,
                tracer=self.tracer,
                blooms=self.blooms,
            )
            self.tiered = TieredLokiStore(
                hot, self.objstore, self.shipper_index, self.shipper,
                self.compactor, self.store_gateway,
            )
            self.faults.attach_objstore(self.objstore, self.shipper)
            log_backend = self.tiered
        # --- online template mining (repro.patterns) ---------------------
        self.pattern_store: PatternStore | None = None
        self.pattern_ingester: PatternIngester | None = None
        self.pattern_ruler: PatternRuler | None = None
        self.patterns_exporter: PatternsExporter | None = None
        if cfg.enable_pattern_mining:
            drain_config = DrainConfig(sim_threshold=cfg.patterns_sim_threshold)
            # With object storage on, pattern blocks persist beside the
            # chunks; without, the store is memory-resident.
            self.pattern_store = PatternStore(
                self.objstore,
                period_ns=cfg.objstore_index_period_ns,
                config=drain_config,
                tracer=self.tracer,
            )
            self.pattern_ingester = PatternIngester(
                self.clock,
                self.pattern_store,
                config=drain_config,
                tracer=self.tracer,
                default_tenant=cfg.default_tenant,
            )
            if self.compactor is not None:
                self.compactor.patterns = self.pattern_store
            if self.store_gateway is not None:
                self.store_gateway.patterns = self.pattern_store
        self.warehouse = OmniWarehouse(
            self.clock, loki=log_backend, admission=self.admission,
            patterns=self.pattern_ingester,
        )
        self.faults.attach_patterns(self.warehouse, self.pattern_ingester)
        self.logql = LogQLEngine(self.warehouse.loki, patterns=self.pattern_store)
        self.promql = PromQLEngine(self.warehouse.tsdb)
        # --- sharded query engine (repro.queryx) -------------------------
        self.queryx: ShardedQueryEngine | None = None
        self.queryx_exporter: QueryxExporter | None = None
        if cfg.enable_query_engine:
            if self.store_gateway is not None:
                gateway = self.store_gateway

                def cold_latency_fn() -> int:
                    # Charges each subquery with the cold object-store
                    # latency it actually incurred (delta of this counter).
                    return gateway.fetch_latency_ns_total
            else:
                cold_latency_fn = None
            self.queryx = ShardedQueryEngine(
                self.warehouse.loki,
                self.clock,
                planner=QueryPlanner(
                    shard_count=cfg.queryx_shard_count,
                    split_ns=cfg.queryx_split_interval_ns,
                ),
                pool=QuerierPool(workers=cfg.queryx_workers),
                tracer=self.tracer,
                cold_latency_fn=cold_latency_fn,
                slow_query_threshold_ns=cfg.queryx_slow_query_threshold_ns,
            )
            self.faults.attach_queryx(self.queryx.pool)
        if cfg.enable_multi_tenancy:
            assert self.limits is not None
            # The frontend caches over whichever engine is configured;
            # with queryx on, every uncached sub-window fans out across
            # the querier pool, and the split intervals match so planner
            # and cache cut ranges at identical aligned boundaries.
            # Pattern queries always route to the LogQL engine (they
            # read period-partitioned blocks, not chunks, so sharding
            # buys nothing); the split matches the store's period so
            # window merging is exact.
            if self.queryx is not None:
                self.frontend = QueryFrontend(
                    self.queryx, self.clock,
                    split_ns=cfg.queryx_split_interval_ns,
                    pattern_source=(
                        self.logql if cfg.enable_pattern_mining else None
                    ),
                    pattern_split_ns=cfg.objstore_index_period_ns,
                )
            else:
                self.frontend = QueryFrontend(
                    self.logql, self.clock,
                    pattern_source=(
                        self.logql if cfg.enable_pattern_mining else None
                    ),
                    pattern_split_ns=cfg.objstore_index_period_ns,
                )
            self.scheduler = QueryScheduler(
                self.frontend,
                self.clock,
                registry=self.limits,
                max_concurrency=cfg.query_max_concurrency,
                tracer=self.tracer,
            )
        elif cfg.enable_pattern_mining:
            # No tenancy plane, but detected_patterns still wants the
            # frontend's window split + cache; no scheduler in front.
            self.frontend = QueryFrontend(
                self.queryx if self.queryx is not None else self.logql,
                self.clock,
                split_ns=(
                    cfg.queryx_split_interval_ns
                    if self.queryx is not None
                    else hours(1)
                ),
                pattern_source=self.logql,
                pattern_split_ns=cfg.objstore_index_period_ns,
            )
        if self.traces is not None:
            self.trace_metrics = TraceMetricsExporter(
                self.traces, self.warehouse.tsdb, self.clock,
                cluster=cfg.cluster_name,
            )

        # --- the k3s consumer pods -------------------------------------------
        token = "token-nersc-k3s"
        reliable = cfg.enable_reliable_delivery
        max_fail = cfg.max_delivery_failures
        self.redfish_consumer = RedfishEventConsumer(
            self.telemetry_api, token, TOPIC_REDFISH_EVENTS, self.warehouse,
            cluster=cfg.cluster_name, tracing=self.tracing,
            reliable=reliable, max_delivery_failures=max_fail,
        )
        self.sensor_consumer = SensorMetricConsumer(
            self.telemetry_api, token, TOPIC_SENSOR_TELEMETRY, self.warehouse,
            cluster=cfg.cluster_name, tracing=self.tracing,
            reliable=reliable, max_delivery_failures=max_fail,
        )
        self.syslog_consumer = LogLineConsumer(
            self.telemetry_api, token, TOPIC_SYSLOG, self.warehouse,
            tracing=self.tracing,
            reliable=reliable, max_delivery_failures=max_fail,
        )
        self.container_consumer = LogLineConsumer(
            self.telemetry_api, token, TOPIC_CONTAINER_LOGS, self.warehouse,
            tracing=self.tracing,
            reliable=reliable, max_delivery_failures=max_fail,
        )
        self.console_consumer = LogLineConsumer(
            self.telemetry_api, token, TOPIC_CONSOLE_LOGS, self.warehouse,
            tracing=self.tracing,
            reliable=reliable, max_delivery_failures=max_fail,
        )
        self.ldms_consumer = LdmsConsumer(
            self.telemetry_api, token, self.warehouse
        )

        # --- fabric manager + NERSC monitor ------------------------------------
        self.fabric_manager = FabricManager(self.cluster)
        self.fm_monitor = FabricManagerMonitor(
            self.fabric_manager,
            self.clock,
            sink=self._fm_sink,
            cluster_name=cfg.cluster_name,
        )

        # --- vmagent + exporters -------------------------------------------------
        self.vmagent = VMAgent(self.warehouse.tsdb, self.clock)
        self.node_exporter = NodeExporter(self.cluster, self.sensors)
        self.kafka_exporter = KafkaExporter(self.broker)
        self.aruba_exporter = ArubaExporter(seed=cfg.seed + 3)
        self.blackbox_exporter = BlackboxExporter(
            [
                ProbeTarget("telemetry-api", lambda: (True, 0.012)),
                ProbeTarget("loki-gateway", lambda: (True, 0.004)),
            ]
        )
        self.vmagent.add_target(
            ScrapeTarget("node", "node-exporter:9100", self.node_exporter)
        )
        self.vmagent.add_target(
            ScrapeTarget("kafka", "kafka-exporter:9308", self.kafka_exporter)
        )
        self.vmagent.add_target(
            ScrapeTarget("aruba", "aruba-exporter:9101", self.aruba_exporter)
        )
        self.vmagent.add_target(
            ScrapeTarget("blackbox", "blackbox-exporter:9115", self.blackbox_exporter)
        )
        if self.ring_exporter is not None:
            self.vmagent.add_target(
                ScrapeTarget("loki-ring", "ring-exporter:9102", self.ring_exporter)
            )
        if self.admission is not None:
            self.tenancy_exporter = TenancyExporter(
                self.admission, self.scheduler, self.broker
            )
            self.vmagent.add_target(
                ScrapeTarget(
                    "tenancy", "tenancy-exporter:9104", self.tenancy_exporter
                )
            )
            self.faults.attach_tenancy(self.warehouse, self.scheduler)
        if (
            self.objstore is not None
            and self.shipper_index is not None
            and self.shipper is not None
        ):
            self.objstore_exporter = ObjstoreExporter(
                self.objstore,
                self.shipper_index,
                self.shipper,
                compactor=self.compactor,
                gateway=self.store_gateway,
            )
            self.vmagent.add_target(
                ScrapeTarget(
                    "objstore", "objstore-exporter:9105", self.objstore_exporter
                )
            )
        if self.queryx is not None:
            self.queryx_exporter = QueryxExporter(
                self.queryx,
                gateway=self.store_gateway,
                blooms=self.blooms,
            )
            self.vmagent.add_target(
                ScrapeTarget(
                    "queryx", "queryx-exporter:9106", self.queryx_exporter
                )
            )
        if self.selfheal_exporter is not None:
            self.vmagent.add_target(
                ScrapeTarget(
                    "selfheal",
                    "selfheal-exporter:9107",
                    self.selfheal_exporter,
                )
            )

        # --- alerting plane ---------------------------------------------------------
        self.slack = SlackWebhook()
        cmdb = build_from_cluster(self.cluster, cfg.cluster_name)
        # Facility plant joins the CMDB so CDU/PDU incidents map to CIs.
        for cdu_name in self.facility.cdus:
            cmdb.add(cdu_name, "cmdb_ci_cooling", parent=cfg.cluster_name)
        for pdu_name in self.facility.pdus:
            cmdb.add(pdu_name, "cmdb_ci_pdu", parent=cfg.cluster_name)
        self.servicenow = ServiceNowPlatform(self.clock, cmdb=cmdb)
        child_routes = [
            Route(
                receiver="servicenow",
                matchers=(Matcher("severity", MatchOp.EQ, "critical"),),
                group_by=("alertname", "cluster"),
                group_wait=cfg.group_wait,
                group_interval=cfg.group_interval,
                repeat_interval=cfg.repeat_interval,
                continue_=True,
            ),
        ]
        if cfg.enable_slo:
            # Severity-tiered SLO routing.  Pages (severity=critical)
            # already matched the ServiceNow route above (continue=True)
            # and opened an incident; this route groups both pages and
            # slow-burn tickets per (alert, SLO) for the Slack channel —
            # tickets never reach ServiceNow at all.
            child_routes.append(
                Route(
                    receiver="slack",
                    matchers=(Matcher("category", MatchOp.EQ, "slo"),),
                    group_by=("alertname", "slo", "cluster"),
                    group_wait=cfg.group_wait,
                    group_interval=cfg.group_interval,
                    repeat_interval=cfg.repeat_interval,
                )
            )
        if cfg.enable_pattern_mining:
            # Storm suppression: pattern alerts group on pattern_id, so
            # a storm of thousands of identical lines — across streams
            # and ingesters — collapses into ONE aggregation group and
            # one notification per group_wait/group_interval window.
            child_routes.append(
                Route(
                    receiver="slack",
                    matchers=(Matcher("category", MatchOp.EQ, "patterns"),),
                    group_by=("alertname", "pattern_id", "cluster"),
                    group_wait=cfg.group_wait,
                    group_interval=cfg.group_interval,
                    repeat_interval=cfg.repeat_interval,
                )
            )
        child_routes.append(
            Route(
                receiver="slack",
                group_by=("alertname", "cluster"),
                group_wait=cfg.group_wait,
                group_interval=cfg.group_interval,
                repeat_interval=cfg.repeat_interval,
            )
        )
        route = Route(
            receiver="slack",
            group_by=("alertname", "cluster"),
            group_wait=cfg.group_wait,
            group_interval=cfg.group_interval,
            repeat_interval=cfg.repeat_interval,
            routes=child_routes,
        )
        self.alertmanager = Alertmanager(self.clock, route)
        self.dashboards = self._build_dashboards()
        slack_receiver: SlackReceiver | TracingReceiver = SlackReceiver(
            self.slack,
            dashboard_base_url=self.dashboards["overview"].url(),
        )
        sn_receiver: ServiceNowReceiver | TracingReceiver = ServiceNowReceiver(
            self.servicenow
        )
        ruler_notify = vmalert_notify = self.alertmanager.receive
        if self.tracing is not None:
            slack_receiver = TracingReceiver(slack_receiver, self.tracing)
            sn_receiver = TracingReceiver(sn_receiver, self.tracing)
            ruler_notify = self.tracing.notifier(self.alertmanager.receive, "ruler")
            vmalert_notify = self.tracing.notifier(
                self.alertmanager.receive, "vmalert"
            )
        # --- reliable delivery (repro.resilience) -----------------------
        # Chain per receiver: Retrying(Flaky(Idempotent(real))).  The
        # flaky wrapper is the RECEIVER_OUTAGE fault hook; the idempotent
        # wrapper sits *inside* it so a redelivered notification (e.g.
        # after an ambiguous failure) is dropped by key, never duplicated.
        self.journal: NotificationJournal | None = None
        self.flaky_receivers: dict[str, FlakyReceiver] = {}
        self.delivery_receivers: dict[str, RetryingReceiver] = {}
        self.delivery_exporter: DeliveryExporter | None = None
        if cfg.enable_reliable_delivery:
            self.journal = NotificationJournal(self.clock)
            for idx, receiver in enumerate((slack_receiver, sn_receiver)):
                flaky = FlakyReceiver(IdempotentReceiver(receiver), self.clock)
                retrying = RetryingReceiver(
                    flaky,
                    self.clock,
                    BackoffPolicy(
                        base_ns=cfg.delivery_backoff_base_ns,
                        cap_ns=cfg.delivery_backoff_cap_ns,
                        jitter=cfg.delivery_backoff_jitter,
                        seed=cfg.seed + 31 + idx,
                    ),
                    self.journal,
                    breaker=CircuitBreaker(
                        self.clock,
                        failure_threshold=cfg.breaker_failure_threshold,
                        reset_timeout_ns=cfg.breaker_reset_timeout_ns,
                    ),
                    max_attempts=cfg.delivery_max_attempts,
                    tracer=self.tracer,
                )
                self.flaky_receivers[retrying.name] = flaky
                self.delivery_receivers[retrying.name] = retrying
                self.alertmanager.register_receiver(retrying)
            self.faults.attach_delivery(
                receivers=self.flaky_receivers,
                consumers={
                    "redfish": self.redfish_consumer,
                    "sensor": self.sensor_consumer,
                    "syslog": self.syslog_consumer,
                    "container": self.container_consumer,
                    "console": self.console_consumer,
                },
                journal=self.journal,
            )
            self.delivery_exporter = DeliveryExporter(
                self.journal, self.delivery_receivers.values(), self.broker
            )
            self.vmagent.add_target(
                ScrapeTarget(
                    "alert-delivery",
                    "delivery-exporter:9103",
                    self.delivery_exporter,
                )
            )
        else:
            self.alertmanager.register_receiver(slack_receiver)
            self.alertmanager.register_receiver(sn_receiver)
        self.ruler = Ruler(self.logql, self.clock, ruler_notify)
        self.vmalert = VMAlert(self.promql, self.clock, vmalert_notify)
        if cfg.enable_pattern_mining:
            assert self.pattern_ingester is not None
            assert self.pattern_store is not None
            pattern_notify = self.alertmanager.receive
            if self.tracing is not None:
                pattern_notify = self.tracing.notifier(
                    self.alertmanager.receive, "pattern-ruler"
                )
            self.pattern_ruler = PatternRuler(
                self.clock,
                pattern_notify,
                self.pattern_ingester,
                self.pattern_store,
                cluster=cfg.cluster_name,
                ewma_alpha=cfg.patterns_ewma_alpha,
                burst_factor=cfg.patterns_burst_factor,
                min_burst_rate=cfg.patterns_min_burst_rate,
                warmup_evals=cfg.patterns_warmup_evals,
                novel_active_ns=cfg.patterns_novel_active_ns,
                novel_bootstrap_ns=cfg.patterns_novel_bootstrap_ns,
                tracer=self.tracer,
            )
            self.patterns_exporter = PatternsExporter(
                self.pattern_ingester, self.pattern_store, self.pattern_ruler
            )
            self.vmagent.add_target(
                ScrapeTarget(
                    "patterns", "patterns-exporter:9108", self.patterns_exporter
                )
            )
        # --- service-level objectives (repro.slo) -----------------------
        # Built last on the alerting plane: the SLI sources read the
        # journal/queryx/pattern counters, and budget escalation posts
        # straight into Alertmanager.
        self.slo_manager: SloManager | None = None
        self.slo_exporter: SloExporter | None = None
        if cfg.enable_slo:
            slo_notify = self.alertmanager.receive
            if self.tracing is not None:
                slo_notify = self.tracing.notifier(
                    self.alertmanager.receive, "slo-manager"
                )
            self.slo_manager = SloManager(
                self.clock,
                self.promql,
                self.warehouse.tsdb,
                slo_notify,
                windows=cfg.slo_burn_windows,
                cluster=cfg.cluster_name,
                tracer=self.tracer,
            )
            objectives = {**DEFAULT_SLO_OBJECTIVES, **cfg.slo_objectives}

            def _slo(name: str, description: str) -> SLO:
                return SLO(
                    name=name,
                    description=description,
                    objective=objectives[name],
                    window=cfg.slo_window,
                )

            self.slo_manager.register(
                _slo(
                    "ingest-availability",
                    "log entries accepted vs discarded or lost",
                ),
                IngestAvailabilitySource(
                    self.warehouse,
                    admission=self.admission,
                    distributor=(
                        self.ring.distributor if self.ring is not None else None
                    ),
                ),
            )
            if self.queryx is not None:
                self.slo_manager.register(
                    _slo(
                        "query-latency",
                        "queries under the slowness threshold",
                    ),
                    QueryLatencySource(self.queryx),
                )
            if self.journal is not None:
                self.slo_manager.register(
                    _slo(
                        "alert-delivery",
                        "alert notifications delivered vs dead-lettered",
                    ),
                    AlertDeliverySource(self.journal),
                )
            if self.pattern_ruler is not None:
                self.slo_manager.register(
                    _slo(
                        "pattern-freshness",
                        "novel error templates detected within the bound",
                    ),
                    PatternFreshnessSource(
                        self.pattern_ruler, cfg.slo_pattern_freshness_bound_ns
                    ),
                )
            for spec in self.slo_manager.rule_specs():
                self.vmalert.add_rule(spec)
            self.slo_exporter = SloExporter(self.slo_manager)
            self.vmagent.add_target(
                ScrapeTarget("slo", "slo-exporter:9109", self.slo_exporter)
            )
            self.faults.attach_slo(self.slo_manager)
        if cfg.install_default_rules:
            self._install_default_rules()

        self.proactive: ProactiveMonitor | None = None
        if cfg.enable_proactive_detection:
            # z=6 with a long warmup keeps the fleet-wide false-positive
            # rate at zero over the sensors' own noise, while a real
            # excursion (tens of degrees) scores far beyond it.
            self.proactive = ProactiveMonitor(
                self.warehouse.tsdb,
                self.clock,
                self.alertmanager.receive,
                detector=EwmaDetector(z_threshold=6.0, warmup=15),
            )
            self.proactive.watch_metric("node_temp_celsius", severity="warning")
            self.proactive.watch_metric("gpfs_write_mb_s", severity="warning")

        #: OMNI's event archive (paper §III.C: "anything that has a
        #: start and end time"); SN alerts are mirrored in periodically.
        self.eventstore = EventStore()

        self._started = False

    # ------------------------------------------------------------------
    # Wiring details
    # ------------------------------------------------------------------
    def _fm_sink(self, event: SwitchEvent) -> None:
        """The FM monitor pushes its event lines straight to Loki."""
        root = None
        if self.tracer is not None and self.tracing is not None:
            # The FM monitor bypasses the broker, so its trace starts at
            # the event and goes straight to the store write; the switch
            # alert correlates back via the xname label.
            root = self.tracer.record(
                "fabric_manager",
                "switch_event",
                None,
                start_ns=event.timestamp_ns,
                end_ns=self.clock.now_ns,
                attributes={"xname": event.xname, "state": event.state},
            )
        self.warehouse.ingest_log(
            {
                "app": MONITOR_APP_LABEL,
                "cluster": self.config.cluster_name,
            },
            event.timestamp_ns,
            event.to_line(),
            trace_ctx=root,
        )
        if root is not None and self.tracing is not None:
            self.tracing.store_span(
                root, "loki", "push", [{"xname": event.xname}]
            )

    def _scrape_gpfs(self) -> None:
        """GPFS health (paper §V future work) lands as metrics."""
        now = self.clock.now_ns
        for sample in self.gpfs.sample_all():
            labels = {"fs": sample.fs_name, "cluster": self.config.cluster_name}
            self.warehouse.ingest_metric("gpfs_write_mb_s", labels, sample.write_mb_s, now)
            self.warehouse.ingest_metric("gpfs_read_mb_s", labels, sample.read_mb_s, now)
            self.warehouse.ingest_metric("gpfs_iops", labels, sample.iops, now)
            self.warehouse.ingest_metric(
                "gpfs_crc_errors_total", labels, float(sample.crc_errors), now
            )
            self.warehouse.ingest_metric(
                "gpfs_unhealthy_nsds", labels, float(sample.unhealthy_nsds), now
            )
            self.warehouse.ingest_metric(
                "gpfs_healthy", labels, 1.0 if sample.healthy else 0.0, now
            )

    def _install_default_rules(self) -> None:
        cfg = self.config
        self.ruler.add_rule(
            RuleSpec(
                name="PerlmutterCabinetLeak",
                expr=LEAK_RULE_QUERY + " > 0",
                for_=cfg.rule_for,
                labels={"severity": "critical", "category": "facility"},
                annotations={
                    "summary": "Coolant leak detected in {{ $labels.Context }} "
                    "on {{ $labels.cluster }}",
                },
            )
        )
        self.ruler.add_rule(
            RuleSpec(
                name="SwitchOffline",
                expr=SWITCH_RULE_QUERY + " > 0",
                for_=cfg.rule_for,
                labels={"severity": "critical", "category": "network"},
                annotations={
                    "summary": "Rosetta switch {{ $labels.xname }} entered state "
                    "{{ $labels.state }}",
                },
            )
        )
        self.vmalert.add_rule(
            RuleSpec(
                name="NodeDown",
                expr="node_up == 0",
                for_=cfg.rule_for,
                labels={"severity": "critical", "category": "compute"},
                annotations={"summary": "Node {{ $labels.xname }} is down"},
            )
        )
        self.vmalert.add_rule(
            RuleSpec(
                name="NodeHotTemperature",
                expr=f"node_temp_celsius > {cfg.hot_node_threshold_c:g}",
                for_="5m",
                labels={"severity": "warning", "category": "compute"},
                annotations={
                    "summary": "Node {{ $labels.xname }} temperature is "
                    "{{ $value }} C"
                },
            )
        )
        self.vmalert.add_rule(
            RuleSpec(
                name="KafkaConsumerLag",
                expr="kafka_consumergroup_lag > 10000",
                for_="5m",
                labels={"severity": "warning", "category": "pipeline"},
                annotations={
                    "summary": "Consumer group {{ $labels.consumergroup }} lag "
                    "is {{ $value }}"
                },
            )
        )
        self.ruler.add_rule(
            RuleSpec(
                name="NodeKernelPanic",
                expr=(
                    'sum(count_over_time({data_type="console_log"} '
                    '|= "Kernel panic" [5m])) by (hostname, cluster) > 0'
                ),
                for_="0s",  # a panic needs no sustain window
                labels={"severity": "critical", "category": "compute"},
                annotations={
                    "summary": "Kernel panic on {{ $labels.hostname }} console"
                },
            )
        )
        self.vmalert.add_rule(
            RuleSpec(
                name="CduLowFlow",
                expr="facility_cdu_flow_lpm < 200",
                for_=cfg.rule_for,
                labels={"severity": "critical", "category": "facility"},
                annotations={
                    "summary": "CDU {{ $labels.cdu }} coolant flow down to "
                    "{{ $value }} LPM"
                },
            )
        )
        self.vmalert.add_rule(
            RuleSpec(
                name="FacilityHumidityHigh",
                expr="facility_room_humidity_percent > 65",
                for_="10m",
                labels={"severity": "warning", "category": "facility"},
                annotations={
                    "summary": "Machine-room humidity at {{ $value }}%"
                },
            )
        )
        self.vmalert.add_rule(
            RuleSpec(
                name="PduBreakerOpen",
                expr="facility_pdu_load_kw == 0",
                for_=cfg.rule_for,
                labels={"severity": "critical", "category": "facility"},
                annotations={
                    "summary": "PDU {{ $labels.pdu }} carries no load "
                    "(breaker open?)"
                },
            )
        )
        self.vmalert.add_rule(
            RuleSpec(
                name="TelemetrySilent",
                expr='absent(shasta_temperature_celsius)',
                for_="10m",
                labels={"severity": "critical", "category": "pipeline"},
                annotations={
                    "summary": "No Shasta sensor telemetry arriving — "
                    "the collection pipeline itself is down"
                },
            )
        )
        if self.ring is not None:
            self.vmalert.add_rule(
                RuleSpec(
                    name="IngesterDown",
                    expr="loki_ring_ingester_up == 0",
                    for_=cfg.rule_for,
                    labels={"severity": "warning", "category": "pipeline"},
                    annotations={
                        "summary": "Loki ingester {{ $labels.ingester }} is "
                        "down; writes continue at quorum "
                        f"{self.ring.distributor.write_quorum}/"
                        f"{self.ring.distributor.replication_factor}"
                    },
                )
            )
        if self.selfheal is not None:
            self.vmalert.add_rule(
                RuleSpec(
                    name="IngesterSuspect",
                    # One-hot lifecycle gauge from the ring exporter; no
                    # sustain window — suspicion is itself the sustained
                    # condition (heartbeats already stale for
                    # suspect_after), and the state may progress to DEAD
                    # before a second evaluation.
                    expr='ring_member_state{state="suspect"} > 0',
                    for_="0s",
                    labels={"severity": "warning", "category": "pipeline"},
                    annotations={
                        "summary": "Ingester {{ $labels.ingester }} "
                        "heartbeats have gone stale; writes are routing "
                        "around it"
                    },
                )
            )
            self.vmalert.add_rule(
                RuleSpec(
                    name="UnderReplicatedStreams",
                    # A live placement diff: fires while redundancy is
                    # genuinely lost, self-resolves the scrape after the
                    # repairer (or a restart + WAL replay) closes the gap.
                    expr="selfheal_under_replicated_streams > 0",
                    for_="0s",
                    labels={"severity": "critical", "category": "pipeline"},
                    annotations={
                        "summary": "{{ $value }} streams are missing "
                        "replicas; anti-entropy repair is pending"
                    },
                )
            )
        if cfg.enable_multi_tenancy:
            self.vmalert.add_rule(
                RuleSpec(
                    name="TenantRateLimited",
                    expr="tenant_ingest_discarded_recent > 0",
                    for_=cfg.rule_for,
                    labels={"severity": "warning", "category": "tenancy"},
                    annotations={
                        "summary": "Tenant {{ $labels.tenant }} is being "
                        "rate-limited: {{ $value }} lines discarded since "
                        "the last scrape"
                    },
                )
            )
        if cfg.enable_object_storage:
            self.vmalert.add_rule(
                RuleSpec(
                    name="ObjstoreFlushStalled",
                    expr="objstore_flush_failures_consecutive > 0",
                    for_=cfg.rule_for,
                    labels={"severity": "warning", "category": "storage"},
                    annotations={
                        "summary": "{{ $value }} consecutive chunk flushes "
                        "to object storage have failed; ingester memory is "
                        "not draining"
                    },
                )
            )
        if cfg.enable_query_engine:
            self.vmalert.add_rule(
                RuleSpec(
                    name="SlowQueries",
                    # The exporter gauge is a since-last-scrape delta, so
                    # it self-resolves on the next quiet scrape; no
                    # sustain window — one slow refresh is worth knowing.
                    expr="queryx_slow_queries_recent > 0",
                    for_="0s",
                    labels={"severity": "warning", "category": "query"},
                    annotations={
                        "summary": "{{ $value }} queries exceeded the "
                        "slow-query threshold since the last scrape"
                    },
                )
            )
        if cfg.enable_reliable_delivery:
            self.vmalert.add_rule(
                RuleSpec(
                    name="NotificationFailures",
                    expr="alert_delivery_pending > 0",
                    for_="10m",
                    labels={"severity": "warning", "category": "pipeline"},
                    annotations={
                        "summary": "{{ $value }} notifications pending "
                        "delivery to {{ $labels.receiver }}"
                    },
                )
            )
        self.vmalert.add_rule(
            RuleSpec(
                name="GpfsDegraded",
                expr="gpfs_unhealthy_nsds > 0",
                for_=cfg.rule_for,
                labels={"severity": "critical", "category": "storage"},
                annotations={
                    "summary": "GPFS {{ $labels.fs }} has {{ $value }} "
                    "unhealthy NSD servers"
                },
            )
        )
        if self.pattern_ruler is not None:
            # Pattern rules live on the *pattern* ruler, whose _query
            # reads the miner directly instead of PromQL.  Both fire
            # immediately (for_="0s"): a burst sample only exists while
            # the rate genuinely exceeds the baseline, and a novel error
            # template is by definition a one-time rising edge.
            self.pattern_ruler.add_rule(
                RuleSpec(
                    name="PatternBurst",
                    expr=BURST_EXPR,
                    for_="0s",
                    labels={"severity": "warning", "category": "patterns"},
                    annotations={
                        "summary": "Template '{{ $labels.pattern }}' is "
                        "bursting at {{ $value }} lines/s over its "
                        "baseline — storm grouped by pattern_id"
                    },
                )
            )
            self.pattern_ruler.add_rule(
                RuleSpec(
                    name="NovelErrorPattern",
                    expr=NOVEL_EXPR,
                    for_="0s",
                    labels={"severity": "critical", "category": "patterns"},
                    annotations={
                        "summary": "Never-before-seen error template "
                        "'{{ $labels.pattern }}' appeared"
                    },
                )
            )

    def _build_dashboards(self) -> dict[str, Dashboard]:
        loki_ds = LokiDatasource(self.logql)
        prom_ds = PrometheusDatasource(self.promql)
        overview = Dashboard("Perlmutter Monitoring Overview", uid="perlmutter-overview")
        overview.add_panel(
            LogsPanel(
                title="Redfish events",
                datasource=loki_ds,
                query='{data_type="redfish_event"}',
            )
        )
        overview.add_panel(
            TimeSeriesPanel(
                title="CabinetLeakDetected (count_over_time 60m)",
                datasource=loki_ds,
                query=LEAK_QUERY,
            )
        )
        overview.add_panel(
            LogsPanel(
                title="Fabric manager events",
                datasource=loki_ds,
                query='{app="fabric_manager_monitor"}',
            )
        )
        overview.add_panel(
            StatPanel(
                title="Nodes up",
                datasource=prom_ds,
                query="sum(node_up)",
            )
        )
        overview.add_panel(
            StatPanel(
                title="Max node temp",
                datasource=prom_ds,
                query="max(node_temp_celsius)",
                unit=" C",
            )
        )
        overview.add_panel(
            TopListPanel(
                title="Hottest nodes",
                datasource=prom_ds,
                query="topk(5, node_temp_celsius)",
                unit=" C",
            )
        )
        dashboards = {"overview": overview}
        if self.ring is not None:
            ring_dash = Dashboard("Ingest Ring", uid="ingest-ring")
            ring_dash.add_panel(
                StatPanel(
                    title="Ingesters up",
                    datasource=prom_ds,
                    query="sum(loki_ring_ingester_up)",
                )
            )
            ring_dash.add_panel(
                TopListPanel(
                    title="Entries per ingester",
                    datasource=prom_ds,
                    query="topk(16, loki_ring_ingester_entries_total)",
                    label="ingester",
                )
            )
            ring_dash.add_panel(
                TimeSeriesPanel(
                    title="Distributor quorum failures",
                    datasource=prom_ds,
                    query="loki_distributor_quorum_failures_total",
                )
            )
            ring_dash.add_panel(
                StatPanel(
                    title="WAL segments awaiting checkpoint",
                    datasource=prom_ds,
                    query="sum(loki_ring_wal_segments)",
                )
            )
            ring_dash.add_panel(
                StatPanel(
                    title="Records recovered by WAL replay",
                    datasource=prom_ds,
                    query="sum(loki_ring_wal_replayed_records_total)",
                )
            )
            dashboards["ring"] = ring_dash
        if self.selfheal is not None:
            selfheal = Dashboard("Self-Healing", uid="self-healing")
            selfheal.add_panel(
                TimeSeriesPanel(
                    title="Members by lifecycle state",
                    datasource=prom_ds,
                    query="selfheal_members",
                )
            )
            selfheal.add_panel(
                TopListPanel(
                    title="Heartbeat age per member",
                    datasource=prom_ds,
                    query="topk(16, ring_member_heartbeat_age_seconds)",
                    label="ingester",
                    unit=" s",
                )
            )
            selfheal.add_panel(
                TimeSeriesPanel(
                    title="Under-replicated streams (alert signal)",
                    datasource=prom_ds,
                    query="selfheal_under_replicated_streams",
                )
            )
            selfheal.add_panel(
                StatPanel(
                    title="Members retired by repair",
                    datasource=prom_ds,
                    query="sum(selfheal_members_repaired_total)",
                )
            )
            selfheal.add_panel(
                StatPanel(
                    title="Entries re-replicated",
                    datasource=prom_ds,
                    query="sum(selfheal_entries_copied_total)",
                )
            )
            selfheal.add_panel(
                TimeSeriesPanel(
                    title="Supervisor restarts / WAL replays",
                    datasource=prom_ds,
                    query="selfheal_supervisor_restarts_total",
                )
            )
            selfheal.add_panel(
                TimeSeriesPanel(
                    title="Lifecycle transitions by kind",
                    datasource=prom_ds,
                    query="selfheal_transitions_total",
                )
            )
            dashboards["selfheal"] = selfheal
        if self.config.enable_reliable_delivery:
            delivery = Dashboard("Alert Delivery", uid="alert-delivery")
            delivery.add_panel(
                StatPanel(
                    title="Pending notifications",
                    datasource=prom_ds,
                    query="sum(alert_delivery_pending)",
                )
            )
            delivery.add_panel(
                StatPanel(
                    title="Notifications delivered",
                    datasource=prom_ds,
                    query="sum(alert_delivery_delivered_total)",
                )
            )
            delivery.add_panel(
                TimeSeriesPanel(
                    title="Delivery retries",
                    datasource=prom_ds,
                    query="alert_delivery_retries_total",
                )
            )
            delivery.add_panel(
                TopListPanel(
                    title="Breaker state (0 closed / 2 open)",
                    datasource=prom_ds,
                    query="topk(8, alert_delivery_breaker_state)",
                    label="receiver",
                )
            )
            delivery.add_panel(
                StatPanel(
                    title="Dead-lettered notifications",
                    datasource=prom_ds,
                    query="sum(alert_delivery_dead_lettered_total)",
                )
            )
            delivery.add_panel(
                TimeSeriesPanel(
                    title="DLQ depth",
                    datasource=prom_ds,
                    query="sum(kafka_dlq_records)",
                )
            )
            dashboards["delivery"] = delivery
        if self.config.enable_multi_tenancy:
            tenants = Dashboard("Tenants", uid="tenants")
            tenants.add_panel(
                TopListPanel(
                    title="Ingest accepted per tenant",
                    datasource=prom_ds,
                    query="topk(16, tenant_ingest_entries_total)",
                    label="tenant",
                )
            )
            tenants.add_panel(
                TimeSeriesPanel(
                    title="Lines discarded since last scrape (alert signal)",
                    datasource=prom_ds,
                    query="tenant_ingest_discarded_recent",
                )
            )
            tenants.add_panel(
                TopListPanel(
                    title="Active streams per tenant",
                    datasource=prom_ds,
                    query="topk(16, tenant_active_streams)",
                    label="tenant",
                )
            )
            tenants.add_panel(
                StatPanel(
                    title="Pushes rejected (429s)",
                    datasource=prom_ds,
                    query="sum(tenant_pushes_rejected_total)",
                )
            )
            tenants.add_panel(
                TimeSeriesPanel(
                    title="Query queue depth per tenant",
                    datasource=prom_ds,
                    query="tenant_query_queue_depth",
                )
            )
            tenants.add_panel(
                TimeSeriesPanel(
                    title="Query wait p95 per tenant",
                    datasource=prom_ds,
                    query="tenant_query_wait_p95_seconds",
                )
            )
            dashboards["tenants"] = tenants
        if self.config.enable_object_storage:
            objstore = Dashboard("Object Storage", uid="object-storage")
            objstore.add_panel(
                StatPanel(
                    title="Cold chunk objects",
                    datasource=prom_ds,
                    query='sum(objstore_objects{kind="chunk"})',
                )
            )
            objstore.add_panel(
                TimeSeriesPanel(
                    title="Bucket bytes by kind",
                    datasource=prom_ds,
                    query="objstore_bytes",
                )
            )
            objstore.add_panel(
                TimeSeriesPanel(
                    title="Consecutive flush failures (alert signal)",
                    datasource=prom_ds,
                    query="objstore_flush_failures_consecutive",
                )
            )
            objstore.add_panel(
                StatPanel(
                    title="Replica dedup ratio",
                    datasource=prom_ds,
                    query="objstore_dedup_ratio",
                )
            )
            objstore.add_panel(
                TimeSeriesPanel(
                    title="Resident bytes freed by flushes",
                    datasource=prom_ds,
                    query='objstore_flush_bytes_total{kind="freed"}',
                )
            )
            objstore.add_panel(
                TimeSeriesPanel(
                    title="Store-gateway cold-read latency",
                    datasource=prom_ds,
                    query="objstore_gateway_last_query_seconds",
                )
            )
            dashboards["objstore"] = objstore
        if self.queryx is not None:
            queryx = Dashboard("Query Engine", uid="query-engine")
            queryx.add_panel(
                StatPanel(
                    title="Realized speedup (serial / wall)",
                    datasource=prom_ds,
                    query="queryx_speedup",
                    unit="x",
                )
            )
            queryx.add_panel(
                TimeSeriesPanel(
                    title="Last query latency: wall vs serial",
                    datasource=prom_ds,
                    query="queryx_last_query_seconds",
                )
            )
            queryx.add_panel(
                TopListPanel(
                    title="Worker busy time (stragglers stand out)",
                    datasource=prom_ds,
                    query="topk(16, queryx_worker_busy_seconds)",
                    label="worker",
                )
            )
            queryx.add_panel(
                TimeSeriesPanel(
                    title="Subquery retries (querier crashes)",
                    datasource=prom_ds,
                    query="queryx_subquery_retries_total",
                )
            )
            queryx.add_panel(
                TimeSeriesPanel(
                    title="Slow queries since last scrape (alert signal)",
                    datasource=prom_ds,
                    query="queryx_slow_queries_recent",
                )
            )
            if self.blooms is not None:
                queryx.add_panel(
                    StatPanel(
                        title="Bloom skip ratio",
                        datasource=prom_ds,
                        query="queryx_bloom_skip_ratio",
                    )
                )
                queryx.add_panel(
                    TimeSeriesPanel(
                        title="Cold chunks considered / fetched / skipped",
                        datasource=prom_ds,
                        query="queryx_gateway_chunks_total",
                    )
                )
            dashboards["queryx"] = queryx
        if self.pattern_ingester is not None:
            patterns = Dashboard("Log Patterns", uid="log-patterns")
            patterns.add_panel(
                StatPanel(
                    title="Distinct templates",
                    datasource=prom_ds,
                    query="patterns_templates",
                )
            )
            patterns.add_panel(
                StatPanel(
                    title="Compression ratio (lines per template)",
                    datasource=prom_ds,
                    query="patterns_compression_ratio",
                    unit="x",
                )
            )
            patterns.add_panel(
                TimeSeriesPanel(
                    title="Lines mined",
                    datasource=prom_ds,
                    query="patterns_lines_mined_total",
                )
            )
            patterns.add_panel(
                TopListPanel(
                    title="Busiest templates",
                    datasource=prom_ds,
                    query="topk(10, patterns_template_lines_total)",
                    label="pattern_id",
                )
            )
            patterns.add_panel(
                TimeSeriesPanel(
                    title="Active bursts (alert signal)",
                    datasource=prom_ds,
                    query="patterns_bursts_active",
                )
            )
            patterns.add_panel(
                StatPanel(
                    title="Novel error templates",
                    datasource=prom_ds,
                    query="patterns_novel_error_templates_total",
                )
            )
            dashboards["patterns"] = patterns
        if self.config.enable_slo:
            fastest = self.config.slo_burn_windows[0]
            slo_dash = Dashboard("SLO Overview", uid="slo-overview")
            slo_dash.add_panel(
                StatPanel(
                    title="Lowest budget remaining",
                    datasource=prom_ds,
                    query="slo_budget_remaining_ratio",
                    reducer="min",
                )
            )
            slo_dash.add_panel(
                StatPanel(
                    title="Budgets exhausted",
                    datasource=prom_ds,
                    query="slo_budget_exhausted",
                )
            )
            slo_dash.add_panel(
                TimeSeriesPanel(
                    title="Error budget remaining",
                    datasource=prom_ds,
                    query="slo_budget_remaining_ratio",
                )
            )
            slo_dash.add_panel(
                HeatmapPanel(
                    title="Burn rate heatmap (slo/window)",
                    datasource=prom_ds,
                    query="slo_burn_rate",
                    scale_max=fastest.factor,
                )
            )
            slo_dash.add_panel(
                TopListPanel(
                    title=f"Hottest {fastest.short} burn",
                    datasource=prom_ds,
                    query=f"topk(8, {burn_metric_name(fastest.short)})",
                    label="slo",
                    unit="x",
                )
            )
            slo_dash.add_panel(
                TimeSeriesPanel(
                    title="Bad events since last scrape",
                    datasource=prom_ds,
                    query="slo_bad_events_recent",
                )
            )
            dashboards["slo"] = slo_dash
        if self.traceql is not None:
            tempo_ds = TempoDatasource(self.traceql)
            tracing = Dashboard("Pipeline Tracing", uid="pipeline-tracing")
            tracing.add_panel(
                TracePanel(
                    title="Slowest delivered alert",
                    datasource=tempo_ds,
                    query='{ span.service = "alertmanager" }',
                )
            )
            tracing.add_panel(
                TimeSeriesPanel(
                    title="Pipeline stage latency p99",
                    datasource=prom_ds,
                    query="tempo_stage_latency_p99_seconds",
                )
            )
            dashboards["tracing"] = tracing
        return dashboards

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register every periodic activity on the clock (idempotent)."""
        if self._started:
            return
        cfg = self.config
        self.hms.run_periodic(cfg.redfish_poll_interval_ns, cfg.sensor_interval_ns)
        self.fm_monitor.run_periodic(cfg.fm_poll_interval_ns)
        self.clock.every(cfg.consumer_interval_ns, self._pump_consumers)
        self.clock.every(cfg.scrape_interval_ns, self._scrape_tick)
        self.clock.every(cfg.gpfs_interval_ns, self._scrape_gpfs)
        self.console.run_periodic(
            cfg.console_interval_ns, cfg.console_lines_per_tick
        )
        self.ldms.run_periodic(cfg.ldms_interval_ns)
        self.clock.every(cfg.facility_interval_ns, self._sample_facility)
        self.ruler.run_periodic(cfg.ruler_interval_ns)
        self.vmalert.run_periodic(cfg.vmalert_interval_ns)
        if self.proactive is not None:
            self.proactive.run_periodic(cfg.proactive_interval_ns)
        if self.trace_metrics is not None:
            self.clock.every(
                cfg.tracing_metrics_interval_ns, self.trace_metrics.export
            )
        if self.shipper is not None:
            self.clock.every(
                cfg.objstore_flush_interval_ns, self.shipper.flush
            )
        if self.compactor is not None:
            self.clock.every(
                cfg.objstore_compaction_interval_ns, self.compactor.run
            )
        if self.pattern_ruler is not None:
            self.pattern_ruler.run_periodic(cfg.patterns_ruler_interval_ns)
        if self.pattern_store is not None and self.objstore is not None:
            # Live pattern blocks ship on the chunk-flush cadence.
            self.clock.every(
                cfg.objstore_flush_interval_ns,
                self.pattern_store.persist_dirty,
            )
        if self.selfheal is not None:
            self.selfheal.start()
        if self.slo_manager is not None:
            self.slo_manager.run_periodic(cfg.slo_eval_interval_ns)
        self.clock.every(minutes(1), self._mirror_alert_events)
        self._started = True

    def _mirror_alert_events(self) -> None:
        for alert in self.servicenow.alerts():
            record_from_alert(self.eventstore, alert, self.clock.now_ns)

    def service_map(self) -> str:
        """The live, alert-aware service topology view (paper §III.D)."""
        smap = ServiceMap(self.servicenow.cmdb, self.config.cluster_name)
        return smap.render(self.servicenow.alerts())

    def root_cause_report(self):
        """Correlate the currently-active alerts into probable root
        causes (paper §I: "real-time automated root cause analysis")."""
        analyzer = RootCauseAnalyzer(self.cluster, self.facility)
        return analyzer.analyze(self.alertmanager.active_alerts())

    def _pump_consumers(self) -> None:
        self.redfish_consumer.pump()
        self.sensor_consumer.pump()
        self.syslog_consumer.pump()
        self.container_consumer.pump()
        self.console_consumer.pump()
        self.ldms_consumer.pump()

    def _sample_facility(self) -> None:
        """Environmental/facility series (paper §III.C) land as metrics."""
        sample = self.facility.sample(self.clock.now_ns)
        for name, labels, value in sample.flat_metrics():
            self.warehouse.ingest_metric(
                name, {**labels, "cluster": self.config.cluster_name},
                value, sample.timestamp_ns,
            )

    def _scrape_tick(self) -> None:
        self.aruba_exporter.step()
        self.vmagent.scrape_all()

    def run_for(self, duration_ns: int) -> None:
        """Advance the simulated world."""
        if not self._started:
            self.start()
        self.clock.advance(duration_ns)

    # ------------------------------------------------------------------
    # Log producers (rsyslog aggregators / container runtime)
    # ------------------------------------------------------------------
    def publish_syslog(self, labels: dict[str, str], timestamp_ns: int, line: str) -> None:
        """What an rsyslogd aggregator does: envelope into the syslog topic."""
        self.broker.produce(
            TOPIC_SYSLOG,
            dumps_compact({"labels": labels, "ts": timestamp_ns, "line": line}),
            key=labels.get("hostname"),
            timestamp_ns=timestamp_ns,
        )

    def publish_container_log(
        self, labels: dict[str, str], timestamp_ns: int, line: str
    ) -> None:
        self.broker.produce(
            TOPIC_CONTAINER_LOGS,
            dumps_compact({"labels": labels, "ts": timestamp_ns, "line": line}),
            key=labels.get("app"),
            timestamp_ns=timestamp_ns,
        )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def health_summary(self) -> dict[str, float]:
        """One-call status used by examples and integration tests."""
        summary = {
            "messages_ingested": float(self.warehouse.messages_ingested),
            "log_streams": float(self.warehouse.loki.stream_count()),
            "metric_series": float(self.warehouse.tsdb.series_count()),
            "alert_events": float(self.alertmanager.events_received),
            "notifications": float(self.alertmanager.notifications_sent),
            "notifications_failed": float(self.alertmanager.notifications_failed),
            "slack_messages": float(len(self.slack.messages)),
            "sn_incidents": float(len(self.servicenow.incidents())),
        }
        if self.journal is not None:
            stats = self.journal.stats()
            summary["deliveries_pending"] = float(stats["pending"])
            summary["deliveries_delivered"] = float(stats["delivered"])
            summary["deliveries_dead_lettered"] = float(stats["failed"])
            summary["records_dead_lettered"] = float(
                self.broker.records_dead_lettered
            )
        if self.admission is not None:
            counters = self.admission.counters.values()
            summary["tenants"] = float(len(self.admission.tenants()))
            summary["tenant_entries_discarded"] = float(
                sum(c.entries_discarded for c in counters)
            )
            summary["tenant_pushes_rejected"] = float(
                sum(c.pushes_rejected for c in counters)
            )
        if self.scheduler is not None:
            summary["tenant_queries_completed"] = float(
                sum(s.completed for s in self.scheduler.stats.values())
            )
        if self.tiered is not None and self.shipper is not None:
            ship = self.shipper.counters()
            summary["objstore_chunks_shipped"] = float(ship["chunks_shipped"])
            summary["objstore_chunks_deduped"] = float(ship["chunks_deduped"])
            summary["objstore_flush_failures"] = float(ship["flush_failures"])
            summary["objstore_cold_chunks"] = float(
                self.tiered.cold_chunk_count()
            )
            summary["objstore_cold_bytes"] = float(self.tiered.cold_bytes())
        if self.queryx is not None:
            stats = self.queryx.stats()
            summary["queryx_queries"] = float(stats["queries_total"])
            summary["queryx_subqueries"] = float(stats["subqueries_total"])
            summary["queryx_slow_queries"] = float(stats["slow_queries_total"])
            summary["queryx_retries"] = float(stats["pool_retries_total"])
            summary["queryx_speedup"] = float(stats["speedup"])
        if self.selfheal is not None:
            for key, value in self.selfheal.health_summary().items():
                summary[f"selfheal_{key}"] = value
        if self.blooms is not None:
            bloom_stats = self.blooms.counters()
            summary["queryx_bloom_blocks"] = float(bloom_stats["blocks"])
            summary["queryx_chunks_skipped"] = float(
                self.store_gateway.chunks_skipped_total
                if self.store_gateway is not None
                else 0
            )
        if self.pattern_ingester is not None and self.pattern_store is not None:
            summary["patterns_distinct_templates"] = float(
                self.pattern_store.pattern_count()
            )
            summary["patterns_lines_mined"] = float(
                self.pattern_ingester.lines_observed
            )
            summary["patterns_compression_ratio"] = (
                self.pattern_ingester.compression_ratio()
            )
            if self.pattern_ruler is not None:
                summary["patterns_bursts_detected"] = float(
                    self.pattern_ruler.bursts_detected
                )
                summary["patterns_novel_errors"] = float(
                    self.pattern_ruler.novel_detected
                )
        if self.slo_manager is not None:
            exhausted = 0.0
            for row in self.slo_manager.status():
                name = str(row["slo"]).replace("-", "_")
                summary[f"slo_{name}_budget_remaining"] = float(
                    row["budget_remaining"]
                )
                if row["state"] == "exhausted":
                    exhausted += 1.0
            summary["slo_budgets_exhausted"] = exhausted
            summary["slo_recording_samples"] = float(
                self.slo_manager.recording.samples_recorded
            )
        return summary
