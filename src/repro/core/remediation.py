"""Automated remediation workflows.

The paper's ambition (§I, §V): "alert remediation and real-time automated
root cause analysis ... aids in reducing the number of incidents
requiring troubleshooting from operational staff".  The remediator
watches ServiceNow for new incidents, dispatches the registered playbook
for the incident's category, and resolves the ticket once the playbook
reports success — recording the timeline that the MTTR study consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ValidationError
from repro.common.simclock import SimClock, minutes
from repro.servicenow.incidents import Incident, IncidentState
from repro.servicenow.platform import ServiceNowPlatform

#: A playbook takes the incident and returns True on successful remediation.
Playbook = Callable[[Incident], bool]


@dataclass
class RemediationRecord:
    """Timeline of one automated remediation."""

    incident_number: str
    detected_ns: int  # incident opened
    started_ns: int  # playbook dispatched
    finished_ns: int | None = None
    succeeded: bool | None = None


@dataclass
class _PlaybookEntry:
    match_substring: str
    playbook: Playbook
    duration_ns: int


class AutoRemediator:
    """Polls ServiceNow for fresh incidents and runs playbooks."""

    def __init__(
        self,
        clock: SimClock,
        platform: ServiceNowPlatform,
        default_duration_ns: int = minutes(10),
        operator: str = "auto-remediation",
    ) -> None:
        self._clock = clock
        self._platform = platform
        self._default_duration_ns = default_duration_ns
        self._operator = operator
        self._playbooks: list[_PlaybookEntry] = []
        self._seen: set[str] = set()
        self.records: list[RemediationRecord] = []

    def register_playbook(
        self,
        match_substring: str,
        playbook: Playbook,
        duration_ns: int | None = None,
    ) -> None:
        """Run ``playbook`` for incidents whose description contains the
        substring; the playbook "takes" ``duration_ns`` of simulated time."""
        if not match_substring:
            raise ValidationError("playbook needs a match substring")
        self._playbooks.append(
            _PlaybookEntry(
                match_substring,
                playbook,
                duration_ns if duration_ns is not None else self._default_duration_ns,
            )
        )

    def poll(self) -> int:
        """Scan for unseen incidents; dispatch playbooks. Returns dispatched."""
        dispatched = 0
        for incident in self._platform.incidents(IncidentState.NEW):
            if incident.number in self._seen:
                continue
            entry = self._match(incident)
            if entry is None:
                continue
            self._seen.add(incident.number)
            incident.assign(self._operator)
            record = RemediationRecord(
                incident_number=incident.number,
                detected_ns=incident.opened_at_ns,
                started_ns=self._clock.now_ns,
            )
            self.records.append(record)
            self._clock.call_later(
                entry.duration_ns,
                lambda i=incident, e=entry, r=record: self._finish(i, e, r),
            )
            dispatched += 1
        return dispatched

    def _match(self, incident: Incident) -> _PlaybookEntry | None:
        for entry in self._playbooks:
            if entry.match_substring in incident.short_description:
                return entry
        return None

    def _finish(
        self, incident: Incident, entry: _PlaybookEntry, record: RemediationRecord
    ) -> None:
        ok = bool(entry.playbook(incident))
        record.finished_ns = self._clock.now_ns
        record.succeeded = ok
        if ok:
            incident.resolve(
                self._clock.now_ns,
                note=f"auto-remediated via playbook '{entry.match_substring}'",
            )

    def run_periodic(self, interval_ns: int) -> None:
        self._clock.every(interval_ns, lambda: self.poll())

    def success_rate(self) -> float:
        done = [r for r in self.records if r.succeeded is not None]
        if not done:
            return 0.0
        return sum(1 for r in done if r.succeeded) / len(done)
