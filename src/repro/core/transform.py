"""The §IV.A transformation: Figure 2 in, Figure 3 out.

The paper walks through exactly what the Python clients do before sending
a Redfish event to Loki:

* convert the ISO-8601 ``EventTimestamp`` to a Unix epoch in nanoseconds;
* drop ``OriginOfCondition`` ("a link to the Redfish endpoint which is
  not useful") and ``MessageArgs`` ("duplicate information");
* enrich with ``cluster`` and ``data_type`` labels ("because there is
  more than one cluster at NERSC, and we store multiple types of string
  data in Loki");
* send ``Context`` as a label (critical for location filtering; bounded
  cardinality) and wrap ``Severity``/``MessageId``/``Message`` as a JSON
  string in the log content (unbounded variation → not labels);

This module is that client code.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import ValidationError
from repro.common.jsonutil import iso8601_to_ns
from repro.common.labels import LabelSet
from repro.loki.model import LogEntry, PushRequest, PushStream

#: Fields kept in the log content, in the paper's Figure-3 order.
CONTENT_FIELDS = ("Severity", "MessageId", "Message")
#: Fields the paper explicitly removes.
DROPPED_FIELDS = ("OriginOfCondition", "MessageArgs")


def clean_event(event: dict[str, Any]) -> tuple[int, str]:
    """Clean one raw Redfish event: returns ``(timestamp_ns, content)``.

    ``content`` is the compact JSON string of the kept fields — the exact
    string Figure 3 shows inside ``values``.
    """
    try:
        ts_text = event["EventTimestamp"]
    except KeyError:
        raise ValidationError("Redfish event missing EventTimestamp") from None
    timestamp_ns = iso8601_to_ns(ts_text)
    content_obj = {}
    for field in CONTENT_FIELDS:
        if field in event:
            content_obj[field] = event[field]
    if not content_obj:
        raise ValidationError("Redfish event has none of the content fields")
    # Keys stay in Figure-3 order (Severity, MessageId, Message).
    content = json.dumps(content_obj, separators=(",", ":"), sort_keys=False)
    return timestamp_ns, content


def redfish_payload_to_push(
    payload: dict[str, Any],
    cluster: str = "perlmutter",
    data_type: str = "redfish_event",
) -> PushRequest:
    """Convert a full Telemetry-API payload (Fig. 2) to a push request (Fig. 3)."""
    try:
        messages = payload["metrics"]["messages"]
    except (KeyError, TypeError):
        raise ValidationError(
            "payload is not a Telemetry-API metrics envelope"
        ) from None
    streams: list[PushStream] = []
    for message in messages:
        try:
            context = message["Context"]
            events = message["Events"]
        except (KeyError, TypeError):
            raise ValidationError("message missing Context or Events") from None
        labels = LabelSet(
            {"Context": context, "cluster": cluster, "data_type": data_type}
        )
        entries = []
        for event in events:
            ts, content = clean_event(event)
            entries.append(LogEntry(ts, content))
        if entries:
            streams.append(PushStream(labels=labels, entries=tuple(entries)))
    if not streams:
        raise ValidationError("payload contained no events")
    return PushRequest(streams=tuple(streams))
