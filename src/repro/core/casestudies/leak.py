"""Case study A: leak detection and alerting (paper §IV.A).

A coolant leak in cabinet x1203's 'Front' zone trips redundant sensor 'A'.
The Redfish endpoint reports it (Figure 2), the k3s consumer cleans and
pushes it to Loki (Figure 3), Grafana shows the event (Figure 4) and the
LogQL-derived metric stepping 0→1 (Figure 5), the Ruler fires after one
sustained minute, and Alertmanager posts to Slack (Figure 6) and opens a
ServiceNow incident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.jsonutil import loads
from repro.common.simclock import minutes
from repro.common.vector import Series
from repro.cluster.faults import FaultKind
from repro.cluster.topology import ClusterSpec
from repro.core.framework import (
    FrameworkConfig,
    LEAK_QUERY,
    MonitoringFramework,
)
from repro.core.transform import redfish_payload_to_push
from repro.grafana.render import render_chart, render_log_table
from repro.servicenow.incidents import Incident
from repro.shasta.hms import TOPIC_REDFISH_EVENTS


@dataclass
class LeakCaseResult:
    """Everything §IV.A shows, as data."""

    fig2_payload: dict[str, Any]
    fig3_payload: dict[str, Any]
    fig4_table: str
    fig5_series: list[Series]
    fig5_chart: str
    fig6_slack: str | None
    timeline: dict[str, int | None] = field(default_factory=dict)
    incident: Incident | None = None
    framework: MonitoringFramework | None = None


def leak_case_config(seed: int = 0) -> FrameworkConfig:
    """A machine sized so the paper's reporting context x1203c1b0 exists."""
    return FrameworkConfig(
        cluster_spec=ClusterSpec(
            cabinets=1,
            chassis_per_cabinet=2,
            slots_per_chassis=8,
            nodes_per_slot=2,
            first_cabinet=1203,
        ),
        seed=seed,
    )


def run_leak_case_study(
    config: FrameworkConfig | None = None,
    leak_after_ns: int = minutes(2),
    observe_ns: int = minutes(20),
) -> LeakCaseResult:
    """Run the full §IV.A scenario; returns figures + timeline."""
    fw = MonitoringFramework(config or leak_case_config())
    fw.start()
    fault = fw.faults.schedule(
        FaultKind.CABINET_LEAK,
        f"x{fw.config.cluster_spec.first_cabinet}",
        delay_ns=leak_after_ns,
        zone="Front",
        sensor="A",
    )
    fw.run_for(observe_ns)

    # --- Figure 2: the raw Telemetry-API payload from the Kafka topic ---
    records = fw.broker.poll("figure-2-reader", TOPIC_REDFISH_EVENTS, 10)
    fig2 = loads(records[0].value) if records else {}

    # --- Figure 3: the cleaned Loki push payload -------------------------
    fig3 = redfish_payload_to_push(fig2).to_json_obj() if fig2 else {}

    # --- Figure 4: the event in Grafana ---------------------------------------
    window_start = fw.clock.now_ns - observe_ns
    fig4 = render_log_table(
        fw.logql.query_logs(
            '{data_type="redfish_event"} |= "CabinetLeakDetected"',
            window_start,
            fw.clock.now_ns + 1,
        )
    )

    # --- Figure 5: the LogQL metric stepping 0 → 1 -----------------------------
    fig5_series = fw.logql.query_range(
        LEAK_QUERY, window_start, fw.clock.now_ns, minutes(1)
    )
    fig5_chart = render_chart(
        fig5_series, title="sum(count_over_time(... CabinetLeakDetected ... [60m]))"
    )

    # --- Figure 6: the Slack alert -----------------------------------------------
    leak_slack = [
        m for m in fw.slack.messages if "PerlmutterCabinetLeak" in m.text
    ]
    fig6 = leak_slack[0].text if leak_slack else None

    # --- timeline + incident ---------------------------------------------------------
    incidents = [
        i
        for i in fw.servicenow.incidents()
        if "PerlmutterCabinetLeak" in i.short_description
    ]
    incident = incidents[0] if incidents else None
    event_ts = None
    if fig3:
        event_ts = int(fig3["streams"][0]["values"][0][0])
    timeline: dict[str, int | None] = {
        "fault_ns": fault.start_ns,
        "redfish_event_ns": event_ts,
        "slack_ns": leak_slack[0].timestamp_ns if leak_slack else None,
        "incident_opened_ns": incident.opened_at_ns if incident else None,
    }
    return LeakCaseResult(
        fig2_payload=fig2,
        fig3_payload=fig3,
        fig4_table=fig4,
        fig5_series=fig5_series,
        fig5_chart=fig5_chart,
        fig6_slack=fig6,
        timeline=timeline,
        incident=incident,
        framework=fw,
    )
