"""The paper's §IV case studies, scripted end to end.

Each study builds a framework sized so the paper's exact xnames exist
(``x1203c1b0`` for the leak context, ``x1002c1r7b0`` for the switch),
injects the physical fault, advances simulated time, and returns every
artifact the paper's figures show plus the ground-truth timeline.
"""

from repro.core.casestudies.leak import LeakCaseResult, run_leak_case_study
from repro.core.casestudies.switch import SwitchCaseResult, run_switch_case_study

__all__ = [
    "LeakCaseResult",
    "run_leak_case_study",
    "SwitchCaseResult",
    "run_switch_case_study",
]
