"""Case study B: switch offline detection and alerting (paper §IV.B).

Rosetta switch x1002c1r7b0 leaves the ONLINE state; the NERSC fabric
manager monitor notices on its next poll and emits

    [critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN

to Loki (Figure 7's event).  The Figure-8 rule converts matching events
to a metric via the pattern parser and alerts; AlertManager notifies
Slack (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.simclock import minutes
from repro.common.vector import Series
from repro.cluster.faults import FaultKind
from repro.cluster.topology import ClusterSpec
from repro.core.framework import (
    FrameworkConfig,
    MonitoringFramework,
    SWITCH_PATTERN,
    SWITCH_RULE_QUERY,
)
from repro.grafana.render import render_log_table
from repro.servicenow.incidents import Incident

#: The paper's sample switch xname.
PAPER_SWITCH = "x1002c1r7b0"


@dataclass
class SwitchCaseResult:
    """Everything §IV.B shows, as data."""

    fig7_table: str
    fig7_event_line: str | None
    fig8_rule: dict[str, str]
    fig9_slack: str | None
    pattern_extracted: dict[str, str] = field(default_factory=dict)
    rule_series: list[Series] = field(default_factory=list)
    timeline: dict[str, int | None] = field(default_factory=dict)
    incident: Incident | None = None
    framework: MonitoringFramework | None = None


def switch_case_config(seed: int = 0) -> FrameworkConfig:
    """A machine where the paper's x1002c1r7b0 switch exists (needs eight
    Rosetta switches per chassis → 64 nodes per chassis)."""
    return FrameworkConfig(
        cluster_spec=ClusterSpec(
            cabinets=1,
            chassis_per_cabinet=2,
            slots_per_chassis=16,
            nodes_per_slot=4,
            first_cabinet=1002,
        ),
        seed=seed,
    )


def run_switch_case_study(
    config: FrameworkConfig | None = None,
    offline_after_ns: int = minutes(2),
    observe_ns: int = minutes(20),
) -> SwitchCaseResult:
    """Run the full §IV.B scenario; returns figures + timeline."""
    fw = MonitoringFramework(config or switch_case_config())
    fw.start()
    # The switch state becomes UNKNOWN, matching the paper's sample event.
    fault = fw.faults.schedule(
        FaultKind.SWITCH_UNKNOWN, PAPER_SWITCH.removesuffix("b0") + "b0",
        delay_ns=offline_after_ns,
    )
    fw.run_for(observe_ns)

    window_start = fw.clock.now_ns - observe_ns
    logs = fw.logql.query_logs(
        '{app="fabric_manager_monitor"} |= "fm_switch_offline"',
        window_start,
        fw.clock.now_ns + 1,
    )
    fig7 = render_log_table(logs)
    event_line = None
    event_ts = None
    for _labels, entries in logs:
        for entry in entries:
            if PAPER_SWITCH in entry.line:
                event_line = entry.line
                event_ts = entry.timestamp_ns
                break

    # The Figure-8 rule, as configured in the framework's Ruler.
    rule = next(r for r in fw.ruler.rules() if r.name == "SwitchOffline")
    fig8_rule = {
        "alert": rule.name,
        "expr": rule.expr,
        "for": rule.for_,
        "severity": rule.labels.get("severity", ""),
    }

    # Pattern extraction, shown explicitly (paper walks through it).
    extracted: dict[str, str] = {}
    metric_logs = fw.logql.query_logs(
        '{app="fabric_manager_monitor"} |= "fm_switch_offline" '
        f'| pattern "{SWITCH_PATTERN}"',
        window_start,
        fw.clock.now_ns + 1,
    )
    for labels, entries in metric_logs:
        if labels.get("xname") == PAPER_SWITCH:
            extracted = {
                k: labels[k] for k in ("severity", "problem", "xname", "state")
                if k in labels
            }

    rule_series = fw.logql.query_range(
        SWITCH_RULE_QUERY, window_start, fw.clock.now_ns, minutes(1)
    )

    switch_slack = [m for m in fw.slack.messages if "SwitchOffline" in m.text]
    fig9 = switch_slack[0].text if switch_slack else None
    incidents = [
        i for i in fw.servicenow.incidents() if "SwitchOffline" in i.short_description
    ]
    incident = incidents[0] if incidents else None
    timeline: dict[str, int | None] = {
        "fault_ns": fault.start_ns,
        "monitor_event_ns": event_ts,
        "slack_ns": switch_slack[0].timestamp_ns if switch_slack else None,
        "incident_opened_ns": incident.opened_at_ns if incident else None,
    }
    return SwitchCaseResult(
        fig7_table=fig7,
        fig7_event_line=event_line,
        fig8_rule=fig8_rule,
        fig9_slack=fig9,
        pattern_extracted=extracted,
        rule_series=rule_series,
        timeline=timeline,
        incident=incident,
        framework=fw,
    )
