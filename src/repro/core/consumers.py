"""The "K3s python pods": Telemetry-API consumers feeding the stores.

Paper §III: "K3s python pods ... are python-written clients running in a
Kubernetes environment. They read data in different Kafka topics via the
Telemetry API and send them to either Victoriametrics or Loki."

Each consumer owns one subscription and a ``pump()`` that drains the next
batch; the framework registers the pumps on the simulated clock.  When
the framework runs with tracing enabled, each record carrying a
``traceparent`` header continues its trace here: queue-wait, API fetch,
pod handling and the store write each become spans.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.common.jsonutil import loads
from repro.omni.warehouse import OmniWarehouse
from repro.shasta.telemetry_api import Subscription, TelemetryAPI
from repro.tempo.instrument import PipelineTracing
from repro.tempo.model import SpanContext
from repro.core.transform import redfish_payload_to_push


class _BaseConsumer:
    """Shared subscription plumbing."""

    #: Store service/operation this pod writes to, for its trace span.
    STORE_SERVICE = "loki"
    STORE_NAME = "push"

    def __init__(
        self,
        api: TelemetryAPI,
        token: str,
        topic: str,
        warehouse: OmniWarehouse,
        tracing: PipelineTracing | None = None,
        reliable: bool = False,
        max_delivery_failures: int = 3,
    ) -> None:
        self._api = api
        self._warehouse = warehouse
        self._sub: Subscription = api.subscribe(token, topic)
        self._tracing = tracing
        self._record_ctx: SpanContext | None = None
        self._reliable = reliable
        self._max_delivery_failures = max_delivery_failures
        self._throttle: int | None = None
        self.records_processed = 0
        self.records_failed = 0
        self.records_quarantined = 0

    def set_throttle(self, max_per_pump: int | None) -> None:
        """Cap records per pump (the ``SLOW_CONSUMER`` fault hook)."""
        if max_per_pump is not None and max_per_pump < 1:
            raise ValidationError("throttle must be positive or None")
        self._throttle = max_per_pump

    def lag(self) -> int:
        """Records beyond this pod's committed offsets."""
        return self._api.lag(self._sub)

    def pump(self, max_records: int = 1000) -> int:
        """Drain one batch; returns records successfully processed.

        In the legacy (at-most-once) mode offsets auto-commit on read, so
        a record whose processing fails is simply dropped.  In reliable
        mode offsets commit only after processing: a failing record blocks
        its partition and is redelivered next pump, until
        ``max_delivery_failures`` attempts quarantine it to the topic's
        dead-letter queue and the pod commits past the poison.
        """
        if self._throttle is not None:
            max_records = min(max_records, self._throttle)
        records = self._api.fetch(
            self._sub, max_records, auto_commit=not self._reliable
        )
        server = self._api.last_server_index
        #: partition -> offset of the record that blocked it this batch.
        blocked: dict[int, int] = {}
        done = 0
        for record in records:
            if record.partition in blocked:
                continue
            if self._tracing is not None and record.headers:
                self._record_ctx = self._tracing.begin_record(
                    record, type(self).__name__, server
                )
            try:
                self._handle(record.value, record.timestamp_ns)
                done += 1
            except ValidationError as err:
                self.records_failed += 1
                if self._reliable:
                    quarantined = self._api.fail_delivery(
                        self._sub, record, str(err), self._max_delivery_failures
                    )
                    if quarantined:
                        self.records_quarantined += 1
                    else:
                        blocked[record.partition] = record.offset
            finally:
                self._record_ctx = None
        if self._reliable:
            for partition, offset in blocked.items():
                self._api.seek(self._sub, partition, offset)
            self._api.commit(self._sub)
        self.records_processed += done
        return done

    def _trace_store(self, label_sets) -> None:
        """Span the store write of the record currently being handled."""
        if self._tracing is not None and self._record_ctx is not None:
            self._tracing.store_span(
                self._record_ctx, self.STORE_SERVICE, self.STORE_NAME, label_sets
            )

    def _handle(self, value: str, timestamp_ns: int) -> None:
        raise NotImplementedError


class RedfishEventConsumer(_BaseConsumer):
    """Redfish events: Fig.-2 payloads → §IV.A transform → Loki."""

    def __init__(
        self,
        api: TelemetryAPI,
        token: str,
        topic: str,
        warehouse: OmniWarehouse,
        cluster: str = "perlmutter",
        tracing: PipelineTracing | None = None,
        reliable: bool = False,
        max_delivery_failures: int = 3,
    ) -> None:
        super().__init__(
            api, token, topic, warehouse, tracing=tracing,
            reliable=reliable, max_delivery_failures=max_delivery_failures,
        )
        self._cluster = cluster

    def _handle(self, value: str, timestamp_ns: int) -> None:
        payload = loads(value)
        push = redfish_payload_to_push(payload, cluster=self._cluster)
        self._warehouse.ingest_logs(push, trace_ctx=self._record_ctx)
        self._trace_store([stream.labels for stream in push.streams])


class SensorMetricConsumer(_BaseConsumer):
    """Sensor telemetry: per-sample JSON → VictoriaMetrics.

    The metric name is derived from the sensor's physical context, e.g.
    ``shasta_temperature_celsius``.
    """

    STORE_SERVICE = "tsdb"
    STORE_NAME = "write"

    def __init__(
        self,
        api: TelemetryAPI,
        token: str,
        topic: str,
        warehouse: OmniWarehouse,
        cluster: str = "perlmutter",
        tracing: PipelineTracing | None = None,
        reliable: bool = False,
        max_delivery_failures: int = 3,
    ) -> None:
        super().__init__(
            api, token, topic, warehouse, tracing=tracing,
            reliable=reliable, max_delivery_failures=max_delivery_failures,
        )
        self._cluster = cluster

    def _handle(self, value: str, timestamp_ns: int) -> None:
        sample = loads(value)
        try:
            context = sample["Context"]
            physical = sample["PhysicalContext"]
            reading = float(sample["Value"])
            ts = int(sample["Timestamp"])
        except (KeyError, TypeError, ValueError):
            raise ValidationError(f"malformed sensor sample: {value[:80]}") from None
        labels = {
            "xname": context,
            "cluster": self._cluster,
            "index": str(sample.get("Index", 0)),
        }
        self._warehouse.ingest_metric(f"shasta_{physical}", labels, reading, ts)
        self._trace_store([labels])


class LogLineConsumer(_BaseConsumer):
    """Syslog / container logs: JSON-envelope lines → Loki.

    The rsyslog aggregators and container runtimes produce envelopes of
    the form ``{"labels": {...}, "ts": 123, "line": "..."}``.
    """

    def _handle(self, value: str, timestamp_ns: int) -> None:
        envelope = loads(value)
        try:
            labels = envelope["labels"]
            ts = int(envelope["ts"])
            line = envelope["line"]
        except (KeyError, TypeError, ValueError):
            raise ValidationError(f"malformed log envelope: {value[:80]}") from None
        self._warehouse.ingest_log(labels, ts, line, trace_ctx=self._record_ctx)
        self._trace_store([labels])
