"""The MTTR study: automated pipeline vs manual monitoring (bench C5).

The paper's thesis is that the framework reduces MTTR ("reducing Mean
Time to Repair (MTTR) and enhancing the troubleshooting efficiency",
§I; "we minimize downtime by being able to mitigate the leak problem
quicker", §IV.A).  This module measures it: inject N faults, record
fault→detection latency through the automated pipeline, and compare with
the manual-scanning baseline model under the same background log rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.simclock import NANOS_PER_SECOND, minutes
from repro.baselines.manual import ManualMonitoringModel
from repro.cluster.faults import FaultKind
from repro.core.framework import FrameworkConfig, MonitoringFramework
from repro.cluster.topology import ClusterSpec


@dataclass
class MttrComparison:
    """Results of one automated-vs-manual comparison."""

    fault_count: int
    automated_detect_ns: list[int]
    manual_detect_ns: list[int]
    repair_duration_ns: int

    @property
    def automated_mean_detect_ns(self) -> float:
        return float(np.mean(self.automated_detect_ns))

    @property
    def manual_mean_detect_ns(self) -> float:
        return float(np.mean(self.manual_detect_ns))

    @property
    def automated_mttr_ns(self) -> float:
        return self.automated_mean_detect_ns + self.repair_duration_ns

    @property
    def manual_mttr_ns(self) -> float:
        return self.manual_mean_detect_ns + self.repair_duration_ns

    @property
    def improvement_factor(self) -> float:
        """How many times faster the automated path detects faults."""
        if self.automated_mean_detect_ns <= 0:
            return float("inf")
        return self.manual_mean_detect_ns / self.automated_mean_detect_ns

    def row(self) -> dict[str, float]:
        """One table row (seconds) for the C5 bench output."""
        s = NANOS_PER_SECOND
        return {
            "faults": float(self.fault_count),
            "auto_detect_s": self.automated_mean_detect_ns / s,
            "manual_detect_s": self.manual_mean_detect_ns / s,
            "auto_mttr_s": self.automated_mttr_ns / s,
            "manual_mttr_s": self.manual_mttr_ns / s,
            "improvement_x": self.improvement_factor,
        }


def _study_config(seed: int) -> FrameworkConfig:
    return FrameworkConfig(
        cluster_spec=ClusterSpec(
            cabinets=2, chassis_per_cabinet=2, slots_per_chassis=8, nodes_per_slot=2
        ),
        seed=seed,
    )


def run_mttr_study(
    fault_count: int = 5,
    fault_spacing_ns: int = minutes(30),
    scan_interval_ns: int = minutes(30),
    repair_duration_ns: int = minutes(20),
    background_rate_per_s: float = 50.0,
    seed: int = 0,
) -> MttrComparison:
    """Inject ``fault_count`` switch faults; measure both detection paths.

    Automated detection = first Slack notification naming the switch after
    the fault.  Manual detection = the paper's person-reading-lines model
    under the same background event rate.
    """
    if fault_count < 1:
        raise ValidationError("need at least one fault")
    fw = MonitoringFramework(_study_config(seed))
    fw.start()
    switches = sorted(fw.cluster.switches)
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(switches), size=fault_count, replace=False)
    faults = []
    for i, pick in enumerate(picks):
        faults.append(
            fw.faults.schedule(
                FaultKind.SWITCH_OFFLINE,
                switches[int(pick)],
                delay_ns=(i + 1) * fault_spacing_ns,
                duration_ns=repair_duration_ns,
            )
        )
    fw.run_for((fault_count + 2) * fault_spacing_ns)

    automated: list[int] = []
    for fault in faults:
        xname = str(fault.target)
        hits = [
            m.timestamp_ns
            for m in fw.slack.messages
            if xname in m.text and m.timestamp_ns >= fault.start_ns
        ]
        if not hits:
            raise ValidationError(
                f"automated pipeline never alerted on {xname}; "
                "increase the observation window"
            )
        automated.append(min(hits) - fault.start_ns)

    manual_model = ManualMonitoringModel(
        scan_interval_ns=scan_interval_ns, seed=seed
    )
    manual = [
        manual_model.detection_time_ns(0, background_rate_per_s)
        for _ in range(fault_count)
    ]
    return MttrComparison(
        fault_count=fault_count,
        automated_detect_ns=automated,
        manual_detect_ns=manual,
        repair_duration_ns=repair_duration_ns,
    )
