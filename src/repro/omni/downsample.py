"""Metric downsampling: OMNI's long-horizon storage economics.

Keeping "at least two years of data immediately" (paper §I) at full
resolution is wasteful for metrics: operators look at old data in hourly
strokes, not 15-second samples.  VictoriaMetrics ships exactly this
feature (retention-based downsampling); this module implements it for
the reproduction: samples older than ``downsample_after_ns`` are
replaced by per-bucket aggregates (mean + min + max), shrinking storage
by the bucket/scrape ratio while preserving query shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet
from repro.common.simclock import SimClock, hours
from repro.tsdb.storage import TimeSeriesStore, _Column


@dataclass(frozen=True)
class DownsamplePolicy:
    """Samples older than ``downsample_after_ns`` collapse into
    ``bucket_ns`` aggregates."""

    downsample_after_ns: int = 30 * 24 * hours(1)  # one month
    bucket_ns: int = hours(1)

    def __post_init__(self) -> None:
        if self.downsample_after_ns <= 0 or self.bucket_ns <= 0:
            raise ValidationError("downsample policy values must be positive")


class Downsampler:
    """Rewrites aged series regions into bucket aggregates.

    The mean lands back on the original series; min and max land on
    sibling series with a ``__rollup__`` label so range queries can still
    see envelopes.  Fresh samples are untouched.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        clock: SimClock,
        policy: DownsamplePolicy | None = None,
    ) -> None:
        self._store = store
        self._clock = clock
        self.policy = policy or DownsamplePolicy()
        self.samples_removed = 0
        self.samples_written = 0
        self.sweeps = 0

    def sweep(self) -> int:
        """Downsample every series' aged region; returns samples saved."""
        cutoff = self._clock.now_ns - self.policy.downsample_after_ns
        bucket = self.policy.bucket_ns
        saved = 0
        for labels in list(self._store._series):
            if "__rollup__" in labels:
                continue  # never re-roll rollups
            column = self._store._series[labels]
            ts = column.timestamps
            if len(ts) == 0 or int(ts[0]) >= cutoff:
                continue
            split = int(np.searchsorted(ts, cutoff, side="left"))
            if split == 0:
                continue
            old_ts = ts[:split].copy()
            old_vals = column.values[:split].copy()
            new_ts = ts[split:].copy()
            new_vals = column.values[split:].copy()

            # Bucket the aged region (vectorised group-by on bucket index).
            buckets = old_ts // bucket
            boundaries = np.nonzero(np.diff(buckets))[0] + 1
            groups_ts = np.split(old_ts, boundaries)
            groups_vals = np.split(old_vals, boundaries)

            fresh = _Column()
            for g_ts, g_vals in zip(groups_ts, groups_vals):
                bucket_start = int(g_ts[0] // bucket * bucket)
                fresh.append(bucket_start, float(g_vals.mean()))
                self._write_rollup(labels, "min", bucket_start, float(g_vals.min()))
                self._write_rollup(labels, "max", bucket_start, float(g_vals.max()))
                self.samples_written += 3
            for t, v in zip(new_ts.tolist(), new_vals.tolist()):
                fresh.append(int(t), float(v))
            self._store._series[labels] = fresh
            removed = split - len(groups_ts)
            self.samples_removed += split
            saved += removed
        self.sweeps += 1
        return saved

    def _write_rollup(
        self, labels: LabelSet, kind: str, ts: int, value: float
    ) -> None:
        rollup_labels = labels.with_labels(__rollup__=kind)
        column = self._store._series.get(rollup_labels)
        if column is None:
            column = _Column()
            self._store._series[rollup_labels] = column
            for pair in rollup_labels.items_tuple():
                self._store._postings.setdefault(pair, set()).add(rollup_labels)
        existing = column.timestamps
        if len(existing) and ts <= int(existing[-1]):
            return  # bucket already rolled in an earlier sweep
        column.append(ts, value)

    def run_periodic(self, interval_ns: int) -> None:
        self._clock.every(interval_ns, lambda: self.sweep())
