"""Proactive anomaly detection over OMNI metrics.

The paper twice invokes machine learning: the framework "employ[s]
machine learning methods for proactive incident response" (§II) and
ServiceNow uses ML "to reduce the Mean Time to Resolution" (§III.D).
This module implements the classical online detectors that production
monitoring ML actually ships:

* :class:`EwmaDetector` — exponentially weighted moving average with a
  variance-tracked z-score: flags points that deviate from the learned
  local level (temperature creep before a thermal trip).
* :class:`RateOfChangeDetector` — flags abrupt jumps between consecutive
  samples (a fan dying, power stepping).
* :class:`ProactiveMonitor` — scans TSDB series on a schedule and emits
  Alertmanager-compatible ``AnomalyDetected`` events, giving operators
  warning *before* a threshold rule would fire.

Detectors are deliberately simple, deterministic and well-tested — the
point is the pipeline position (store → detector → Alertmanager), not
model sophistication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.common.errors import ValidationError
from repro.common.labels import METRIC_NAME_LABEL, LabelSet, Matcher, MatchOp
from repro.common.simclock import SimClock
from repro.alerting.events import ALERTNAME_LABEL, AlertEvent, AlertState
from repro.tsdb.storage import TimeSeriesStore


@dataclass(frozen=True)
class Anomaly:
    """One flagged point."""

    timestamp_ns: int
    value: float
    score: float  # z-score or relative jump, per detector


class EwmaDetector:
    """EWMA level + variance tracking; flags |z| above the threshold.

    ``alpha`` controls memory (smaller = longer); ``z_threshold`` the
    sensitivity; ``warmup`` samples are learned silently so start-up
    noise never alerts.
    """

    def __init__(
        self, alpha: float = 0.1, z_threshold: float = 4.0, warmup: int = 10
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValidationError("alpha must be in (0, 1]")
        if z_threshold <= 0:
            raise ValidationError("z threshold must be positive")
        if warmup < 1:
            raise ValidationError("warmup must be >= 1")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup

    def scan(self, timestamps: np.ndarray, values: np.ndarray) -> list[Anomaly]:
        """Scan one series; returns flagged points (never from warmup)."""
        if len(values) == 0:
            return []
        mean = float(values[0])
        var = 0.0
        anomalies: list[Anomaly] = []
        for i in range(1, len(values)):
            value = float(values[i])
            std = math.sqrt(var) if var > 0 else 0.0
            if i >= self.warmup and std > 0:
                z = (value - mean) / std
                if abs(z) >= self.z_threshold:
                    anomalies.append(Anomaly(int(timestamps[i]), value, z))
                    # Do not absorb the outlier into the model.
                    continue
            delta = value - mean
            mean += self.alpha * delta
            var = (1 - self.alpha) * (var + self.alpha * delta * delta)
        return anomalies


class CusumDetector:
    """Two-sided CUSUM drift detector.

    Where EWMA catches spikes, CUSUM catches *creep*: it learns a baseline
    mean/σ over ``warmup`` samples, then accumulates deviations beyond a
    ``k``·σ allowance; the cumulative sum crossing ``h``·σ flags a
    persistent drift (a slowly overheating node, a fan winding down).
    After a flag the baseline re-learns at the current level so the same
    drift is reported once.
    """

    def __init__(
        self,
        k: float = 1.0,
        h: float = 10.0,
        warmup: int = 20,
        relearn_every: int = 20,
    ) -> None:
        if k < 0:
            raise ValidationError("k (allowance) must be non-negative")
        if h <= 0:
            raise ValidationError("h (decision threshold) must be positive")
        if warmup < 2:
            raise ValidationError("warmup must be >= 2")
        if relearn_every < 1:
            raise ValidationError("relearn interval must be >= 1")
        self.k = k
        self.h = h
        self.warmup = warmup
        self.relearn_every = relearn_every

    def scan(self, timestamps: np.ndarray, values: np.ndarray) -> list[Anomaly]:
        n = len(values)
        if n <= self.warmup:
            return []
        anomalies: list[Anomaly] = []
        i = 0
        while i + self.warmup < n:
            base = values[i : i + self.warmup]
            mu = float(np.mean(base))
            sigma = float(np.std(base))
            if sigma == 0.0:
                sigma = max(abs(mu) * 0.01, 1e-9)
            allowance = self.k * sigma
            threshold = self.h * sigma
            s_hi = 0.0
            s_lo = 0.0
            flagged_at = None
            window_end = min(n, i + self.warmup + self.relearn_every)
            for j in range(i + self.warmup, window_end):
                x = float(values[j])
                s_hi = max(0.0, s_hi + (x - mu - allowance))
                s_lo = max(0.0, s_lo + (mu - x - allowance))
                if s_hi > threshold or s_lo > threshold:
                    score = max(s_hi, s_lo) / sigma
                    anomalies.append(Anomaly(int(timestamps[j]), x, score))
                    flagged_at = j
                    break
            if flagged_at is not None:
                i = flagged_at  # re-learn the baseline at the new level
            else:
                # Periodic re-baseline bounds false accumulation on slowly
                # wandering (autocorrelated) but healthy series.
                i = window_end - self.warmup
        return anomalies


class RateOfChangeDetector:
    """Flags consecutive-sample jumps larger than ``max_relative_step``."""

    def __init__(self, max_relative_step: float = 0.5, min_base: float = 1.0) -> None:
        if max_relative_step <= 0:
            raise ValidationError("relative step must be positive")
        self.max_relative_step = max_relative_step
        self.min_base = min_base

    def scan(self, timestamps: np.ndarray, values: np.ndarray) -> list[Anomaly]:
        if len(values) < 2:
            return []
        base = np.maximum(np.abs(values[:-1]), self.min_base)
        rel = np.abs(np.diff(values)) / base
        hits = np.nonzero(rel >= self.max_relative_step)[0]
        return [
            Anomaly(int(timestamps[i + 1]), float(values[i + 1]), float(rel[i]))
            for i in hits
        ]


class ProactiveMonitor:
    """Scans selected TSDB series and emits anomaly alert events."""

    def __init__(
        self,
        store: TimeSeriesStore,
        clock: SimClock,
        notifier: Callable[[AlertEvent], None],
        detector: "EwmaDetector | RateOfChangeDetector | CusumDetector | None" = None,
        window_ns: int = 3_600_000_000_000,  # 1h of history per scan
    ) -> None:
        if window_ns <= 0:
            raise ValidationError("window must be positive")
        self._store = store
        self._clock = clock
        self._notifier = notifier
        self._detector = detector or EwmaDetector()
        self._window_ns = window_ns
        self._watched: list[tuple[str, str]] = []  # (metric, severity)
        self._reported: set[tuple[LabelSet, int]] = set()
        self.scans = 0
        self.anomalies_found = 0

    def watch_metric(self, name: str, severity: str = "warning") -> None:
        if any(m == name for m, _ in self._watched):
            raise ValidationError(f"already watching {name}")
        self._watched.append((name, severity))

    def scan_once(self) -> list[AlertEvent]:
        """One pass over every watched metric; returns emitted events."""
        now = self._clock.now_ns
        events: list[AlertEvent] = []
        for metric, severity in self._watched:
            selected = self._store.select(
                [Matcher(METRIC_NAME_LABEL, MatchOp.EQ, metric)],
                now - self._window_ns,
                now + 1,
            )
            for labels, ts, vals in selected:
                for anomaly in self._detector.scan(ts, vals):
                    key = (labels, anomaly.timestamp_ns)
                    if key in self._reported:
                        continue
                    self._reported.add(key)
                    event = self._make_event(labels, anomaly, severity, now)
                    events.append(event)
                    self._notifier(event)
        self.scans += 1
        self.anomalies_found += len(events)
        return events

    def _make_event(
        self, series: LabelSet, anomaly: Anomaly, severity: str, now_ns: int
    ) -> AlertEvent:
        metric = series.get(METRIC_NAME_LABEL, "unknown")
        labels = series.without(METRIC_NAME_LABEL).with_labels(
            **{
                ALERTNAME_LABEL: "AnomalyDetected",
                "severity": severity,
                "metric": metric,
            }
        )
        return AlertEvent(
            labels=labels,
            annotations={
                "summary": (
                    f"{metric} anomalous: value {anomaly.value:.2f} "
                    f"(score {anomaly.score:.1f})"
                )
            },
            state=AlertState.FIRING,
            value=anomaly.value,
            started_at_ns=anomaly.timestamp_ns,
            fired_at_ns=now_ns,
            generator="proactive-monitor",
        )

    def run_periodic(self, interval_ns: int) -> None:
        self._clock.every(interval_ns, lambda: self.scan_once())
