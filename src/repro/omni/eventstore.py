"""OMNI's event store: the Elasticsearch-backed side of the warehouse.

Paper §III.C: OMNI "is backed by a scalable and parallel time-series
database, Elasticsearch and VictoriaMetrics" and holds "event data
(e.g., system logs, console logs, hardware failure events, power events —
essentially anything that has a start and end time)."

This module implements that event side: documents with a start and an
optional end time, a full-text inverted index over their text, keyword
fields, and the Elasticsearch bool-query subset operators actually used
for operational digging (``term``, ``match``, ``range``), plus a
Kibana-Discover-style text rendering.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import NotFoundError, ValidationError
from repro.common.jsonutil import ns_to_iso8601

_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+")


@dataclass(frozen=True)
class EventDoc:
    """One event document: anything with a start (and maybe end) time."""

    doc_id: int
    start_ns: int
    end_ns: int | None
    category: str  # hardware_failure / power / console / environment / ...
    source: str  # reporting component (xname, sensor id, service)
    text: str
    fields: dict[str, str] = field(default_factory=dict)

    def duration_ns(self) -> int | None:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    @property
    def open(self) -> bool:
        return self.end_ns is None


# ---------------------------------------------------------------------------
# Query DSL (the ES bool-query subset)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Term:
    """Exact keyword-field match (``category``, ``source`` or a field)."""

    name: str
    value: str


@dataclass(frozen=True)
class Match:
    """Full-text match: every token must appear in the text."""

    query: str

    def tokens(self) -> list[str]:
        return [t.lower() for t in _TOKEN_RE.findall(self.query)]


@dataclass(frozen=True)
class TimeRange:
    """Events whose [start, end] intersects [gte, lt). Open events use
    "now" as their end, so in-progress outages match live windows."""

    gte: int
    lt: int

    def __post_init__(self) -> None:
        if self.lt <= self.gte:
            raise ValidationError("empty time range")


@dataclass(frozen=True)
class Bool:
    """``must`` AND-combines; ``must_not`` excludes."""

    must: tuple = ()
    must_not: tuple = ()


Query = Term | Match | TimeRange | Bool


class EventStore:
    """The indexed event archive."""

    def __init__(self) -> None:
        self._docs: list[EventDoc] = []
        self._token_postings: dict[str, set[int]] = {}
        self._keyword_postings: dict[tuple[str, str], set[int]] = {}
        self._open_by_key: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(
        self,
        start_ns: int,
        category: str,
        source: str,
        text: str,
        end_ns: int | None = None,
        **fields: str,
    ) -> EventDoc:
        """Index one event document."""
        if not category or not source:
            raise ValidationError("event needs a category and a source")
        if end_ns is not None and end_ns < start_ns:
            raise ValidationError("event cannot end before it starts")
        doc = EventDoc(
            doc_id=len(self._docs),
            start_ns=start_ns,
            end_ns=end_ns,
            category=category,
            source=source,
            text=text,
            fields=dict(fields),
        )
        self._docs.append(doc)
        for token in set(_TOKEN_RE.findall(text.lower())):
            self._token_postings.setdefault(token, set()).add(doc.doc_id)
        for name, value in (
            ("category", category),
            ("source", source),
            *fields.items(),
        ):
            self._keyword_postings.setdefault((name, value), set()).add(doc.doc_id)
        if end_ns is None:
            self._open_by_key[(category, source)] = doc.doc_id
        return doc

    def close_event(self, doc: EventDoc, end_ns: int) -> EventDoc:
        """Set the end time of an open event (returns the replacement doc)."""
        if doc.end_ns is not None:
            raise ValidationError(f"event {doc.doc_id} is already closed")
        if end_ns < doc.start_ns:
            raise ValidationError("event cannot end before it starts")
        closed = EventDoc(
            doc_id=doc.doc_id,
            start_ns=doc.start_ns,
            end_ns=end_ns,
            category=doc.category,
            source=doc.source,
            text=doc.text,
            fields=doc.fields,
        )
        self._docs[doc.doc_id] = closed
        self._open_by_key.pop((doc.category, doc.source), None)
        return closed

    def open_event(self, category: str, source: str) -> EventDoc | None:
        """The currently-open event for (category, source), if any."""
        doc_id = self._open_by_key.get((category, source))
        return self._docs[doc_id] if doc_id is not None else None

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------
    def search(
        self, query: Query, now_ns: int | None = None, limit: int = 1000
    ) -> list[EventDoc]:
        """Evaluate ``query``; results sorted by start time."""
        ids = self._eval(query, now_ns)
        docs = sorted((self._docs[i] for i in ids), key=lambda d: (d.start_ns, d.doc_id))
        return docs[:limit]

    def _eval(self, query: Query, now_ns: int | None) -> set[int]:
        if isinstance(query, Term):
            return set(self._keyword_postings.get((query.name, query.value), set()))
        if isinstance(query, Match):
            tokens = query.tokens()
            if not tokens:
                raise ValidationError("match query has no tokens")
            sets = [self._token_postings.get(t, set()) for t in tokens]
            if any(not s for s in sets):
                return set()
            return set.intersection(*sets)
        if isinstance(query, TimeRange):
            out = set()
            for doc in self._docs:
                end = doc.end_ns
                if end is None:
                    end = now_ns if now_ns is not None else doc.start_ns
                if doc.start_ns < query.lt and end >= query.gte:
                    out.add(doc.doc_id)
            return out
        if isinstance(query, Bool):
            if query.must:
                result = set.intersection(
                    *(self._eval(q, now_ns) for q in query.must)
                )
            else:
                result = set(range(len(self._docs)))
            for q in query.must_not:
                result -= self._eval(q, now_ns)
            return result
        raise ValidationError(f"unknown query type {type(query).__name__}")

    # ------------------------------------------------------------------
    # Introspection & rendering
    # ------------------------------------------------------------------
    def doc(self, doc_id: int) -> EventDoc:
        if not 0 <= doc_id < len(self._docs):
            raise NotFoundError(f"no event doc {doc_id}")
        return self._docs[doc_id]

    def doc_count(self) -> int:
        return len(self._docs)

    def open_count(self) -> int:
        return len(self._open_by_key)

    def categories(self) -> list[str]:
        return sorted(
            {v for (name, v) in self._keyword_postings if name == "category"}
        )

    def has_field(self, name: str, value: str) -> bool:
        """Whether any document carries ``name=value`` (cheap dedup check)."""
        return bool(self._keyword_postings.get((name, value)))

    @staticmethod
    def render_discover(docs: list[EventDoc], max_rows: int = 40) -> str:
        """Kibana-Discover-style table of event documents."""
        if not docs:
            return "(no events)"
        lines = [
            f"{'Start':<26} {'End':<26} {'Category':<18} {'Source':<16} Text"
        ]
        lines.append("-" * 110)
        for doc in docs[:max_rows]:
            end = ns_to_iso8601(doc.end_ns) if doc.end_ns is not None else "(open)"
            lines.append(
                f"{ns_to_iso8601(doc.start_ns):<26} {end:<26} "
                f"{doc.category:<18} {doc.source:<16} {doc.text}"
            )
        if len(docs) > max_rows:
            lines.append(f"... {len(docs) - max_rows} more events")
        return "\n".join(lines)


def record_from_alert(store: EventStore, alert: Any, now_ns: int) -> EventDoc:
    """Convenience: mirror a ServiceNow alert into the event archive.

    Open SN alerts become open events; closed alerts close them — giving
    OMNI the "anything that has a start and end time" history even after
    ServiceNow's own records age out.
    """
    existing = store.open_event("sn_alert", alert.node)
    if alert.is_active:
        if existing is None:
            return store.record(
                start_ns=alert.opened_at_ns,
                category="sn_alert",
                source=alert.node,
                text=f"{alert.metric_name} severity={alert.severity.name}",
                alert_number=alert.number,
            )
        return existing
    if existing is not None:
        return store.close_event(existing, alert.closed_at_ns or now_ns)
    if store.has_field("alert_number", alert.number):
        # Already mirrored and closed on an earlier pass: idempotent no-op.
        postings = store._keyword_postings[("alert_number", alert.number)]
        return store.doc(max(postings))
    # Already-closed alert never mirrored: record it with both ends.
    return store.record(
        start_ns=alert.opened_at_ns,
        category="sn_alert",
        source=alert.node,
        text=f"{alert.metric_name} severity={alert.severity.name}",
        end_ns=alert.closed_at_ns or now_ns,
        alert_number=alert.number,
    )
