"""Cold storage: compressed blobs of aged-out telemetry.

OMNI's pitch is that nothing is lost: data past the hot window moves
here as zlib-compressed JSON blobs and can be restored on demand
("be able to restore prior data that is more than two years old",
paper §I).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.common.errors import NotFoundError, ValidationError
from repro.common.jsonutil import dumps_compact, loads
from repro.common.labels import LabelSet
from repro.loki.model import LogEntry


@dataclass(frozen=True)
class ArchiveBlob:
    """One archived unit: a stream's entries for one time range."""

    blob_id: int
    labels: LabelSet
    first_ts_ns: int
    last_ts_ns: int
    compressed: bytes
    entry_count: int

    def size_bytes(self) -> int:
        return len(self.compressed)


class ArchiveStore:
    """Append-only blob archive with time-range restore."""

    def __init__(self) -> None:
        self._blobs: list[ArchiveBlob] = []
        self.bytes_archived = 0
        self.entries_archived = 0
        self.restores_served = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def archive_logs(self, labels: LabelSet, entries: list[LogEntry]) -> ArchiveBlob:
        if not entries:
            raise ValidationError("nothing to archive")
        ordered = sorted(entries)
        payload = dumps_compact(
            [[e.timestamp_ns, e.line] for e in ordered]
        ).encode()
        blob = ArchiveBlob(
            blob_id=len(self._blobs),
            labels=labels,
            first_ts_ns=ordered[0].timestamp_ns,
            last_ts_ns=ordered[-1].timestamp_ns,
            compressed=zlib.compress(payload, level=9),
            entry_count=len(ordered),
        )
        self._blobs.append(blob)
        self.bytes_archived += blob.size_bytes()
        self.entries_archived += len(ordered)
        return blob

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def restore_between(
        self, start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Decompress every blob overlapping ``[start, end)``."""
        if end_ns <= start_ns:
            raise ValidationError("empty restore range")
        out: list[tuple[LabelSet, list[LogEntry]]] = []
        for blob in self._blobs:
            if blob.last_ts_ns < start_ns or blob.first_ts_ns >= end_ns:
                continue
            raw = loads(zlib.decompress(blob.compressed).decode())
            entries = [
                LogEntry(int(ts), line)
                for ts, line in raw
                if start_ns <= int(ts) < end_ns
            ]
            if entries:
                out.append((blob.labels, entries))
        self.restores_served += 1
        return out

    def blob(self, blob_id: int) -> ArchiveBlob:
        if not 0 <= blob_id < len(self._blobs):
            raise NotFoundError(f"no archive blob {blob_id}")
        return self._blobs[blob_id]

    def blob_count(self) -> int:
        return len(self._blobs)
