"""The OMNI warehouse facade.

One object owning the two stores ("As a rule, we send metrics to
Victoriametrics, the time series database and logs to Loki" — paper §III)
plus the archive, retention manager and ingest accounting that backs the
400 k msgs/s capability claim (bench C1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.common.labels import LabelSet
from repro.common.simclock import SimClock, NANOS_PER_SECOND, days
from repro.loki.model import LogEntry, PushRequest, PushStream
from repro.loki.store import LokiStore
from repro.objstore.tiered import TieredLokiStore
from repro.omni.archive import ArchiveStore
from repro.omni.retention import RetentionManager, RetentionPolicy
from repro.ring.cluster import RingLokiCluster
from repro.tempo.model import SpanContext
from repro.tenancy.admission import AdmissionController
from repro.tsdb.storage import TimeSeriesStore

if TYPE_CHECKING:
    from repro.patterns.ingester import PatternIngester


class OmniWarehouse:
    """Logs → Loki, metrics → VictoriaMetrics, one roof, one history.

    The log backend is a single :class:`LokiStore` (the default), a
    replicated :class:`~repro.ring.cluster.RingLokiCluster`, or a
    :class:`~repro.objstore.tiered.TieredLokiStore` wrapping either —
    all expose the same store surface; the ring and the tiered store
    also accept a trace context so distributor→ingester spans join the
    pipeline's trace.  The retention manager runs against whatever
    backend is installed: with the tiered store, a sweep archives and
    deletes across the hot *and* cold tiers in one pass.
    """

    def __init__(
        self,
        clock: SimClock,
        loki: LokiStore | RingLokiCluster | TieredLokiStore | None = None,
        tsdb: TimeSeriesStore | None = None,
        policy: RetentionPolicy | None = None,
        admission: AdmissionController | None = None,
        patterns: "PatternIngester | None" = None,
    ) -> None:
        self._clock = clock
        self.loki = loki or LokiStore()
        # Backends that take a trace context on their push paths.
        self._ring = (
            self.loki
            if isinstance(self.loki, (RingLokiCluster, TieredLokiStore))
            else None
        )
        self.tsdb = tsdb or TimeSeriesStore()
        self.archive = ArchiveStore()
        self.retention = RetentionManager(clock, self.loki, self.archive, policy)
        #: Multi-tenant front door.  When set, every log push is
        #: attributed to a tenant, tagged, and limit-checked before it
        #: reaches either log backend; over-limit pushes raise typed 429s.
        self.admission = admission
        #: Pattern ingester tee (Loki's pattern ingester sits on the
        #: distributor): every *accepted* push is also mined for
        #: templates.  Rejected pushes never reach it.
        self.patterns = patterns
        self.messages_ingested = 0
        self._ingest_started_ns = clock.now_ns

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest_log(
        self,
        labels: Mapping[str, str] | LabelSet,
        timestamp_ns: int,
        line: str,
        trace_ctx: SpanContext | None = None,
        tenant: str | None = None,
    ) -> int:
        entries = [LogEntry(timestamp_ns, line)]
        if self.admission is not None:
            labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
            request = PushRequest(
                streams=(PushStream(labels=labelset, entries=tuple(entries)),)
            )
            return self.ingest_logs(request, trace_ctx=trace_ctx, tenant=tenant)
        if self._ring is not None:
            accepted = self._ring.push_stream(labels, entries, trace_ctx=trace_ctx)
        else:
            accepted = self.loki.push_stream(labels, entries)
        if self.patterns is not None:
            labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
            self.patterns.observe(labelset, entries, tenant=tenant)
        self.messages_ingested += accepted
        return accepted

    def ingest_logs(
        self,
        request: PushRequest,
        trace_ctx: SpanContext | None = None,
        tenant: str | None = None,
    ) -> int:
        if self.admission is not None:
            # Admission tags every stream with the tenant label and
            # raises the typed 429 before anything reaches a store.
            request = self.admission.admit_push(
                request, tenant=tenant, trace_ctx=trace_ctx
            )
        if self._ring is not None:
            accepted = self._ring.push(request, trace_ctx=trace_ctx)
        else:
            accepted = self.loki.push(request)
        if self.patterns is not None:
            for stream in request.streams:
                self.patterns.observe(
                    stream.labels, stream.entries, tenant=tenant
                )
        self.messages_ingested += accepted
        return accepted

    def ingest_metric(
        self,
        name: str,
        labels: Mapping[str, str] | LabelSet,
        value: float,
        timestamp_ns: int,
    ) -> bool:
        ok = self.tsdb.ingest(name, labels, value, timestamp_ns)
        if ok:
            self.messages_ingested += 1
        return ok

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def ingest_rate_per_simsecond(self) -> float:
        """Messages per *simulated* second since construction."""
        elapsed = (self._clock.now_ns - self._ingest_started_ns) / NANOS_PER_SECOND
        if elapsed <= 0:
            return 0.0
        return self.messages_ingested / elapsed

    def storage_report(self) -> dict[str, float]:
        """Sizes and ratios for the storage benches."""
        report = {
            "log_entries": float(self.loki.stats.entries_ingested),
            "log_streams": float(self.loki.stream_count()),
            "log_chunks": float(self.loki.chunk_count()),
            "log_stored_bytes": float(self.loki.stored_bytes()),
            "log_uncompressed_bytes": float(self.loki.uncompressed_bytes()),
            "log_index_bytes": float(self.loki.index_bytes()),
            "metric_samples": float(self.tsdb.sample_count()),
            "metric_series": float(self.tsdb.series_count()),
            "metric_bytes": float(self.tsdb.retained_bytes()),
            "archive_blobs": float(self.archive.blob_count()),
            "archive_bytes": float(self.archive.bytes_archived),
        }
        if isinstance(self.loki, TieredLokiStore):
            # With the cold tier on, `log_stored_bytes` above is the
            # *resident* hot-tier figure; these break out what moved cold.
            report["log_cold_chunks"] = float(self.loki.cold_chunk_count())
            report["log_cold_bytes"] = float(self.loki.cold_bytes())
            report["log_cold_entries"] = float(self.loki.cold_entry_count())
        return report

    def history_span_days(self) -> float:
        """How far back immediately-queryable log data reaches, in days."""
        oldest = self.loki.oldest_entry_ns()
        if oldest is None:
            return 0.0
        return (self._clock.now_ns - oldest) / days(1)
