"""Retention: the two-year hot window with archive + restore.

Paper §III.C: "up to two years of operational data is immediately
available and more can be restored."  The sweep moves log chunks whose
newest entry is past the hot window out of Loki into the archive; restore
pushes archived entries back into a (separate or the same) store for
historical analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.common.errors import RetentionError, ValidationError
from repro.common.simclock import SimClock, days
from repro.loki.store import LokiStore
from repro.omni.archive import ArchiveStore

if TYPE_CHECKING:  # avoid an import cycle; the ring imports loki
    from repro.ring.cluster import RingLokiCluster

#: "at least two years of data immediately [available]" (paper §I).
TWO_YEARS_NS = days(2 * 365)


@dataclass(frozen=True)
class RetentionPolicy:
    """Hot-window size; data older than this is archived."""

    hot_window_ns: int = TWO_YEARS_NS

    def __post_init__(self) -> None:
        if self.hot_window_ns <= 0:
            raise ValidationError("hot window must be positive")


class RetentionManager:
    """Sweeps aged data from the hot store into the archive."""

    def __init__(
        self,
        clock: SimClock,
        store: "LokiStore | RingLokiCluster",
        archive: ArchiveStore,
        policy: RetentionPolicy | None = None,
    ) -> None:
        self._clock = clock
        self._store = store
        self._archive = archive
        self.policy = policy or RetentionPolicy()
        self.sweeps = 0

    def cutoff_ns(self) -> int:
        return self._clock.now_ns - self.policy.hot_window_ns

    def sweep(self) -> int:
        """Archive-and-delete everything older than the hot window.

        Returns the number of entries moved to the archive.  Only sealed
        chunks fully before the cutoff move (chunk-granularity retention,
        matching :meth:`LokiStore.delete_before`).
        """
        cutoff = self.cutoff_ns()
        moved = 0
        # Read what delete_before would drop, then archive it.  A
        # replicated store deduplicates across replicas here, so the
        # archive holds each entry once regardless of replication factor.
        for labels, doomed in self._store.expired_entries(cutoff):
            self._archive.archive_logs(labels, doomed)
            moved += len(doomed)
        self._store.delete_before(cutoff)
        self.sweeps += 1
        return moved

    def restore(self, start_ns: int, end_ns: int, into: LokiStore) -> int:
        """Restore archived entries overlapping the range into ``into``.

        The restore target is typically a fresh store (historical analysis
        sandbox); restoring into the hot store would violate its
        in-order-append invariant.
        """
        if end_ns <= start_ns:
            raise RetentionError("empty restore range")
        restored = 0
        for labels, entries in self._archive.restore_between(start_ns, end_ns):
            restored += into.push_stream(labels, entries)
        return restored

    def run_periodic(self, interval_ns: int) -> None:
        self._clock.every(interval_ns, lambda: self.sweep())
