"""OMNI: the Operations Monitoring and Notification Infrastructure.

Paper §III.C: OMNI is NERSC's data warehouse — "a single location for
storing the heterogeneous datasets", ingesting "up to 400,000 messages
per second", keeping "up to two years of operational data ... immediately
available and more can be restored".  HPE keeps event data no more than
two months, which is exactly why OMNI streams and retains everything.

* :mod:`repro.omni.warehouse` — facade over the Loki and TSDB stores with
  ingest accounting;
* :mod:`repro.omni.archive` — compressed cold storage for data past the
  hot window;
* :mod:`repro.omni.retention` — the two-year hot-window sweep plus
  restore-on-demand.
"""

from repro.omni.warehouse import OmniWarehouse
from repro.omni.archive import ArchiveStore
from repro.omni.retention import RetentionPolicy, RetentionManager

__all__ = ["OmniWarehouse", "ArchiveStore", "RetentionPolicy", "RetentionManager"]
