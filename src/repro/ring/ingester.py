"""One write-path replica: a LokiStore guarded by a write-ahead log.

The store is process memory and dies with a crash; the WAL (and its
checkpoint slot) is durable.  Every push is logged *first* and applied
second, so :meth:`Ingester.restart` can rebuild the exact pre-crash
store: restore the last checkpoint snapshot, then re-apply the logged
records through the normal push path.  Because the push path's
out-of-order rejection is deterministic, replay reproduces precisely the
accepted set — including rejecting again anything that was rejected
before the crash.
"""

from __future__ import annotations

import enum
import zlib
from typing import Iterable, Mapping

from repro.common.errors import StateError
from repro.common.jsonutil import dumps_compact, loads
from repro.common.labels import LabelSet, Matcher
from repro.loki.chunks import ChunkPolicy
from repro.loki.model import LogEntry
from repro.loki.store import LokiStore
from repro.ring.merge import merge_replica_entries


class IngesterState(enum.Enum):
    ACTIVE = "active"
    CRASHED = "crashed"


class Ingester:
    """A crash-restartable ingester with WAL-backed durability."""

    def __init__(
        self,
        ingester_id: str,
        policy: ChunkPolicy | None = None,
        wal_segment_bytes: int = 64 * 1024,
    ) -> None:
        # Imported here to avoid a cycle at package-definition time.
        from repro.ring.wal import WriteAheadLog

        self.id = ingester_id
        self._policy = policy
        self.wal = WriteAheadLog(segment_max_bytes=wal_segment_bytes)
        self.store = LokiStore(policy)
        self.state = IngesterState.ACTIVE
        self.crashes = 0
        self.restarts = 0
        self.records_replayed_total = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _require_active(self) -> None:
        if self.state is not IngesterState.ACTIVE:
            raise StateError(f"ingester {self.id} is {self.state.value}")

    def push_stream(
        self, labels: LabelSet | Mapping[str, str], entries: Iterable[LogEntry]
    ) -> int:
        """WAL-then-apply; returns entries the store accepted."""
        self._require_active()
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        entries = list(entries)
        self.wal.append(labelset, entries)
        return self.store.push_stream(labelset, entries)

    # ------------------------------------------------------------------
    # Anti-entropy repair surface (repro.selfheal)
    # ------------------------------------------------------------------
    def stream_inventory(self) -> dict[LabelSet, int]:
        """Resident entry count per stream — what the repairer diffs the
        ring's desired placement against."""
        self._require_active()
        inventory: dict[LabelSet, int] = {}
        for sid in self.store.index.all_stream_ids():
            labels = self.store.index.labels_of(sid)
            n = sum(
                len(chunk.entries()) for chunk in self.store._chunks.get(sid, [])
            )
            inventory[labels] = n
        return inventory

    def entries_of(self, labels: LabelSet | Mapping[str, str]) -> list[LogEntry]:
        """Every resident entry of one stream, in store order."""
        self._require_active()
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        sid = self.store.index.lookup(labelset)
        if sid is None:
            return []
        out: list[LogEntry] = []
        for chunk in self.store._chunks.get(sid, []):
            out.extend(chunk.entries())
        return out

    def repair_stream(
        self, labels: LabelSet | Mapping[str, str], entries: Iterable[LogEntry]
    ) -> int:
        """Graft a donor replica's history into this stream.

        A repair target may hold a *suffix* of the stream (it joined the
        replica set after the stream started), so the donor's older
        entries cannot go through :meth:`push_stream` — the store's
        out-of-order watermark would reject them.  Instead the local and
        donor copies are merged (max-multiplicity, same as quorum reads)
        and the stream is rebuilt from scratch.

        The rebuild bypasses the WAL; the repairer checkpoints every
        touched target afterwards, which re-anchors durability at the
        repaired state.  A crash between rebuild and checkpoint loses
        only the grafted copy — the donors still hold it, and the next
        anti-entropy sweep re-detects the gap.  Returns the number of
        entries in the rebuilt stream.
        """
        self._require_active()
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        incoming = list(entries)
        local = self.entries_of(labelset)
        merged = merge_replica_entries([local, incoming]) if local else incoming
        return self.store.replace_stream(labelset, merged)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose the process: in-memory store gone, WAL survives."""
        self._require_active()
        self.state = IngesterState.CRASHED
        self.crashes += 1
        self.store = LokiStore(self._policy)  # empty husk until restart

    def restart(self) -> int:
        """Recover: restore the checkpoint, replay the WAL; returns the
        number of records replayed.  Safe to call on an ACTIVE ingester
        too (a rolling restart) — recovery always rebuilds from scratch,
        which is what makes double-replay idempotent."""
        store = LokiStore(self._policy)
        if self.wal.checkpoint_blob is not None:
            self._restore_checkpoint(store, self.wal.checkpoint_blob)
        replayed = 0
        for record in self.wal.replay():
            store.push_stream(record.labelset(), [record.entry()])
            replayed += 1
        self.store = store
        self.state = IngesterState.ACTIVE
        self.restarts += 1
        self.records_replayed_total += replayed
        return replayed

    def checkpoint(self) -> int:
        """Snapshot the store into the WAL's durable checkpoint slot and
        drop the logged segments; returns segments dropped."""
        self._require_active()
        streams = []
        for sid in self.store.index.all_stream_ids():
            labels = self.store.index.labels_of(sid)
            entries = []
            for chunk in self.store._chunks.get(sid, []):
                entries.extend([e.timestamp_ns, e.line] for e in chunk.entries())
            streams.append({"l": labels.to_dict(), "e": entries})
        blob = zlib.compress(dumps_compact({"streams": streams}).encode(), level=6)
        return self.wal.checkpoint(blob)

    @staticmethod
    def _restore_checkpoint(store: LokiStore, blob: bytes) -> None:
        obj = loads(zlib.decompress(blob).decode())
        for stream in obj["streams"]:
            labels = LabelSet(stream["l"])
            entries = [LogEntry(int(ts), line) for ts, line in stream["e"]]
            if entries:
                store.push_stream(labels, entries)

    # ------------------------------------------------------------------
    # Read path / maintenance (delegates; crashed replicas refuse)
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.state is IngesterState.ACTIVE

    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        self._require_active()
        return self.store.select(matchers, start_ns, end_ns)

    def flush_all(self) -> int:
        self._require_active()
        return self.store.flush_all()

    def flush_aged(self, now_ns: int) -> int:
        self._require_active()
        return self.store.flush_aged(now_ns)

    def delete_before(self, cutoff_ns: int) -> int:
        self._require_active()
        return self.store.delete_before(cutoff_ns)

    def sealed_chunks(self):
        """Sealed resident chunks awaiting shipment to the cold tier."""
        self._require_active()
        return self.store.sealed_chunks()

    def drop_chunk(self, labels, chunk) -> bool:
        """Release a shipped chunk from memory.  The WAL still holds the
        entries, so a crash + replay re-materializes (and re-seals) them;
        the re-flushed copies dedup against the already-shipped object by
        content hash, keeping flush + crash idempotent."""
        self._require_active()
        return self.store.drop_chunk(labels, chunk)
