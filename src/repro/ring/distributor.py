"""The distributor: validated, replicated, quorum-acknowledged pushes.

Loki's distributor is the stateless front of the write path: it
validates each push, hashes every stream onto the ring, fans the stream
out to ``replication_factor`` ingesters, and acknowledges once a write
**quorum** (``rf // 2 + 1``) of replicas accepted.  With RF=3 the tier
keeps accepting writes — and keeps every acknowledged entry — while any
single ingester is down.

The read path is the mirror image: entries are gathered from every live
replica, then merged and deduplicated per stream, so a query returns the
complete acknowledged history while a replica is crashed or still
replaying its WAL.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.common.errors import StateError, ValidationError
from repro.common.labels import LabelSet, Matcher
from repro.loki.model import LogEntry, PushRequest
from repro.ring.hashring import HashRing, stream_key
from repro.ring.ingester import Ingester
from repro.tempo.model import SpanContext
from repro.tempo.tracer import Tracer
from repro.tenancy.limits import TENANT_LABEL
from repro.tenancy.sharding import ShuffleSharder


class QuorumError(StateError):
    """Fewer than a write quorum of replicas accepted a stream."""


@dataclass(frozen=True)
class PushResult:
    """Outcome of one distributed push."""

    accepted: int  # entries acknowledged at quorum
    replicas_ok: int
    replicas_failed: int


class Distributor:
    """Fans streams out to ring replicas; acknowledges at quorum."""

    def __init__(
        self,
        ring: HashRing,
        ingesters: Mapping[str, Ingester],
        replication_factor: int = 3,
        tracer: Tracer | None = None,
        sharder: ShuffleSharder | None = None,
    ) -> None:
        if replication_factor < 1:
            raise ValidationError("replication factor must be >= 1")
        if replication_factor > len(ingesters):
            raise ValidationError(
                f"replication factor {replication_factor} exceeds "
                f"{len(ingesters)} ingester(s)"
            )
        if sharder is not None and sharder.enabled:
            if sharder.shard_size < replication_factor:
                raise ValidationError(
                    f"shard size {sharder.shard_size} cannot hold "
                    f"{replication_factor} replicas"
                )
        self.ring = ring
        self.ingesters = ingesters
        self.replication_factor = replication_factor
        self.tracer = tracer
        self.sharder = sharder
        # Accounting for the ring exporter and bench R1.
        self.pushes = 0
        self.entries_accepted = 0
        self.replica_writes_ok = 0
        self.replica_writes_failed = 0
        self.quorum_failures = 0
        self.reads = 0

    @property
    def write_quorum(self) -> int:
        return self.replication_factor // 2 + 1

    def _placement_ring(self, labels: LabelSet) -> HashRing:
        """The ring a stream places on: with shuffle sharding enabled and
        a ``tenant`` label present, the tenant's subring; otherwise the
        whole ring (unlabelled streams are never shard-confined)."""
        if self.sharder is None or not self.sharder.enabled:
            return self.ring
        tenant = labels.get(TENANT_LABEL)
        if not tenant:
            return self.ring
        return self.sharder.subring(tenant)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def push(
        self, request: PushRequest, parent_ctx: SpanContext | None = None
    ) -> PushResult:
        """Replicate every stream; raise :class:`QuorumError` if any
        stream lands on fewer than ``write_quorum`` live replicas."""
        self.pushes += 1
        span_ctx = None
        # Only join an existing (sampled) trace: rooting a fresh trace per
        # push would swamp the store and skew the sampling counters.
        if self.tracer is not None and parent_ctx is not None:
            now = self.tracer.now_ns
            span_ctx = self.tracer.record(
                "distributor",
                "push",
                parent_ctx,
                start_ns=now,
                end_ns=now,
                attributes={
                    "streams": str(len(request.streams)),
                    "rf": str(self.replication_factor),
                },
            )
        accepted_total = 0
        ok_total = failed_total = 0
        for stream in request.streams:
            key = stream_key(stream.labels)
            replicas = self._placement_ring(stream.labels).preference_list(
                key, self.replication_factor
            )
            accepted_counts = []
            for replica_id in replicas:
                ingester = self.ingesters[replica_id]
                try:
                    got = ingester.push_stream(stream.labels, stream.entries)
                except StateError:
                    failed_total += 1
                    self.replica_writes_failed += 1
                    continue
                accepted_counts.append(got)
                ok_total += 1
                self.replica_writes_ok += 1
                if span_ctx is not None and self.tracer is not None:
                    now = self.tracer.now_ns
                    self.tracer.record(
                        "ingester",
                        "append",
                        span_ctx,
                        start_ns=now,
                        end_ns=now,
                        attributes={
                            "ingester": replica_id,
                            "entries": str(got),
                        },
                    )
            if len(accepted_counts) < self.write_quorum:
                self.quorum_failures += 1
                raise QuorumError(
                    f"stream {stream.labels!r}: {len(accepted_counts)} of "
                    f"{self.replication_factor} replicas accepted, quorum is "
                    f"{self.write_quorum}"
                )
            # Replicas apply the same deterministic rejection logic; a
            # replica that missed earlier pushes (crash window) may reject
            # more, so the healthiest replica's count is the truth.
            accepted_total += max(accepted_counts)
        self.entries_accepted += accepted_total
        return PushResult(
            accepted=accepted_total,
            replicas_ok=ok_total,
            replicas_failed=failed_total,
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Quorum read: gather from every live replica, merge, dedupe."""
        self.reads += 1
        matchers = list(matchers)
        per_stream: dict[LabelSet, list[list[LogEntry]]] = {}
        for ingester in self.ingesters.values():
            if not ingester.active:
                continue
            for labels, entries in ingester.select(matchers, start_ns, end_ns):
                per_stream.setdefault(labels, []).append(entries)
        out = [
            (labels, _merge_replicas(replica_lists))
            for labels, replica_lists in per_stream.items()
        ]
        out.sort(key=lambda pair: pair[0].items_tuple())
        return out


def _merge_replicas(replica_lists: list[list[LogEntry]]) -> list[LogEntry]:
    """Merge one stream's entries across replicas, deduplicating.

    Replicas hold consistent prefixes/subsequences of the same logical
    stream (they applied the same pushes in the same order, minus crash
    windows), so per timestamp the fullest replica's ordering is
    authoritative; an identical ``(ts, line)`` seen on several replicas
    is the same write and appears once — its multiplicity is the *max*
    across replicas, never the sum.
    """
    if len(replica_lists) == 1:
        return list(replica_lists[0])
    # Group each replica's entries by timestamp, preserving intra-ts order.
    by_ts: dict[int, list[list[str]]] = {}
    for entries in replica_lists:
        groups: dict[int, list[str]] = {}
        for entry in entries:
            groups.setdefault(entry.timestamp_ns, []).append(entry.line)
        for ts, lines in groups.items():
            by_ts.setdefault(ts, []).append(lines)
    merged: list[LogEntry] = []
    for ts in sorted(by_ts):
        groups = by_ts[ts]
        base = max(groups, key=len)
        counts = Counter(base)
        merged.extend(LogEntry(ts, line) for line in base)
        # Any line a smaller group saw more often than the base is a
        # genuine extra write the base replica missed.
        extras: Counter[str] = Counter()
        for group in groups:
            if group is base:
                continue
            group_counts = Counter(group)
            for line, n in group_counts.items():
                short = n - counts[line]
                if short > extras[line]:
                    extras[line] = short
        for line in sorted(extras):
            merged.extend(LogEntry(ts, line) for _ in range(extras[line]))
    return merged
