"""The distributor: validated, replicated, quorum-acknowledged pushes.

Loki's distributor is the stateless front of the write path: it
validates each push, hashes every stream onto the ring, fans the stream
out to ``replication_factor`` ingesters, and acknowledges once a write
**quorum** (``rf // 2 + 1``) of replicas accepted.  With RF=3 the tier
keeps accepting writes — and keeps every acknowledged entry — while any
single ingester is down.

The read path is the mirror image: entries are gathered from every live
replica, then merged and deduplicated per stream, so a query returns the
complete acknowledged history while a replica is crashed or still
replaying its WAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.common.errors import StateError, ValidationError
from repro.common.labels import LabelSet, Matcher
from repro.loki.model import LogEntry, PushRequest
from repro.ring.hashring import HashRing, stream_key
from repro.ring.ingester import Ingester
from repro.ring.merge import merge_replica_entries
from repro.tempo.model import SpanContext
from repro.tempo.tracer import Tracer
from repro.tenancy.limits import TENANT_LABEL
from repro.tenancy.sharding import ShuffleSharder

if TYPE_CHECKING:
    from repro.selfheal.memberlist import Memberlist

#: Historical home of the merge; it moved to ``repro.ring.merge`` when
#: the anti-entropy repairer (which the ingester imports) needed it too.
_merge_replicas = merge_replica_entries


class QuorumError(StateError):
    """Fewer than a write quorum of replicas accepted a stream."""


class ReadDegradedError(StateError):
    """Fewer than a read quorum of replicas answered a select.

    The fan-out read tolerates individual crashed replicas by falling
    back to the survivors; only when the survivors cannot make a quorum
    does the read fail — typed, so the frontend can distinguish "the
    tier is degraded" from a malformed query.
    """

    def __init__(self, responded: int, quorum: int) -> None:
        super().__init__(
            f"read degraded: {responded} replica(s) responded, "
            f"quorum is {quorum}"
        )
        self.responded = responded
        self.quorum = quorum


@dataclass(frozen=True)
class PushResult:
    """Outcome of one distributed push."""

    accepted: int  # entries acknowledged at quorum
    replicas_ok: int
    replicas_failed: int


class Distributor:
    """Fans streams out to ring replicas; acknowledges at quorum."""

    def __init__(
        self,
        ring: HashRing,
        ingesters: Mapping[str, Ingester],
        replication_factor: int = 3,
        tracer: Tracer | None = None,
        sharder: ShuffleSharder | None = None,
        zone_aware: bool = False,
    ) -> None:
        if replication_factor < 1:
            raise ValidationError("replication factor must be >= 1")
        if replication_factor > len(ingesters):
            raise ValidationError(
                f"replication factor {replication_factor} exceeds "
                f"{len(ingesters)} ingester(s)"
            )
        if sharder is not None and sharder.enabled:
            if sharder.shard_size < replication_factor:
                raise ValidationError(
                    f"shard size {sharder.shard_size} cannot hold "
                    f"{replication_factor} replicas"
                )
        self.ring = ring
        self.ingesters = ingesters
        self.replication_factor = replication_factor
        self.tracer = tracer
        self.sharder = sharder
        self.zone_aware = zone_aware
        #: Failure-detector view (repro.selfheal); ``None`` = every ring
        #: member is presumed healthy, exactly the pre-selfheal behaviour.
        self.memberlist: "Memberlist | None" = None
        # Accounting for the ring exporter and bench R1.
        self.pushes = 0
        self.entries_accepted = 0
        self.replica_writes_ok = 0
        self.replica_writes_failed = 0
        self.quorum_failures = 0
        self.replicas_skipped_unhealthy = 0
        self.reads = 0
        self.reads_degraded = 0

    @property
    def write_quorum(self) -> int:
        return self.replication_factor // 2 + 1

    def _placement_ring(self, labels: LabelSet) -> HashRing:
        """The ring a stream places on: with shuffle sharding enabled and
        a ``tenant`` label present, the tenant's subring; otherwise the
        whole ring (unlabelled streams are never shard-confined)."""
        if self.sharder is None or not self.sharder.enabled:
            return self.ring
        tenant = labels.get(TENANT_LABEL)
        if not tenant:
            return self.ring
        return self.sharder.subring(tenant)

    def replicas_for(self, labels: LabelSet) -> list[str]:
        """The stream's *desired* replica set: pure ring placement with
        no health exclusions — what the anti-entropy repairer diffs the
        actual replica inventories against."""
        return self._placement_ring(labels).preference_list(
            stream_key(labels),
            self.replication_factor,
            zone_spread=self.zone_aware,
        )

    def replicas_excluding(
        self, labels: LabelSet, exclude: set[str]
    ) -> list[str]:
        """Desired placement over the ring minus ``exclude`` — the walk
        the anti-entropy repairer diffs inventories against: where the
        stream's replicas *should* live given which members are usable
        right now.  May return fewer than RF members when too few
        survivors remain."""
        if not exclude:
            return self.replicas_for(labels)
        return self._placement_ring(labels).preference_list(
            stream_key(labels),
            self.replication_factor,
            zone_spread=self.zone_aware,
            exclude=exclude,
        )

    def _write_replicas(self, labels: LabelSet) -> list[str]:
        """The replicas a push actually targets: desired placement minus
        members the failure detector holds SUSPECT or DEAD.  The walk
        extends clockwise over the survivors, so the quorum is taken
        over members that can plausibly answer instead of stalling on
        ones that cannot."""
        ring = self._placement_ring(labels)
        exclude: set[str] = set()
        if self.memberlist is not None:
            exclude = self.memberlist.write_excluded()
        if not exclude:
            return ring.preference_list(
                stream_key(labels),
                self.replication_factor,
                zone_spread=self.zone_aware,
            )
        desired = self.replicas_for(labels)
        self.replicas_skipped_unhealthy += sum(
            1 for member in desired if member in exclude
        )
        return ring.preference_list(
            stream_key(labels),
            self.replication_factor,
            zone_spread=self.zone_aware,
            exclude=exclude,
        )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def push(
        self, request: PushRequest, parent_ctx: SpanContext | None = None
    ) -> PushResult:
        """Replicate every stream; raise :class:`QuorumError` if any
        stream lands on fewer than ``write_quorum`` live replicas."""
        self.pushes += 1
        span_ctx = None
        # Only join an existing (sampled) trace: rooting a fresh trace per
        # push would swamp the store and skew the sampling counters.
        if self.tracer is not None and parent_ctx is not None:
            now = self.tracer.now_ns
            span_ctx = self.tracer.record(
                "distributor",
                "push",
                parent_ctx,
                start_ns=now,
                end_ns=now,
                attributes={
                    "streams": str(len(request.streams)),
                    "rf": str(self.replication_factor),
                },
            )
        accepted_total = 0
        ok_total = failed_total = 0
        for stream in request.streams:
            replicas = self._write_replicas(stream.labels)
            accepted_counts = []
            for replica_id in replicas:
                ingester = self.ingesters[replica_id]
                try:
                    got = ingester.push_stream(stream.labels, stream.entries)
                except StateError:
                    failed_total += 1
                    self.replica_writes_failed += 1
                    continue
                accepted_counts.append(got)
                ok_total += 1
                self.replica_writes_ok += 1
                if span_ctx is not None and self.tracer is not None:
                    now = self.tracer.now_ns
                    self.tracer.record(
                        "ingester",
                        "append",
                        span_ctx,
                        start_ns=now,
                        end_ns=now,
                        attributes={
                            "ingester": replica_id,
                            "entries": str(got),
                        },
                    )
            if len(accepted_counts) < self.write_quorum:
                self.quorum_failures += 1
                raise QuorumError(
                    f"stream {stream.labels!r}: {len(accepted_counts)} of "
                    f"{self.replication_factor} replicas accepted, quorum is "
                    f"{self.write_quorum}"
                )
            # Replicas apply the same deterministic rejection logic; a
            # replica that missed earlier pushes (crash window) may reject
            # more, so the healthiest replica's count is the truth.
            accepted_total += max(accepted_counts)
        self.entries_accepted += accepted_total
        return PushResult(
            accepted=accepted_total,
            replicas_ok=ok_total,
            replicas_failed=failed_total,
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Quorum read: gather from every live replica, merge, dedupe.

        A replica that refuses mid-fan-out (crashed between placement
        and contact) is tolerated: the read falls back to the remaining
        replicas, and — when a failure detector is attached — the
        refusal marks the member SUSPECT instead of stalling the query.
        Members the detector already holds DEAD are not contacted at
        all.  Only when fewer than a quorum of replicas answered does
        the read fail, with a typed :class:`ReadDegradedError`.
        """
        self.reads += 1
        matchers = list(matchers)
        per_stream: dict[LabelSet, list[list[LogEntry]]] = {}
        responded = 0
        for ingester_id, ingester in self.ingesters.items():
            if self.memberlist is not None and self.memberlist.read_excluded(
                ingester_id
            ):
                continue
            try:
                results = ingester.select(matchers, start_ns, end_ns)
            except StateError:
                if self.memberlist is not None:
                    self.memberlist.suspect_from_read(ingester_id)
                continue
            responded += 1
            for labels, entries in results:
                per_stream.setdefault(labels, []).append(entries)
        if responded < self.write_quorum:
            self.reads_degraded += 1
            raise ReadDegradedError(responded, self.write_quorum)
        out = [
            (labels, merge_replica_entries(replica_lists))
            for labels, replica_lists in per_stream.items()
        ]
        out.sort(key=lambda pair: pair[0].items_tuple())
        return out
