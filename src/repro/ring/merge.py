"""Replica-entry merging: one stream's history across several copies.

Quorum reads, the tiered hot+cold read path, the compactor and the
anti-entropy repairer all face the same problem: several replicas hold
overlapping views of the same logical stream and the union must count
every acknowledged write exactly once.  The max-multiplicity merge here
is the single shared answer.
"""

from __future__ import annotations

from collections import Counter

from repro.loki.model import LogEntry

__all__ = ["merge_replica_entries"]


def merge_replica_entries(replica_lists: list[list[LogEntry]]) -> list[LogEntry]:
    """Merge one stream's entries across replicas, deduplicating.

    Replicas hold consistent prefixes/subsequences of the same logical
    stream (they applied the same pushes in the same order, minus crash
    windows), so per timestamp the fullest replica's ordering is
    authoritative; an identical ``(ts, line)`` seen on several replicas
    is the same write and appears once — its multiplicity is the *max*
    across replicas, never the sum.
    """
    if len(replica_lists) == 1:
        return list(replica_lists[0])
    # Group each replica's entries by timestamp, preserving intra-ts order.
    by_ts: dict[int, list[list[str]]] = {}
    for entries in replica_lists:
        groups: dict[int, list[str]] = {}
        for entry in entries:
            groups.setdefault(entry.timestamp_ns, []).append(entry.line)
        for ts, lines in groups.items():
            by_ts.setdefault(ts, []).append(lines)
    merged: list[LogEntry] = []
    for ts in sorted(by_ts):
        groups = by_ts[ts]
        base = max(groups, key=len)
        counts = Counter(base)
        merged.extend(LogEntry(ts, line) for line in base)
        # Any line a smaller group saw more often than the base is a
        # genuine extra write the base replica missed.
        extras: Counter[str] = Counter()
        for group in groups:
            if group is base:
                continue
            group_counts = Counter(group)
            for line, n in group_counts.items():
                short = n - counts[line]
                if short > extras[line]:
                    extras[line] = short
        for line in sorted(extras):
            merged.extend(LogEntry(ts, line) for _ in range(extras[line]))
    return merged
