"""Replicated, WAL-backed distributed ingest — the Loki write path.

The paper's OMNI warehouse sustains hundreds of thousands of messages per
second across an 8-worker Loki deployment; production Loki does that with
its *microservices* write path, which this package reimplements:

* :mod:`repro.ring.hashring` — the consistent-hash **ring**: every
  ingester owns many virtual-node tokens, stream placement is a pure
  function of the token set, and a join/leave moves only the streams
  adjacent to the new/removed tokens;
* :mod:`repro.ring.wal` — the per-ingester **write-ahead log**:
  segmented, checkpointed, replayed on restart, tolerant of a torn tail
  record;
* :mod:`repro.ring.ingester` — one replica: a :class:`~repro.loki.store.
  LokiStore` whose accepted writes are logged before they are applied,
  so a crash loses nothing that was acknowledged;
* :mod:`repro.ring.distributor` — validates pushes, fans each stream out
  to ``replication_factor`` ingesters and acknowledges at write
  **quorum**; the read path merges and deduplicates entries across
  replicas so a query is complete while any single replica is down;
* :mod:`repro.ring.cluster` — :class:`RingLokiCluster`, the drop-in
  store facade the warehouse/LogQL engine run against.
"""

from repro.ring.hashring import HashRing
from repro.ring.wal import WalRecord, WalSegment, WriteAheadLog
from repro.ring.ingester import Ingester, IngesterState
from repro.ring.distributor import Distributor, PushResult, QuorumError
from repro.ring.cluster import RingLokiCluster

__all__ = [
    "HashRing",
    "WalRecord",
    "WalSegment",
    "WriteAheadLog",
    "Ingester",
    "IngesterState",
    "Distributor",
    "PushResult",
    "QuorumError",
    "RingLokiCluster",
]
