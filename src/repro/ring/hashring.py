"""The consistent-hash ring: deterministic stream → ingester placement.

Same mechanism as the Loki/Cortex distributor ring: every ingester owns
``vnodes`` tokens on a 64-bit circle, a stream key hashes to a point on
the circle, and the owning replicas are the next ``n`` *distinct*
ingesters clockwise.  Placement is a pure function of the member set and
the hash, so every distributor sharing the ring agrees without
coordination, and a join/leave only re-homes the keys adjacent to the
tokens that appeared/vanished — the bounded-movement property the
property-based test in ``tests/test_ring_hash.py`` pins down.
"""

from __future__ import annotations

import bisect
from typing import Collection, Iterable, Mapping

from repro.common.errors import StateError, ValidationError
from repro.common.hashing import fnv1a_64, mix64
from repro.common.labels import LabelSet

# Historical home of the hash primitives; they moved to
# ``repro.common.hashing`` when the Loki shard placement (which the ring
# packages import) started needing the same finalizer.
__all__ = ["HashRing", "fnv1a_64", "mix64", "stream_key"]


def stream_key(labels: LabelSet | Mapping[str, str]) -> str:
    """Canonical ring key for a stream's label set."""
    labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
    return ";".join(f"{n}={v}" for n, v in labelset.items_tuple())


class HashRing:
    """Token ring with virtual nodes and clockwise preference lists."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValidationError("need at least one vnode per member")
        self.vnodes = vnodes
        # Sorted token positions with their owning member, kept in lockstep.
        self._tokens: list[int] = []
        self._owners: list[str] = []
        self._members: set[str] = set()
        # Optional availability-zone labels (repro.selfheal): members in
        # distinct zones fail independently, so the zone-spread placement
        # mode keeps a stream's replicas across as many zones as it can.
        self._zones: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def members(self) -> list[str]:
        return sorted(self._members)

    def _member_tokens(self, member: str) -> list[int]:
        return [
            mix64(fnv1a_64(f"{member}#{i}".encode()))
            for i in range(self.vnodes)
        ]

    def join(self, member: str) -> None:
        """Add a member; only keys adjacent to its tokens re-home."""
        if not member:
            raise ValidationError("member id must be non-empty")
        if member in self._members:
            raise StateError(f"member {member!r} already in the ring")
        self._members.add(member)
        for token in self._member_tokens(member):
            pos = bisect.bisect_left(self._tokens, token)
            # Token collisions across members are possible in principle;
            # insertion order then breaks the tie deterministically by id.
            while pos < len(self._tokens) and self._tokens[pos] == token and (
                self._owners[pos] < member
            ):
                pos += 1
            self._tokens.insert(pos, token)
            self._owners.insert(pos, member)

    def leave(self, member: str) -> None:
        """Remove a member; only keys it owned re-home."""
        if member not in self._members:
            raise StateError(f"member {member!r} not in the ring")
        self._members.discard(member)
        self._zones.pop(member, None)
        keep = [(t, o) for t, o in zip(self._tokens, self._owners) if o != member]
        self._tokens = [t for t, _ in keep]
        self._owners = [o for _, o in keep]

    # ------------------------------------------------------------------
    # Zones
    # ------------------------------------------------------------------
    def set_zone(self, member: str, zone: str) -> None:
        """Label a member with its availability zone."""
        if member not in self._members:
            raise StateError(f"member {member!r} not in the ring")
        if not zone:
            raise ValidationError("zone must be non-empty")
        self._zones[member] = zone

    def zone(self, member: str) -> str | None:
        """The member's zone label, or ``None`` if unlabelled."""
        return self._zones.get(member)

    def zones(self) -> list[str]:
        """Distinct zone labels in use, sorted."""
        return sorted(set(self._zones.values()))

    def members_in_zone(self, zone: str) -> list[str]:
        """Members carrying the given zone label, sorted."""
        return sorted(m for m, z in self._zones.items() if z == zone)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The single member owning ``key`` (first token clockwise)."""
        return self.preference_list(key, 1)[0]

    def preference_list(
        self,
        key: str,
        n: int,
        *,
        zone_spread: bool = False,
        exclude: Collection[str] = (),
    ) -> list[str]:
        """The first ``n`` *distinct* members clockwise of ``key``'s hash.

        This is the replica set for the key.  Asking for more members
        than the ring holds raises: a distributor must degrade its
        replication factor explicitly, not silently.

        ``exclude`` is exactly that explicit degradation: members in it
        (e.g. SUSPECT/DEAD per the failure detector) are skipped on the
        clockwise walk, and the list may come back *shorter* than ``n``
        when too few survivors remain — the caller decides whether the
        survivors still make a quorum.

        ``zone_spread`` makes the walk zone-aware: a first pass accepts
        only members whose zone is not yet represented, a second pass
        tops the list up with the remaining closest members regardless
        of zone.  With at least ``n`` distinct zones among eligible
        members the replicas therefore land in ``n`` distinct zones;
        with fewer zones, every zone still gets at least one replica.
        Unlabelled members never block on the zone constraint.
        """
        if n < 1:
            raise ValidationError("preference list size must be >= 1")
        if n > len(self._members):
            raise StateError(
                f"ring has {len(self._members)} member(s), wanted {n} replicas"
            )
        excluded = set(exclude)
        # Finalize the key hash the same way member tokens are: raw
        # FNV-1a of short, similar keys clusters on a narrow arc of the
        # circle (the walk then always starts in the same band and a
        # handful of members dominate every replica set); mix64 spreads
        # the start points uniformly.
        h = mix64(fnv1a_64(key.encode()))
        start = bisect.bisect_right(self._tokens, h)
        candidates: list[str] = []
        for i in range(len(self._tokens)):
            member = self._owners[(start + i) % len(self._tokens)]
            if member in excluded or member in candidates:
                continue
            candidates.append(member)
            if not zone_spread and len(candidates) == n:
                break
        if not zone_spread:
            return candidates
        out: list[str] = []
        zones_used: set[str] = set()
        for member in candidates:
            zone = self._zones.get(member)
            if zone is None or zone not in zones_used:
                out.append(member)
                if zone is not None:
                    zones_used.add(zone)
                if len(out) == n:
                    return out
        for member in candidates:
            if member not in out:
                out.append(member)
                if len(out) == n:
                    break
        return out

    def placement(self, keys: Iterable[str], n: int = 1) -> dict[str, tuple[str, ...]]:
        """Replica sets for many keys — the property tests' workhorse."""
        return {key: tuple(self.preference_list(key, n)) for key in keys}
