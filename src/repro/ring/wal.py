"""The per-ingester write-ahead log: segmented, checkpointed, replayable.

Same contract as Loki's ingester WAL: every entry is logged *before* it
is applied to the in-memory store, so an acknowledged write survives a
crash of the process.  The log is a sequence of **segments** (bounded
byte arrays standing in for the on-disk segment files); a **checkpoint**
durably captures the store's compacted state and lets all earlier
segments be dropped, bounding replay time.

Records are length-prefixed, so a torn final write (the crash happened
mid-``write()``) shows up as a partial record at the very tail.  Replay
tolerates exactly that: a short record at the end of the *last* segment
is dropped and counted; a short record anywhere else means real
corruption and raises.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import StateError, ValidationError
from repro.common.jsonutil import dumps_compact, loads
from repro.common.labels import LabelSet
from repro.loki.model import LogEntry

_LEN = struct.Struct(">I")


@dataclass(frozen=True)
class WalRecord:
    """One logged entry: the stream's labels plus the entry itself."""

    labels: tuple[tuple[str, str], ...]
    timestamp_ns: int
    line: str

    def encode(self) -> bytes:
        payload = dumps_compact(
            {"l": dict(self.labels), "t": self.timestamp_ns, "x": self.line}
        ).encode()
        return _LEN.pack(len(payload)) + payload

    @classmethod
    def decode(cls, payload: bytes) -> "WalRecord":
        try:
            obj = loads(payload.decode())
            labels = tuple(sorted((str(k), str(v)) for k, v in obj["l"].items()))
            return cls(labels, int(obj["t"]), str(obj["x"]))
        except Exception as exc:  # noqa: BLE001 - any decode failure is corruption
            raise StateError(f"undecodable WAL record: {exc}") from exc

    def labelset(self) -> LabelSet:
        return LabelSet(self.labels)

    def entry(self) -> LogEntry:
        return LogEntry(self.timestamp_ns, self.line)


@dataclass
class WalSegment:
    """One bounded append-only byte region (a segment file)."""

    index: int
    data: bytearray = field(default_factory=bytearray)
    records: int = 0
    sealed: bool = False

    def append(self, encoded: bytes) -> None:
        if self.sealed:
            raise StateError("cannot append to a sealed WAL segment")
        self.data.extend(encoded)
        self.records += 1

    def size_bytes(self) -> int:
        return len(self.data)

    def truncate_tail(self, nbytes: int) -> None:
        """Simulate a torn write: chop ``nbytes`` off the segment end."""
        if nbytes < 0 or nbytes > len(self.data):
            raise ValidationError("truncation out of range")
        del self.data[len(self.data) - nbytes :]


class WriteAheadLog:
    """Segmented append log with a single durable checkpoint slot."""

    def __init__(self, segment_max_bytes: int = 64 * 1024) -> None:
        if segment_max_bytes < 32:
            raise ValidationError("segment size too small to hold a record")
        self.segment_max_bytes = segment_max_bytes
        self.segments: list[WalSegment] = [WalSegment(index=0)]
        #: Opaque snapshot written by the owner at the last checkpoint;
        #: replay = restore this, then apply the remaining segments.
        self.checkpoint_blob: bytes | None = None
        self._next_index = 1
        # Accounting for the ring exporter / benches.
        self.records_appended = 0
        self.bytes_appended = 0
        self.segments_sealed = 0
        self.checkpoints = 0
        self.torn_records_dropped = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _active(self) -> WalSegment:
        return self.segments[-1]

    def _roll(self) -> None:
        self._active().sealed = True
        self.segments_sealed += 1
        self.segments.append(WalSegment(index=self._next_index))
        self._next_index += 1

    def append(
        self, labels: LabelSet, entries: Iterable[LogEntry]
    ) -> list[WalRecord]:
        """Log entries for one stream, rolling segments as they fill.

        Returns the records written (the ingester applies exactly these
        to its store afterwards — log first, apply second).
        """
        items = labels.items_tuple()
        written = []
        for entry in entries:
            record = WalRecord(items, entry.timestamp_ns, entry.line)
            encoded = record.encode()
            active = self._active()
            if active.size_bytes() and (
                active.size_bytes() + len(encoded) > self.segment_max_bytes
            ):
                self._roll()
                active = self._active()
            active.append(encoded)
            self.records_appended += 1
            self.bytes_appended += len(encoded)
            written.append(record)
        return written

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, blob: bytes) -> int:
        """Durably record ``blob`` and drop every logged segment.

        Returns the number of segments dropped.  The owner must ensure
        ``blob`` captures all state the dropped segments described.
        """
        dropped = len(self.segments)
        self.checkpoint_blob = blob
        self.segments = [WalSegment(index=self._next_index)]
        self._next_index += 1
        self.checkpoints += 1
        return dropped

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[WalRecord]:
        """Yield every decodable record in append order.

        A partial record at the tail of the *final* segment is dropped
        (torn last write); a partial record anywhere else raises
        :class:`~repro.common.errors.StateError`.
        """
        for segment in self.segments:
            is_tail = segment is self.segments[-1]
            data = segment.data
            offset = 0
            while offset < len(data):
                header = bytes(data[offset : offset + _LEN.size])
                if len(header) < _LEN.size:
                    if is_tail:
                        self.torn_records_dropped += 1
                        break
                    raise StateError(
                        f"WAL segment {segment.index} truncated mid-record"
                    )
                (length,) = _LEN.unpack(header)
                payload = bytes(
                    data[offset + _LEN.size : offset + _LEN.size + length]
                )
                if len(payload) < length:
                    if is_tail:
                        self.torn_records_dropped += 1
                        break
                    raise StateError(
                        f"WAL segment {segment.index} truncated mid-record"
                    )
                yield WalRecord.decode(payload)
                offset += _LEN.size + length

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def segment_count(self) -> int:
        return len(self.segments)

    def size_bytes(self) -> int:
        checkpoint = len(self.checkpoint_blob or b"")
        return checkpoint + sum(s.size_bytes() for s in self.segments)
