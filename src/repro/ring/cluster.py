"""RingLokiCluster: the replicated write path behind a LokiStore facade.

Owns the ring, the ingesters and the distributor, and exposes the store
surface the rest of the stack consumes (``push``/``push_stream``/
``select`` plus the accounting and maintenance methods), so the OMNI
warehouse, the LogQL engine, Promtail and the retention manager can run
unchanged against a replicated, crash-tolerant ingest tier.

Sizes and chunk counts reported here are **physical** — summed across
replicas, so RF=3 really shows 3× the storage, which is the point of the
storage accounting.  Logical (acknowledged-once) ingest lives on the
distributor: ``distributor.entries_accepted``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.errors import NotFoundError, ValidationError
from repro.common.labels import LabelSet, Matcher
from repro.loki.chunks import ChunkPolicy
from repro.loki.model import LogEntry, PushRequest, PushStream
from repro.loki.store import LokiStore, StoreStats, aggregate_stats
from repro.ring.distributor import Distributor
from repro.ring.hashring import HashRing
from repro.ring.ingester import Ingester
from repro.tempo.model import SpanContext
from repro.tempo.tracer import Tracer
from repro.tenancy.sharding import ShuffleSharder


class RingLokiCluster:
    """N ingesters on a hash ring behind one distributor."""

    def __init__(
        self,
        ingesters: int = 4,
        replication_factor: int = 3,
        policy: ChunkPolicy | None = None,
        vnodes: int = 64,
        wal_segment_bytes: int = 64 * 1024,
        tracer: Tracer | None = None,
        shard_size: int = 0,
        zones: int = 0,
    ) -> None:
        """``shard_size`` > 0 turns on shuffle sharding: streams carrying
        a ``tenant`` label confine their replicas to the tenant's subring
        of that many ingesters.  ``zones`` > 0 spreads the ingesters
        round-robin over that many availability zones and turns on
        zone-aware placement: each stream's replicas land in as many
        distinct zones as possible."""
        if ingesters < 1:
            raise ValidationError("need at least one ingester")
        if zones < 0:
            raise ValidationError("zones must be >= 0")
        if zones > ingesters:
            raise ValidationError(
                f"{zones} zones cannot all be populated by {ingesters} "
                f"ingester(s)"
            )
        self.ring = HashRing(vnodes=vnodes)
        self.zones = zones
        self.ingesters: dict[str, Ingester] = {}
        for i in range(ingesters):
            ingester_id = f"ingester-{i}"
            self.ingesters[ingester_id] = Ingester(
                ingester_id, policy=policy, wal_segment_bytes=wal_segment_bytes
            )
            self.ring.join(ingester_id)
            if zones > 0:
                self.ring.set_zone(ingester_id, f"zone-{i % zones}")
        self._policy = policy
        self._wal_segment_bytes = wal_segment_bytes
        self.sharder = ShuffleSharder(self.ring, shard_size)
        self.distributor = Distributor(
            self.ring,
            self.ingesters,
            replication_factor=replication_factor,
            tracer=tracer,
            sharder=self.sharder,
            zone_aware=zones > 0,
        )
        #: Failure-detector view (repro.selfheal); attached by the
        #: SelfHealManager, ``None`` until then.
        self.memberlist = None

    # ------------------------------------------------------------------
    # Store facade: ingest
    # ------------------------------------------------------------------
    def push(
        self, request: PushRequest, trace_ctx: SpanContext | None = None
    ) -> int:
        return self.distributor.push(request, parent_ctx=trace_ctx).accepted

    def push_stream(
        self,
        labels: LabelSet | Mapping[str, str],
        entries: Iterable[LogEntry],
        trace_ctx: SpanContext | None = None,
    ) -> int:
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        request = PushRequest(
            streams=(PushStream(labels=labelset, entries=tuple(entries)),)
        )
        return self.push(request, trace_ctx=trace_ctx)

    # ------------------------------------------------------------------
    # Store facade: reads + maintenance
    # ------------------------------------------------------------------
    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        return self.distributor.select(matchers, start_ns, end_ns)

    def active_stores(self) -> list["LokiStore"]:
        """The live replicas' stores, in ingester order — the surface the
        chunk shipper walks when flushing sealed chunks to the cold tier.
        Crashed replicas are skipped; whatever they held resident is
        either already flushed, replicated, or comes back via WAL replay
        (and re-flushed copies dedup away by content hash)."""
        return [i.store for i in self.ingesters.values() if i.active]

    def _active_stores(self):
        return iter(self.active_stores())

    def flush_all(self) -> int:
        return sum(store.flush_all() for store in self._active_stores())

    def flush_aged(self, now_ns: int) -> int:
        return sum(store.flush_aged(now_ns) for store in self._active_stores())

    def delete_before(self, cutoff_ns: int) -> int:
        return sum(
            store.delete_before(cutoff_ns) for store in self._active_stores()
        )

    def expired_entries(
        self, cutoff_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """What retention would archive, deduplicated across replicas:
        per stream the fullest replica's expired run is authoritative."""
        best: dict[LabelSet, list[LogEntry]] = {}
        for store in self._active_stores():
            for labels, entries in store.expired_entries(cutoff_ns):
                if len(entries) > len(best.get(labels, ())):
                    best[labels] = entries
        return sorted(best.items(), key=lambda pair: pair[0].items_tuple())

    # ------------------------------------------------------------------
    # Lifecycle / chaos hooks
    # ------------------------------------------------------------------
    def _ingester(self, ingester_id: str) -> Ingester:
        try:
            return self.ingesters[ingester_id]
        except KeyError:
            raise NotFoundError(f"no such ingester: {ingester_id}") from None

    def crash_ingester(self, ingester_id: str) -> None:
        self._ingester(ingester_id).crash()

    def restart_ingester(self, ingester_id: str) -> int:
        """Restart (WAL replay included); returns records replayed."""
        return self._ingester(ingester_id).restart()

    def checkpoint_all(self) -> int:
        """Checkpoint every live ingester; returns segments dropped."""
        return sum(
            i.checkpoint() for i in self.ingesters.values() if i.active
        )

    def join_ingester(
        self, ingester_id: str, zone: str | None = None
    ) -> Ingester:
        """Scale out: new empty ingester takes its token ranges for
        *future* writes (historical chunks stay put; reads fan out to
        every replica, so nothing needs migrating to stay queryable)."""
        if ingester_id in self.ingesters:
            raise ValidationError(f"ingester {ingester_id} already exists")
        ingester = Ingester(
            ingester_id,
            policy=self._policy,
            wal_segment_bytes=self._wal_segment_bytes,
        )
        self.ingesters[ingester_id] = ingester
        self.ring.join(ingester_id)
        if zone is not None:
            self.ring.set_zone(ingester_id, zone)
        return ingester

    def leave_ingester(self, ingester_id: str) -> None:
        """Scale in: the member leaves the ring; its store keeps serving
        reads for data it already holds until it is finally removed."""
        self._ingester(ingester_id)
        self.ring.leave(ingester_id)

    def remove_ingester(self, ingester_id: str) -> None:
        """Forget a member entirely: drop it from the ring (if it still
        holds tokens) and from the ingester map.  The anti-entropy
        repairer calls this once a DEAD member's streams have been
        re-replicated — removing it earlier would lose its replicas'
        only copies."""
        self._ingester(ingester_id)
        if ingester_id in self.ring.members():
            self.ring.leave(ingester_id)
        del self.ingesters[ingester_id]

    def attach_memberlist(self, memberlist) -> None:
        """Hook the failure detector's shared view into the write/read
        paths: the distributor starts skipping SUSPECT/DEAD members."""
        self.memberlist = memberlist
        self.distributor.memberlist = memberlist

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """Physical totals summed across every replica store."""
        return aggregate_stats(i.store for i in self.ingesters.values())

    def stream_count(self) -> int:
        """Distinct streams cluster-wide (union across replicas)."""
        return len(set(self.stream_labels()))

    def stream_labels(self) -> list[LabelSet]:
        """Distinct stream label sets cluster-wide, sorted."""
        seen: set[LabelSet] = set()
        for ingester in self.ingesters.values():
            seen.update(ingester.store.stream_labels())
        return sorted(seen, key=lambda ls: ls.items_tuple())

    def chunk_count(self) -> int:
        return sum(i.store.chunk_count() for i in self.ingesters.values())

    def stored_bytes(self) -> int:
        return sum(i.store.stored_bytes() for i in self.ingesters.values())

    def uncompressed_bytes(self) -> int:
        return sum(
            i.store.uncompressed_bytes() for i in self.ingesters.values()
        )

    def index_bytes(self) -> int:
        return sum(i.store.index_bytes() for i in self.ingesters.values())

    def compression_ratio(self) -> float:
        stored = self.stored_bytes()
        return self.uncompressed_bytes() / stored if stored else 0.0

    def oldest_entry_ns(self) -> int | None:
        oldest: int | None = None
        for ingester in self.ingesters.values():
            candidate = ingester.store.oldest_entry_ns()
            if candidate is not None and (oldest is None or candidate < oldest):
                oldest = candidate
        return oldest

    def ring_health(self) -> dict[str, dict[str, float | str]]:
        """Per-ingester health snapshot for the exporter/dashboard.

        Numeric fields become per-ingester gauges.  With a failure
        detector attached the snapshot also carries the lifecycle view:
        ``state`` (the detector's verdict, not the process state — a
        gray-failed member shows ``suspect`` while still ACTIVE) and
        ``heartbeat_age_seconds`` since the member last heartbeat.
        """
        out: dict[str, dict[str, float | str]] = {}
        lifecycle = (
            self.memberlist.snapshot() if self.memberlist is not None else {}
        )
        for ingester_id, ingester in sorted(self.ingesters.items()):
            row: dict[str, float | str] = {
                "up": 1.0 if ingester.active else 0.0,
                "entries": float(ingester.store.stats.entries_ingested),
                "chunks": float(ingester.store.chunk_count()),
                "wal_segments": float(ingester.wal.segment_count()),
                "wal_bytes": float(ingester.wal.size_bytes()),
                "wal_records": float(ingester.wal.records_appended),
                "crashes": float(ingester.crashes),
                "restarts": float(ingester.restarts),
                "replayed": float(ingester.records_replayed_total),
            }
            zone = self.ring.zone(ingester_id)
            if zone is not None:
                row["zone"] = zone
            view = lifecycle.get(ingester_id)
            if view is None:
                row["state"] = "active" if ingester.active else "crashed"
            else:
                row["state"] = view.state.value
                row["heartbeat_age_seconds"] = view.heartbeat_age_seconds
            out[ingester_id] = row
        return out
