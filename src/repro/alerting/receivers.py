"""Receiver protocol and grouped notifications.

A *notification* is one delivery to one receiver carrying every alert of
an aggregation group — the noise-reduction mechanism the paper's §I calls
"the reduction in noise caused by multiple alerts from the same events".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.common.labels import LabelSet
from repro.alerting.events import AlertEvent, AlertState


@dataclass(frozen=True)
class Notification:
    """One grouped delivery to a receiver."""

    receiver: str
    group_key: LabelSet
    alerts: tuple[AlertEvent, ...]
    timestamp_ns: int
    #: Stable identity of this *logical* notification: retries of a failed
    #: delivery reuse the key, a later re-notify of the group gets a fresh
    #: one.  ``None`` on hand-built notifications; Alertmanager always
    #: stamps it, and idempotent receivers dedup on it.
    idempotency_key: str | None = None

    @property
    def firing(self) -> tuple[AlertEvent, ...]:
        return tuple(a for a in self.alerts if a.state is AlertState.FIRING)

    @property
    def resolved(self) -> tuple[AlertEvent, ...]:
        return tuple(a for a in self.alerts if a.state is AlertState.RESOLVED)

    @property
    def status(self) -> str:
        return "firing" if self.firing else "resolved"


@runtime_checkable
class Receiver(Protocol):
    """Anything Alertmanager can deliver to (Slack, ServiceNow, memory)."""

    name: str

    def notify(self, notification: Notification) -> None: ...


@dataclass
class MemoryReceiver:
    """Records notifications; the test/benchmark receiver."""

    name: str = "memory"
    notifications: list[Notification] = field(default_factory=list)

    def notify(self, notification: Notification) -> None:
        self.notifications.append(notification)

    def alert_count(self) -> int:
        return sum(len(n.alerts) for n in self.notifications)

    def last(self) -> Notification | None:
        return self.notifications[-1] if self.notifications else None
