"""Shared alerting-rule state machine.

"Loki Ruler alerting rules share the same format as Prometheus alerting
rules" (paper §IV.A) — so the pending→firing→resolved lifecycle is
implemented once here and specialised by the Loki Ruler (LogQL queries)
and vmalert (PromQL queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.durations import parse_duration_ns
from repro.common.errors import ValidationError
from repro.common.labels import LabelSet
from repro.common.simclock import SimClock
from repro.common.vector import Sample
from repro.alerting.events import (
    ALERTNAME_LABEL,
    AlertEvent,
    AlertSeriesState,
    AlertState,
)


@dataclass(frozen=True)
class RuleSpec:
    """Prometheus-format alerting rule (shared by Ruler and vmalert).

    ``annotations`` may use ``{{ $labels.<name> }}`` and ``{{ $value }}``.
    """

    name: str
    expr: str
    for_: str = "0s"
    labels: dict[str, str] = field(default_factory=dict)
    annotations: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("rule needs a name")
        parse_duration_ns(self.for_)  # validate eagerly

    @property
    def for_ns(self) -> int:
        return parse_duration_ns(self.for_)


def render_template(template: str, labels: LabelSet, value: float) -> str:
    """Render the ``{{ $labels.x }}`` / ``{{ $value }}`` template subset."""
    out = template.replace("{{ $value }}", format_value(value))
    out = out.replace("{{$value}}", format_value(value))
    for name, val in labels.items():
        out = out.replace("{{ $labels." + name + " }}", val)
        out = out.replace("{{$labels." + name + "}}", val)
    return out


def format_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:g}"


class RuleEvaluator:
    """Periodic evaluator with per-series pending/firing tracking.

    Subclasses provide ``_query(expr, time_ns)``; every returned sample is
    an active series.  A series fires once it has been continuously active
    for the rule's ``for`` duration, and resolves when it disappears.
    """

    def __init__(
        self,
        clock: SimClock,
        notifier: Callable[[AlertEvent], None],
        generator: str,
    ) -> None:
        self._clock = clock
        self._notifier = notifier
        self._generator = generator
        self._rules: list[RuleSpec] = []
        self._state: dict[tuple[str, LabelSet], AlertSeriesState] = {}
        self.evaluations = 0

    # -- to be provided by subclasses --------------------------------------
    def _query(self, expr: str, time_ns: int) -> list[Sample]:
        raise NotImplementedError

    def _validate_expr(self, expr: str) -> None:
        """Subclasses validate the expression at rule-add time."""
        raise NotImplementedError

    # -- configuration ------------------------------------------------------
    def add_rule(self, rule: RuleSpec) -> None:
        if any(r.name == rule.name for r in self._rules):
            raise ValidationError(f"duplicate rule name: {rule.name}")
        self._validate_expr(rule.expr)
        self._rules.append(rule)

    def rules(self) -> list[RuleSpec]:
        return list(self._rules)

    def run_periodic(self, interval_ns: int) -> None:
        self._clock.every(interval_ns, self.evaluate_all)

    # -- evaluation ----------------------------------------------------------
    def evaluate_all(self) -> list[AlertEvent]:
        events: list[AlertEvent] = []
        for rule in self._rules:
            events.extend(self._evaluate_rule(rule))
        self.evaluations += 1
        return events

    def _evaluate_rule(self, rule: RuleSpec) -> list[AlertEvent]:
        now = self._clock.now_ns
        samples = self._query(rule.expr, now)
        active: dict[LabelSet, Sample] = {s.labels: s for s in samples}
        events: list[AlertEvent] = []

        for labels, sample in active.items():
            key = (rule.name, labels)
            state = self._state.setdefault(key, AlertSeriesState())
            state.last_value = sample.value
            if state.pending_since_ns is None:
                state.pending_since_ns = now
            if not state.firing and now - state.pending_since_ns >= rule.for_ns:
                state.firing = True
                state.fired_count += 1
                events.append(self._make_event(rule, labels, sample.value, state, now))

        for (rule_name, labels), state in list(self._state.items()):
            if rule_name != rule.name or labels in active:
                continue
            if state.firing:
                state.firing = False
                state.resolved_count += 1
                events.append(
                    self._make_event(
                        rule, labels, state.last_value, state, now, resolved=True
                    )
                )
            state.pending_since_ns = None

        for event in events:
            self._notifier(event)
        return events

    def _make_event(
        self,
        rule: RuleSpec,
        series_labels: LabelSet,
        value: float,
        state: AlertSeriesState,
        now_ns: int,
        resolved: bool = False,
    ) -> AlertEvent:
        # Prometheus drops the metric name when building alert labels.
        labels = series_labels.without("__name__").with_labels(
            **rule.labels, **{ALERTNAME_LABEL: rule.name}
        )
        annotations = {
            key: render_template(tmpl, labels, value)
            for key, tmpl in rule.annotations.items()
        }
        return AlertEvent(
            labels=labels,
            annotations=annotations,
            state=AlertState.RESOLVED if resolved else AlertState.FIRING,
            value=value,
            started_at_ns=state.pending_since_ns or now_ns,
            fired_at_ns=now_ns,
            generator=self._generator,
        )

    # -- introspection --------------------------------------------------------
    def firing_series(self) -> list[tuple[str, LabelSet]]:
        return sorted(
            (key for key, st in self._state.items() if st.firing),
            key=lambda k: (k[0], k[1].items_tuple()),
        )

    def pending_series(self) -> list[tuple[str, LabelSet]]:
        return sorted(
            (
                key
                for key, st in self._state.items()
                if st.pending_since_ns is not None and not st.firing
            ),
            key=lambda k: (k[0], k[1].items_tuple()),
        )
