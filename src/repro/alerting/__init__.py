"""Alertmanager-compatible alerting plane.

Paper §IV workflow: "Alertmanager receives events, groups them by
priority, category, source, etc. and sends alert messages to Slack or
ServiceNow."

* :mod:`repro.alerting.events` — the alert event contract shared by the
  Loki Ruler and vmalert.
* :mod:`repro.alerting.alertmanager` — grouping, routing tree, silences,
  inhibition, receiver dispatch with group_wait/group_interval/
  repeat_interval semantics.
* :mod:`repro.alerting.receivers` — receiver protocol plus in-memory
  receivers used by tests (Slack and ServiceNow adapters live in their
  own packages).
"""

from repro.alerting.events import AlertEvent, AlertState
from repro.alerting.alertmanager import (
    Alertmanager,
    Route,
    Silence,
    InhibitRule,
)
from repro.alerting.receivers import Receiver, Notification, MemoryReceiver

__all__ = [
    "AlertEvent",
    "AlertState",
    "Alertmanager",
    "Route",
    "Silence",
    "InhibitRule",
    "Receiver",
    "Notification",
    "MemoryReceiver",
]
