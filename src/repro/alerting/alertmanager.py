"""Alertmanager: grouping, routing, silences, inhibition, timed dispatch.

Implements the Prometheus Alertmanager semantics the paper's pipeline
depends on:

* a **routing tree** whose nodes match on alert labels and name a receiver;
* **aggregation groups** keyed by the route's ``group_by`` labels — a new
  group waits ``group_wait`` before first notifying (batching the storm),
  then re-notifies on changes every ``group_interval`` and unconditionally
  every ``repeat_interval``;
* **silences** (matcher sets with a validity window) drop matching alerts;
* **inhibition** suppresses target alerts while a matching source fires.

All timing runs on the simulated clock.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.durations import parse_duration_ns
from repro.common.errors import DeliveryError, NotFoundError, ValidationError
from repro.common.labels import LabelSet, Matcher, matches_all
from repro.common.simclock import SimClock
from repro.alerting.events import AlertEvent, AlertState
from repro.alerting.receivers import Notification, Receiver


@dataclass(frozen=True)
class TimeWindow:
    """One recurring weekly window, in simulation UTC.

    ``weekdays`` uses Monday=0; minutes count from midnight.  A window
    ending at 24*60 runs to end of day.
    """

    weekdays: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6)
    start_minute: int = 0
    end_minute: int = 24 * 60

    def __post_init__(self) -> None:
        if not self.weekdays:
            raise ValidationError("time window needs at least one weekday")
        if any(not 0 <= d <= 6 for d in self.weekdays):
            raise ValidationError("weekdays are 0 (Monday) .. 6 (Sunday)")
        if not 0 <= self.start_minute < self.end_minute <= 24 * 60:
            raise ValidationError("window minutes must satisfy 0 <= start < end <= 1440")

    def contains(self, ts_ns: int) -> bool:
        dt = _dt.datetime.fromtimestamp(ts_ns / 1e9, tz=_dt.timezone.utc)
        if dt.weekday() not in self.weekdays:
            return False
        minute = dt.hour * 60 + dt.minute
        return self.start_minute <= minute < self.end_minute


@dataclass
class Route:
    """One node of the routing tree."""

    receiver: str
    matchers: tuple[Matcher, ...] = ()
    group_by: tuple[str, ...] = ()
    group_wait: str = "30s"
    group_interval: str = "5m"
    repeat_interval: str = "4h"
    continue_: bool = False
    routes: list["Route"] = field(default_factory=list)
    #: Names of mute intervals (registered on the Alertmanager) during
    #: which this route's notifications are held back.
    mute_time_intervals: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for attr in ("group_wait", "group_interval", "repeat_interval"):
            parse_duration_ns(getattr(self, attr))

    def matches(self, labels: LabelSet) -> bool:
        return matches_all(labels, self.matchers)


@dataclass
class Silence:
    """Suppress alerts matching every matcher within [start, end)."""

    matchers: tuple[Matcher, ...]
    start_ns: int
    end_ns: int
    comment: str = ""

    def __post_init__(self) -> None:
        if self.end_ns <= self.start_ns:
            raise ValidationError("silence must end after it starts")
        if not self.matchers:
            raise ValidationError("silence needs at least one matcher")

    def active(self, now_ns: int) -> bool:
        return self.start_ns <= now_ns < self.end_ns

    def suppresses(self, labels: LabelSet, now_ns: int) -> bool:
        return self.active(now_ns) and matches_all(labels, self.matchers)


@dataclass
class InhibitRule:
    """While a *source* alert fires, suppress matching *target* alerts
    whose values for ``equal`` labels coincide with the source's."""

    source_matchers: tuple[Matcher, ...]
    target_matchers: tuple[Matcher, ...]
    equal: tuple[str, ...] = ()


class _AggregationGroup:
    """Alerts sharing a route and group-key; owns the notify schedule."""

    def __init__(self, route: Route, group_key: LabelSet) -> None:
        self.route = route
        self.group_key = group_key
        self.alerts: dict[int, AlertEvent] = {}
        self.dirty = False  # changes since last notification
        self.scheduled = False
        self.last_notified_ns: int | None = None

    def upsert(self, event: AlertEvent) -> None:
        self.alerts[event.fingerprint()] = event
        self.dirty = True

    def snapshot(self) -> tuple[AlertEvent, ...]:
        return tuple(
            sorted(self.alerts.values(), key=lambda a: a.labels.items_tuple())
        )

    def drop_resolved(self) -> None:
        self.alerts = {
            fp: a for fp, a in self.alerts.items() if a.state is AlertState.FIRING
        }


class Alertmanager:
    """The alert fan-in/fan-out hub between rule evaluators and receivers."""

    def __init__(self, clock: SimClock, route: Route) -> None:
        self._clock = clock
        self._root = route
        self._receivers: dict[str, Receiver] = {}
        self._groups: dict[tuple[int, LabelSet], _AggregationGroup] = {}
        self._silences: list[Silence] = []
        self._inhibit_rules: list[InhibitRule] = []
        self._mute_intervals: dict[str, tuple[TimeWindow, ...]] = {}
        self.events_received = 0
        self.notifications_muted = 0
        self.events_silenced = 0
        self.events_inhibited = 0
        self.notifications_sent = 0
        self.notifications_failed = 0
        self._notification_seq = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def register_receiver(self, receiver: Receiver) -> None:
        if receiver.name in self._receivers:
            raise ValidationError(f"duplicate receiver: {receiver.name}")
        self._receivers[receiver.name] = receiver

    def add_silence(self, silence: Silence) -> None:
        self._silences.append(silence)

    def add_inhibit_rule(self, rule: InhibitRule) -> None:
        self._inhibit_rules.append(rule)

    def add_mute_time_interval(
        self, name: str, windows: tuple[TimeWindow, ...]
    ) -> None:
        """Register a named maintenance window set routes can reference."""
        if not name or not windows:
            raise ValidationError("mute interval needs a name and windows")
        if name in self._mute_intervals:
            raise ValidationError(f"duplicate mute interval: {name}")
        self._mute_intervals[name] = tuple(windows)

    def _route_muted(self, route: Route, now_ns: int) -> bool:
        for name in route.mute_time_intervals:
            windows = self._mute_intervals.get(name)
            if windows is None:
                raise NotFoundError(f"route references unknown mute interval {name!r}")
            if any(w.contains(now_ns) for w in windows):
                return True
        return False

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def receive(self, event: AlertEvent) -> None:
        """Entry point for Ruler/vmalert events."""
        self.events_received += 1
        now = self._clock.now_ns
        if any(s.suppresses(event.labels, now) for s in self._silences):
            self.events_silenced += 1
            return
        if event.state is AlertState.FIRING and self._inhibited(event):
            self.events_inhibited += 1
            return
        for route in self._matching_routes(self._root, event.labels):
            self._enqueue(route, event)

    def _matching_routes(self, node: Route, labels: LabelSet) -> Iterable[Route]:
        """Depth-first route resolution with Alertmanager's continue
        semantics: the first matching child wins unless it sets continue."""
        if not node.matches(labels):
            return
        matched_child = False
        for child in node.routes:
            if child.matches(labels):
                matched_child = True
                yield from self._matching_routes(child, labels)
                if not child.continue_:
                    return
        if not matched_child:
            yield node

    def _enqueue(self, route: Route, event: AlertEvent) -> None:
        group_key = event.labels.project(route.group_by)
        key = (id(route), group_key)
        group = self._groups.get(key)
        if group is None:
            group = _AggregationGroup(route, group_key)
            self._groups[key] = group
        group.upsert(event)
        if not group.scheduled:
            group.scheduled = True
            wait = parse_duration_ns(route.group_wait)
            self._clock.call_later(wait, lambda: self._flush(group))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _flush(self, group: _AggregationGroup) -> None:
        now = self._clock.now_ns
        if self._route_muted(group.route, now):
            # Maintenance window: hold the notification, keep the state,
            # and try again next interval.
            self.notifications_muted += 1
            interval = parse_duration_ns(group.route.group_interval)
            self._clock.call_later(interval, lambda: self._flush(group))
            return
        repeat = parse_duration_ns(group.route.repeat_interval)
        due_repeat = (
            group.last_notified_ns is not None
            and now - group.last_notified_ns >= repeat
            and bool(group.alerts)
        )
        if group.dirty or due_repeat:
            self._notify(group, now)
        if not group.dirty:
            # Only forget resolved alerts once their resolution actually
            # went out — after a failed delivery the group stays dirty
            # and keeps its full snapshot for the retry.
            group.drop_resolved()
        if group.alerts or group.dirty:
            interval = parse_duration_ns(group.route.group_interval)
            self._clock.call_later(interval, lambda: self._flush(group))
        else:
            group.scheduled = False

    def _notify(self, group: _AggregationGroup, now_ns: int) -> None:
        receiver = self._receivers.get(group.route.receiver)
        if receiver is None:
            raise NotFoundError(f"no receiver named {group.route.receiver!r}")
        self._notification_seq += 1
        notification = Notification(
            receiver=receiver.name,
            group_key=group.group_key,
            alerts=group.snapshot(),
            timestamp_ns=now_ns,
            idempotency_key=f"{receiver.name}/ntfy-{self._notification_seq:06d}",
        )
        try:
            receiver.notify(notification)
        except DeliveryError:
            # Failed delivery must NOT mark the group notified: it stays
            # dirty, so the next group_interval flush retries it, and
            # ``last_notified_ns`` stays put so repeat accounting is
            # anchored at the last *successful* delivery.
            self.notifications_failed += 1
            return
        group.dirty = False
        group.last_notified_ns = now_ns
        self.notifications_sent += 1

    # ------------------------------------------------------------------
    # Inhibition
    # ------------------------------------------------------------------
    def _inhibited(self, event: AlertEvent) -> bool:
        for rule in self._inhibit_rules:
            if not matches_all(event.labels, rule.target_matchers):
                continue
            for group in self._groups.values():
                for alert in group.alerts.values():
                    if alert.state is not AlertState.FIRING:
                        continue
                    if not matches_all(alert.labels, rule.source_matchers):
                        continue
                    if all(
                        alert.labels.get(name, "") == event.labels.get(name, "")
                        for name in rule.equal
                    ):
                        return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_alerts(self) -> list[AlertEvent]:
        seen: dict[int, AlertEvent] = {}
        for group in self._groups.values():
            for fp, alert in group.alerts.items():
                if alert.state is AlertState.FIRING:
                    seen[fp] = alert
        return sorted(seen.values(), key=lambda a: a.labels.items_tuple())

    def grouping_factor(self) -> float:
        """Events received per notification sent — the noise reduction."""
        if self.notifications_sent == 0:
            return 0.0
        return self.events_received / self.notifications_sent
