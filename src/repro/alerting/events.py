"""The alert event contract between rule evaluators and Alertmanager.

Both vmalert (metrics) and the Loki Ruler (logs) emit the same shape —
which is precisely why the paper can unify metric and log alerting "in
the stage of visualization and alerting" despite separate storage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.labels import LabelSet


class AlertState(enum.Enum):
    FIRING = "firing"
    RESOLVED = "resolved"


#: Label names with special meaning, following Prometheus conventions.
ALERTNAME_LABEL = "alertname"
SEVERITY_LABEL = "severity"


@dataclass(frozen=True)
class AlertEvent:
    """One alert notification from a rule evaluator.

    ``labels`` identify the alert (rule labels + series labels, including
    ``alertname``); ``annotations`` carry rendered human-readable text;
    ``value`` is the query value that triggered the rule.
    """

    labels: LabelSet
    annotations: dict[str, str]
    state: AlertState
    value: float
    started_at_ns: int
    fired_at_ns: int
    generator: str = ""  # which evaluator produced it (ruler / vmalert)

    @property
    def name(self) -> str:
        return self.labels.get(ALERTNAME_LABEL, "<unnamed>")

    @property
    def severity(self) -> str:
        return self.labels.get(SEVERITY_LABEL, "none")

    def fingerprint(self) -> int:
        """Identity of the alert series (stable across state changes)."""
        return hash(self.labels)


@dataclass
class AlertSeriesState:
    """Rule-side lifecycle state for one (rule, label-set) pair."""

    pending_since_ns: int | None = None
    firing: bool = False
    last_value: float = 0.0
    resolved_count: int = 0
    fired_count: int = 0
    extra: dict[str, object] = field(default_factory=dict)
