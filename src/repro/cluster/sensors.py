"""Seeded sensor models producing deterministic telemetry.

Each cabinet, chassis, node, switch and cooling unit carries sensors
(temperature, humidity, power, fan speed — paper §IV workflow step 3).
Readings come from per-sensor Ornstein-Uhlenbeck-style mean-reverting
walks, vectorised with NumPy across the whole bank so that sampling the
full machine is a handful of array operations rather than a Python loop
per sensor (see the HPC guide: vectorise, avoid per-element work).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.common.errors import NotFoundError, ValidationError
from repro.common.xname import XName


class SensorKind(enum.Enum):
    TEMPERATURE_C = "temperature_celsius"
    HUMIDITY_PCT = "humidity_percent"
    POWER_W = "power_watts"
    FAN_RPM = "fan_speed_rpm"
    COOLANT_FLOW_LPM = "coolant_flow_lpm"


#: (mean, stddev of the stationary distribution, mean-reversion rate)
_KIND_PARAMS: dict[SensorKind, tuple[float, float, float]] = {
    SensorKind.TEMPERATURE_C: (35.0, 4.0, 0.15),
    SensorKind.HUMIDITY_PCT: (45.0, 5.0, 0.05),
    SensorKind.POWER_W: (450.0, 60.0, 0.25),
    SensorKind.FAN_RPM: (9000.0, 700.0, 0.30),
    SensorKind.COOLANT_FLOW_LPM: (60.0, 3.0, 0.10),
}


@dataclass(frozen=True)
class SensorId:
    """Identity of one physical sensor: component xname + kind + index."""

    xname: XName
    kind: SensorKind
    index: int = 0

    def __str__(self) -> str:
        return f"{self.xname}/{self.kind.value}/{self.index}"


class SensorBank:
    """A vectorised bank of sensors sharing one RNG.

    All sensor values live in one ``float64`` array; :meth:`step` advances
    every walk at once.  Per-sensor offsets (fault-injected excursions) are
    applied additively at read time so fault injection never perturbs the
    underlying deterministic walk.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._ids: list[SensorId] = []
        self._index: dict[SensorId, int] = {}
        self._values = np.empty(0, dtype=np.float64)
        self._means = np.empty(0, dtype=np.float64)
        self._sigmas = np.empty(0, dtype=np.float64)
        self._thetas = np.empty(0, dtype=np.float64)
        self._offsets = np.empty(0, dtype=np.float64)
        self._dirty = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(self, sensor: SensorId) -> None:
        if sensor in self._index:
            raise ValidationError(f"duplicate sensor: {sensor}")
        self._index[sensor] = len(self._ids)
        self._ids.append(sensor)
        self._dirty = True

    def add_many(self, sensors: list[SensorId]) -> None:
        for s in sensors:
            self.add(s)

    def _materialise(self) -> None:
        if not self._dirty:
            return
        n = len(self._ids)
        old_n = len(self._values)
        means = np.empty(n)
        sigmas = np.empty(n)
        thetas = np.empty(n)
        for i, sid in enumerate(self._ids):
            mean, sigma, theta = _KIND_PARAMS[sid.kind]
            means[i], sigmas[i], thetas[i] = mean, sigma, theta
        values = np.empty(n)
        offsets = np.zeros(n)
        values[:old_n] = self._values
        offsets[:old_n] = self._offsets
        # New sensors start at a draw from their stationary distribution.
        if n > old_n:
            values[old_n:] = means[old_n:] + sigmas[old_n:] * self._rng.standard_normal(
                n - old_n
            )
        self._values, self._means, self._sigmas, self._thetas, self._offsets = (
            values,
            means,
            sigmas,
            thetas,
            offsets,
        )
        self._dirty = False

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, steps: int = 1) -> None:
        """Advance every sensor walk ``steps`` ticks (vectorised)."""
        if steps < 1:
            raise ValidationError("steps must be >= 1")
        self._materialise()
        if len(self._values) == 0:
            return
        for _ in range(steps):
            noise = self._rng.standard_normal(len(self._values))
            # OU update: pull toward the mean, inject scaled noise.
            self._values += self._thetas * (self._means - self._values)
            self._values += self._sigmas * np.sqrt(2.0 * self._thetas) * noise

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self, sensor: SensorId) -> float:
        self._materialise()
        try:
            i = self._index[sensor]
        except KeyError:
            raise NotFoundError(f"no such sensor: {sensor}") from None
        return float(self._values[i] + self._offsets[i])

    def read_all(self) -> list[tuple[SensorId, float]]:
        """Snapshot every sensor (ordered by registration)."""
        self._materialise()
        combined = self._values + self._offsets
        return list(zip(self._ids, combined.tolist()))

    def sensors(self) -> list[SensorId]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def set_offset(self, sensor: SensorId, offset: float) -> None:
        """Apply an additive excursion (thermal fault, power spike...)."""
        self._materialise()
        try:
            i = self._index[sensor]
        except KeyError:
            raise NotFoundError(f"no such sensor: {sensor}") from None
        self._offsets[i] = offset

    def clear_offsets(self) -> None:
        self._materialise()
        self._offsets[:] = 0.0


def build_standard_bank(cluster, seed: int = 0) -> SensorBank:
    """Instrument a :class:`~repro.cluster.topology.Cluster` with the
    standard sensor complement: per-node temperature and power, per-chassis
    fan and coolant flow, per-cabinet temperature and humidity."""
    bank = SensorBank(seed=seed)
    sensors: list[SensorId] = []
    for x in sorted(cluster.nodes):
        sensors.append(SensorId(x, SensorKind.TEMPERATURE_C))
        sensors.append(SensorId(x, SensorKind.POWER_W))
    for x in sorted(cluster.chassis):
        sensors.append(SensorId(x, SensorKind.FAN_RPM))
        sensors.append(SensorId(x, SensorKind.COOLANT_FLOW_LPM))
    for x in sorted(cluster.cabinets):
        sensors.append(SensorId(x, SensorKind.TEMPERATURE_C))
        sensors.append(SensorId(x, SensorKind.HUMIDITY_PCT))
    bank.add_many(sensors)
    return bank
