"""Perlmutter-like machine topology with Shasta xname addressing.

The geometry follows HPE Cray EX conventions scaled down to simulation
size: cabinets hold chassis, chassis hold compute blades (slots) and
Rosetta switch blades.  The paper states each Rosetta switch connects
eight compute nodes, so the default spec keeps that ratio (8 slots × 2
nodes per chassis = 16 nodes, served by 2 switches).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import NotFoundError, ValidationError
from repro.common.xname import XName

#: Cabinet coolant-leak sensing zones; each zone has redundant sensors
#: 'A' and 'B' (paper Fig. 2: "Sensor 'A' of the redundant leak sensors
#: in the 'Front' cabinet zone").
LEAK_ZONES = ("Front", "Rear")
LEAK_SENSORS = ("A", "B")
NODES_PER_SWITCH = 8


class SwitchState(enum.Enum):
    """Slingshot Fabric Manager switch states (paper §IV.B)."""

    ONLINE = "ONLINE"
    OFFLINE = "OFFLINE"
    UNKNOWN = "UNKNOWN"


class NodeState(enum.Enum):
    UP = "UP"
    DOWN = "DOWN"


@dataclass(frozen=True)
class ClusterSpec:
    """Size parameters for a synthetic machine.

    The default is a small but structurally faithful machine: 4 cabinets x
    8 chassis x (8 slots x 2 nodes + 2 switches) = 512 nodes, 64 switches.
    """

    name: str = "perlmutter"
    cabinets: int = 4
    chassis_per_cabinet: int = 8
    slots_per_chassis: int = 8
    nodes_per_slot: int = 2
    first_cabinet: int = 1000

    def __post_init__(self) -> None:
        for fname in ("cabinets", "chassis_per_cabinet", "slots_per_chassis",
                      "nodes_per_slot"):
            if getattr(self, fname) < 1:
                raise ValidationError(f"{fname} must be >= 1")
        nodes_per_chassis = self.slots_per_chassis * self.nodes_per_slot
        if nodes_per_chassis % NODES_PER_SWITCH != 0:
            raise ValidationError(
                "nodes per chassis must be a multiple of 8 so every Rosetta "
                "switch serves exactly eight compute nodes"
            )

    @property
    def switches_per_chassis(self) -> int:
        return (self.slots_per_chassis * self.nodes_per_slot) // NODES_PER_SWITCH

    @property
    def total_nodes(self) -> int:
        return (
            self.cabinets
            * self.chassis_per_cabinet
            * self.slots_per_chassis
            * self.nodes_per_slot
        )

    @property
    def total_switches(self) -> int:
        return self.cabinets * self.chassis_per_cabinet * self.switches_per_chassis


@dataclass
class ComputeNode:
    xname: XName
    state: NodeState = NodeState.UP
    switch: XName | None = None  # the Rosetta switch serving this node


@dataclass
class Switch:
    xname: XName
    state: SwitchState = SwitchState.ONLINE
    nodes: list[XName] = field(default_factory=list)


@dataclass
class Chassis:
    xname: XName
    nodes: list[XName] = field(default_factory=list)
    switches: list[XName] = field(default_factory=list)


@dataclass
class Cabinet:
    xname: XName
    chassis: list[XName] = field(default_factory=list)
    #: leak state per (zone, sensor) — True means coolant detected.
    leak_state: dict[tuple[str, str], bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.leak_state:
            self.leak_state = {
                (zone, sensor): False for zone in LEAK_ZONES for sensor in LEAK_SENSORS
            }


class Cluster:
    """The assembled machine: component registry plus mutable state.

    The monitoring stack never reads this object directly — it observes the
    cluster only through Redfish events, fabric-manager queries, exporters
    and logs, exactly as the paper's pipeline observes Perlmutter.
    """

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = spec or ClusterSpec()
        self.cabinets: dict[XName, Cabinet] = {}
        self.chassis: dict[XName, Chassis] = {}
        self.nodes: dict[XName, ComputeNode] = {}
        self.switches: dict[XName, Switch] = {}
        self._build()

    def _build(self) -> None:
        s = self.spec
        for cab_i in range(s.cabinets):
            cab_x = XName(s.first_cabinet + cab_i)
            cabinet = Cabinet(cab_x)
            self.cabinets[cab_x] = cabinet
            for ch_i in range(s.chassis_per_cabinet):
                ch_x = XName(cab_x.cabinet, ch_i)
                chassis = Chassis(ch_x)
                self.chassis[ch_x] = chassis
                cabinet.chassis.append(ch_x)
                # Compute nodes: slot s, BMC 0, node n.
                chassis_nodes: list[XName] = []
                for slot in range(s.slots_per_chassis):
                    for n in range(s.nodes_per_slot):
                        node_x = XName(cab_x.cabinet, ch_i, slot=slot, bmc=0, node=n)
                        self.nodes[node_x] = ComputeNode(node_x)
                        chassis.nodes.append(node_x)
                        chassis_nodes.append(node_x)
                # Rosetta switches: r index, BMC 0; each serves 8 nodes.
                for sw_i in range(s.switches_per_chassis):
                    sw_x = XName(cab_x.cabinet, ch_i, switch=sw_i, bmc=0)
                    served = chassis_nodes[
                        sw_i * NODES_PER_SWITCH : (sw_i + 1) * NODES_PER_SWITCH
                    ]
                    sw = Switch(sw_x, nodes=list(served))
                    self.switches[sw_x] = sw
                    chassis.switches.append(sw_x)
                    for node_x in served:
                        self.nodes[node_x].switch = sw_x

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def cabinet(self, xname: XName | str) -> Cabinet:
        x = XName.parse(xname) if isinstance(xname, str) else xname
        try:
            return self.cabinets[x]
        except KeyError:
            raise NotFoundError(f"no such cabinet: {x}") from None

    def node(self, xname: XName | str) -> ComputeNode:
        x = XName.parse(xname) if isinstance(xname, str) else xname
        try:
            return self.nodes[x]
        except KeyError:
            raise NotFoundError(f"no such node: {x}") from None

    def switch(self, xname: XName | str) -> Switch:
        x = XName.parse(xname) if isinstance(xname, str) else xname
        try:
            return self.switches[x]
        except KeyError:
            raise NotFoundError(f"no such switch: {x}") from None

    def chassis_controller_xname(self, chassis_x: XName) -> XName:
        """The chassis BMC (``...b0``) that reports cabinet-zone events."""
        return XName(chassis_x.cabinet, chassis_x.chassis, bmc=0)

    # ------------------------------------------------------------------
    # State mutation (used by the fault injector)
    # ------------------------------------------------------------------
    def set_switch_state(self, xname: XName | str, state: SwitchState) -> SwitchState:
        """Set a switch's state, returning the previous state."""
        sw = self.switch(xname)
        prev = sw.state
        sw.state = state
        return prev

    def set_node_state(self, xname: XName | str, state: NodeState) -> NodeState:
        node = self.node(xname)
        prev = node.state
        node.state = state
        return prev

    def set_leak(
        self, cabinet_x: XName | str, zone: str, sensor: str, detected: bool
    ) -> None:
        if zone not in LEAK_ZONES:
            raise ValidationError(f"unknown leak zone {zone!r}; expected {LEAK_ZONES}")
        if sensor not in LEAK_SENSORS:
            raise ValidationError(
                f"unknown leak sensor {sensor!r}; expected {LEAK_SENSORS}"
            )
        self.cabinet(cabinet_x).leak_state[(zone, sensor)] = detected

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def offline_switches(self) -> list[Switch]:
        return [
            sw for x, sw in sorted(self.switches.items())
            if sw.state is not SwitchState.ONLINE
        ]

    def unreachable_nodes(self) -> list[XName]:
        """Nodes whose serving switch is not ONLINE (connectivity loss)."""
        out = []
        for x, node in sorted(self.nodes.items()):
            if node.switch is not None:
                if self.switches[node.switch].state is not SwitchState.ONLINE:
                    out.append(x)
        return out
