"""Synthetic GPFS health model (paper §V future work).

The paper's stated next step is "a mechanism for monitoring the health
status and performance for the General Parallel File System (GPFS)".
This module provides that substrate: a small GPFS cluster model exposing
per-filesystem health metrics (disk write speed, I/O ops, CRC errors —
the very examples §III.C lists as OMNI monitoring data) that the
monitoring pipeline scrapes and alerts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import NotFoundError, ValidationError


@dataclass
class GpfsFilesystem:
    """One GPFS filesystem with NSD (network shared disk) servers."""

    name: str
    nsd_servers: int = 8
    degraded: bool = False
    #: fraction of NSD servers currently unhealthy, 0..1
    degraded_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.nsd_servers < 1:
            raise ValidationError("filesystem needs at least one NSD server")


@dataclass
class GpfsHealthSample:
    """One health snapshot of one filesystem."""

    fs_name: str
    write_mb_s: float
    read_mb_s: float
    iops: float
    crc_errors: int
    unhealthy_nsds: int
    healthy: bool
    fields: dict[str, float] = field(default_factory=dict)


class GpfsModel:
    """Seeded GPFS performance/health generator.

    Baseline throughput follows a mean-reverting walk; degradation scales
    throughput down by the degraded fraction and starts producing CRC
    errors — the signature the alerting rules look for.
    """

    def __init__(self, filesystems: list[GpfsFilesystem], seed: int = 0) -> None:
        if not filesystems:
            raise ValidationError("need at least one filesystem")
        names = [fs.name for fs in filesystems]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate filesystem names")
        self._fs = {fs.name: fs for fs in filesystems}
        self._rng = np.random.default_rng(seed)
        self._write_base = {fs.name: 4000.0 for fs in filesystems}  # MB/s

    def filesystems(self) -> list[str]:
        return sorted(self._fs)

    def set_degraded(self, name: str, degraded: bool, fraction: float = 0.25) -> None:
        fs = self._get(name)
        if not 0.0 <= fraction <= 1.0:
            raise ValidationError("degraded fraction must be in [0, 1]")
        fs.degraded = degraded
        fs.degraded_fraction = fraction if degraded else 0.0

    def _get(self, name: str) -> GpfsFilesystem:
        try:
            return self._fs[name]
        except KeyError:
            raise NotFoundError(f"no such filesystem: {name}") from None

    def sample(self, name: str) -> GpfsHealthSample:
        """Produce one health snapshot for ``name``."""
        fs = self._get(name)
        base = self._write_base[name]
        # Mean-reverting wander of the baseline.
        base += 0.1 * (4000.0 - base) + 80.0 * self._rng.standard_normal()
        self._write_base[name] = base
        scale = 1.0 - 0.8 * fs.degraded_fraction
        write = max(0.0, base * scale)
        read = max(0.0, base * 1.4 * scale + 50.0 * self._rng.standard_normal())
        iops = max(0.0, write * 25.0 + 500.0 * self._rng.standard_normal())
        unhealthy = int(round(fs.nsd_servers * fs.degraded_fraction))
        crc = int(self._rng.poisson(8.0)) if fs.degraded else 0
        return GpfsHealthSample(
            fs_name=name,
            write_mb_s=write,
            read_mb_s=read,
            iops=iops,
            crc_errors=crc,
            unhealthy_nsds=unhealthy,
            healthy=not fs.degraded,
        )

    def sample_all(self) -> list[GpfsHealthSample]:
        return [self.sample(name) for name in self.filesystems()]
