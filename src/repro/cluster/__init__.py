"""Synthetic Perlmutter-like cluster.

The reproduction cannot observe real Perlmutter hardware, so this package
models the parts of the machine the monitoring stack sees:

* :mod:`repro.cluster.topology` — cabinets → chassis → blades → nodes and
  Rosetta switches, addressed by Shasta xnames (each switch serves eight
  compute nodes, as the paper states).
* :mod:`repro.cluster.sensors` — seeded sensor models (temperature, power,
  humidity, fan speed, leak detectors) producing deterministic readings.
* :mod:`repro.cluster.faults` — fault injection: cabinet coolant leaks,
  switch state changes, node crashes, thermal excursions, GPFS degradation.
* :mod:`repro.cluster.gpfs` — synthetic GPFS health (paper future work §V).
"""

from repro.cluster.topology import ClusterSpec, Cluster, SwitchState
from repro.cluster.faults import FaultInjector, Fault, FaultKind
from repro.cluster.sensors import SensorKind, SensorBank

__all__ = [
    "ClusterSpec",
    "Cluster",
    "SwitchState",
    "FaultInjector",
    "Fault",
    "FaultKind",
    "SensorKind",
    "SensorBank",
]
