"""Fault injection for the synthetic cluster.

The paper's two case studies are triggered by physical faults: a coolant
leak in a cabinet zone (§IV.A) and a Rosetta switch leaving the ONLINE
state (§IV.B).  The injector schedules such faults on the simulated clock,
mutates cluster state when they begin/end, and records ground truth so the
MTTR study (bench C5) can compare *fault time* against *alert time*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import CapacityError, ValidationError
from repro.common.labels import LabelSet
from repro.common.simclock import SimClock, Timer, seconds
from repro.common.xname import XName
from repro.cluster.sensors import SensorBank, SensorId, SensorKind
from repro.cluster.topology import Cluster, NodeState, SwitchState
from repro.loki.model import LogEntry, PushRequest, PushStream

if TYPE_CHECKING:
    from repro.core.consumers import _BaseConsumer
    from repro.objstore.objectstore import ObjectStore
    from repro.objstore.shipper import ChunkShipper
    from repro.omni.warehouse import OmniWarehouse
    from repro.queryx.executor import QuerierPool
    from repro.resilience.journal import NotificationJournal
    from repro.resilience.receivers import FlakyReceiver
    from repro.ring.cluster import RingLokiCluster
    from repro.selfheal.manager import SelfHealManager
    from repro.slo.manager import SloManager
    from repro.tenancy.scheduler import QueryScheduler


class FaultKind(enum.Enum):
    CABINET_LEAK = "cabinet_leak"
    SWITCH_OFFLINE = "switch_offline"
    SWITCH_UNKNOWN = "switch_unknown"
    NODE_DOWN = "node_down"
    THERMAL_EXCURSION = "thermal_excursion"
    GPFS_DEGRADED = "gpfs_degraded"
    # Faults against the monitoring pipeline itself: a Loki ingest-ring
    # member dies (and, at fault end, restarts with WAL replay) or is
    # bounced immediately.  Targets are ingester ids, not xnames.
    INGESTER_CRASH = "ingester_crash"
    INGESTER_RESTART = "ingester_restart"
    # Alert-delivery-plane faults (repro.resilience): a notification
    # receiver goes dark, or a consumer pod slows to a crawl.  Targets
    # are receiver names / consumer names, not xnames.
    RECEIVER_OUTAGE = "receiver_outage"
    SLOW_CONSUMER = "slow_consumer"
    # Multi-tenancy fault (repro.tenancy): a tenant goes rogue and floods
    # the write path (and optionally the query scheduler) until the
    # fault ends.  The target is the offending tenant id.
    NOISY_NEIGHBOR = "noisy_neighbor"
    # Cold-tier faults (repro.objstore): the object-store backend goes
    # dark (every request refused, flushes stall resident) or degrades
    # (accounted latencies multiplied).  Targets are backend names.
    OBJSTORE_OUTAGE = "objstore_outage"
    OBJSTORE_SLOW = "objstore_slow"
    # Read-path faults (repro.queryx): a querier worker dies holding its
    # subqueries (each is retried on a live peer), or drags as a
    # straggler with multiplied execution costs.  Targets are querier
    # worker ids ("querier-0", ...).
    QUERIER_CRASH = "querier_crash"
    SLOW_QUERIER = "slow_querier"
    # Self-healing faults (repro.selfheal).  HEARTBEAT_LOSS is a *gray*
    # failure: the target ingester keeps serving but its heartbeats
    # vanish, so only the failure detector can tell something is wrong.
    # ZONE_OUTAGE crashes every ingester in an availability zone and
    # bars the supervisor from restarting into it until the fault ends.
    # Targets are an ingester id / a zone name respectively.
    HEARTBEAT_LOSS = "heartbeat_loss"
    ZONE_OUTAGE = "zone_outage"
    # Pattern-mining faults (repro.patterns).  LOG_STORM floods the
    # warehouse with one template at a digit-varying parameter — the
    # alert-storm scenario pattern grouping must collapse.  NOVEL_ERROR
    # injects a burst of a never-before-seen error-class template that
    # no hand-written rule knows about.  Targets are app names.
    LOG_STORM = "log_storm"
    NOVEL_ERROR = "novel_error"
    # SLO fault (repro.slo): degrade a chosen SLI at a configured error
    # rate — synthetic events flow into the SLI collector every tick,
    # burning error budget until the multi-window burn-rate rules page.
    # The target is an SLO name.
    BURN_INJECTION = "burn_injection"


#: Fault kinds whose target is an ingest-ring member id, not an xname.
_INGESTER_KINDS = frozenset(
    {FaultKind.INGESTER_CRASH, FaultKind.INGESTER_RESTART}
)

#: Fault kinds whose target is a delivery-plane component name.
_DELIVERY_KINDS = frozenset(
    {FaultKind.RECEIVER_OUTAGE, FaultKind.SLOW_CONSUMER}
)

#: Fault kinds whose target is a tenant id.
_TENANCY_KINDS = frozenset({FaultKind.NOISY_NEIGHBOR})

#: Fault kinds whose target is an object-store backend name.
_OBJSTORE_KINDS = frozenset(
    {FaultKind.OBJSTORE_OUTAGE, FaultKind.OBJSTORE_SLOW}
)

#: Fault kinds whose target is a querier worker id.
_QUERYX_KINDS = frozenset({FaultKind.QUERIER_CRASH, FaultKind.SLOW_QUERIER})

#: Fault kinds whose target is an ingester id / zone name (selfheal).
_SELFHEAL_KINDS = frozenset(
    {FaultKind.HEARTBEAT_LOSS, FaultKind.ZONE_OUTAGE}
)

#: Fault kinds whose target is an app name (pattern mining).
_PATTERN_KINDS = frozenset({FaultKind.LOG_STORM, FaultKind.NOVEL_ERROR})

#: Fault kinds whose target is an SLO name.
_SLO_KINDS = frozenset({FaultKind.BURN_INJECTION})


def _letters_marker(n: int, length: int = 6) -> str:
    """Deterministic all-alphabetic marker from an integer (the miner
    masks digit-bearing tokens, so novelty markers must be letters)."""
    out = []
    for _ in range(length):
        out.append(chr(ord("a") + n % 26))
        n //= 26
    return "".join(out)


@dataclass
class Fault:
    """One injected fault with ground-truth timing."""

    kind: FaultKind
    target: XName | str  # str = ingester id for the INGESTER_* kinds
    start_ns: int
    end_ns: int | None  # None = until repaired
    detail: dict[str, object] = field(default_factory=dict)
    active: bool = False
    repaired_ns: int | None = None


class FaultInjector:
    """Schedules faults and applies them to cluster/sensor state."""

    def __init__(
        self,
        cluster: Cluster,
        clock: SimClock,
        sensors: SensorBank | None = None,
        ring: "RingLokiCluster | None" = None,
    ) -> None:
        self._cluster = cluster
        self._clock = clock
        self._sensors = sensors
        self._ring = ring
        self._receivers: dict[str, "FlakyReceiver"] = {}
        self._consumers: dict[str, "_BaseConsumer"] = {}
        self._journal: "NotificationJournal | None" = None
        self._warehouse: "OmniWarehouse | None" = None
        self._scheduler: "QueryScheduler | None" = None
        self._objstore: "ObjectStore | None" = None
        self._shipper: "ChunkShipper | None" = None
        self._querier_pool: "QuerierPool | None" = None
        self._selfheal: "SelfHealManager | None" = None
        self._pattern_warehouse: "OmniWarehouse | None" = None
        self._pattern_ingester = None
        self._slo_manager: "SloManager | None" = None
        self._flood_timers: dict[int, Timer] = {}
        self.faults: list[Fault] = []

    def attach_ring(self, ring: "RingLokiCluster") -> None:
        """Late-bind the ingest ring (the framework builds it after the
        injector, since the warehouse needs the fault-free clock first)."""
        self._ring = ring

    def attach_delivery(
        self,
        receivers: "dict[str, FlakyReceiver]",
        consumers: "dict[str, _BaseConsumer]",
        journal: "NotificationJournal | None" = None,
    ) -> None:
        """Late-bind the alert-delivery plane (reliable-delivery mode):
        flaky receiver wrappers by receiver name, consumer pods by name,
        and the notification journal for ground-truth snapshots."""
        self._receivers = dict(receivers)
        self._consumers = dict(consumers)
        self._journal = journal

    def attach_tenancy(
        self,
        warehouse: "OmniWarehouse",
        scheduler: "QueryScheduler | None" = None,
    ) -> None:
        """Late-bind the multi-tenant plane: the warehouse whose write
        path the noisy neighbor floods, and (optionally) the query
        scheduler it hammers with wide range queries."""
        self._warehouse = warehouse
        self._scheduler = scheduler

    def attach_objstore(
        self,
        store: "ObjectStore",
        shipper: "ChunkShipper | None" = None,
    ) -> None:
        """Late-bind the cold tier (object-storage mode): the backend the
        OBJSTORE_* faults toggle, plus the shipper whose failure counters
        give the ground-truth snapshots."""
        self._objstore = store
        self._shipper = shipper

    def attach_queryx(self, pool: "QuerierPool") -> None:
        """Late-bind the querier pool (query-engine mode): the workers
        the QUERIER_CRASH / SLOW_QUERIER faults kill and drag."""
        self._querier_pool = pool

    def attach_selfheal(self, manager: "SelfHealManager") -> None:
        """Late-bind the self-healing loop (self-healing mode): the
        manager whose detector the HEARTBEAT_LOSS fault mutes and whose
        supervisor the ZONE_OUTAGE fault bars."""
        self._selfheal = manager

    def attach_patterns(
        self, warehouse: "OmniWarehouse", ingester=None
    ) -> None:
        """Late-bind the log-pattern plane: the warehouse the LOG_STORM /
        NOVEL_ERROR faults flood, plus (optionally) the pattern ingester
        for ground-truth counters."""
        self._pattern_warehouse = warehouse
        self._pattern_ingester = ingester

    def attach_slo(self, manager: "SloManager") -> None:
        """Late-bind the SLO plane: the manager whose SLI collectors the
        BURN_INJECTION fault degrades."""
        self._slo_manager = manager

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        kind: FaultKind,
        target: XName | str,
        delay_ns: int = 0,
        duration_ns: int | None = None,
        **detail: object,
    ) -> Fault:
        """Schedule a fault ``delay_ns`` from now, lasting ``duration_ns``
        (or until :meth:`repair`)."""
        if delay_ns < 0:
            raise ValidationError("delay must be non-negative")
        if (
            kind in _INGESTER_KINDS
            or kind in _DELIVERY_KINDS
            or kind in _TENANCY_KINDS
            or kind in _OBJSTORE_KINDS
            or kind in _QUERYX_KINDS
            or kind in _SELFHEAL_KINDS
            or kind in _PATTERN_KINDS
            or kind in _SLO_KINDS
        ):
            x: XName | str = str(target)
        else:
            x = XName.parse(target) if isinstance(target, str) else target
        start = self._clock.now_ns + delay_ns
        end = start + duration_ns if duration_ns is not None else None
        fault = Fault(kind=kind, target=x, start_ns=start, end_ns=end, detail=detail)
        self.faults.append(fault)
        self._clock.call_at(start, lambda: self._begin(fault))
        if end is not None:
            self._clock.call_at(end, lambda: self._end(fault))
        return fault

    def repair(self, fault: Fault) -> None:
        """Explicitly repair an open-ended fault now."""
        if fault.active:
            self._end(fault)
        fault.repaired_ns = self._clock.now_ns

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def _begin(self, fault: Fault) -> None:
        fault.active = True
        kind, target, detail = fault.kind, fault.target, fault.detail
        if kind is FaultKind.CABINET_LEAK:
            zone = str(detail.get("zone", "Front"))
            sensor = str(detail.get("sensor", "A"))
            self._cluster.set_leak(target.cabinet_xname(), zone, sensor, True)
        elif kind is FaultKind.SWITCH_OFFLINE:
            self._cluster.set_switch_state(target, SwitchState.OFFLINE)
        elif kind is FaultKind.SWITCH_UNKNOWN:
            self._cluster.set_switch_state(target, SwitchState.UNKNOWN)
        elif kind is FaultKind.NODE_DOWN:
            self._cluster.set_node_state(target, NodeState.DOWN)
        elif kind is FaultKind.THERMAL_EXCURSION:
            if self._sensors is None:
                raise ValidationError("thermal fault requires a sensor bank")
            delta = float(detail.get("delta_c", 25.0))  # type: ignore[arg-type]
            self._sensors.set_offset(
                SensorId(target, SensorKind.TEMPERATURE_C), delta
            )
        elif kind is FaultKind.GPFS_DEGRADED:
            # Recorded as ground truth; the GPFS health model polls it.
            pass
        elif kind is FaultKind.INGESTER_CRASH:
            self._require_ring().crash_ingester(str(target))
            if self._selfheal is not None and fault.end_ns is not None:
                # A crash with a declared duration is a *bounded* outage:
                # the fault's own end is the recovery, so the self-healing
                # loop must neither restart it early nor re-home its data.
                self._selfheal.begin_bounded_crash(str(target))
                detail["bounded_selfheal"] = True
        elif kind is FaultKind.INGESTER_RESTART:
            # A bounce: the process restarts immediately, rebuilding its
            # store from the checkpoint + WAL before serving again.
            ring = self._require_ring()
            ingester = ring.ingesters.get(str(target))
            if ingester is not None and ingester.active:
                ingester.crash()
            fault.detail["replayed"] = ring.restart_ingester(str(target))
            fault.active = False  # instantaneous by construction
        elif kind is FaultKind.RECEIVER_OUTAGE:
            flaky = self._require_receiver(str(target))
            flaky.set_down(True)
            if self._journal is not None:
                # Ground truth: what the delivery plane owed this
                # receiver when the outage began.
                stats = self._journal.stats(str(target))
                detail["enqueued_at_start"] = stats["enqueued"]
                detail["delivered_at_start"] = stats["delivered"]
        elif kind is FaultKind.SLOW_CONSUMER:
            consumer = self._require_consumer(str(target))
            consumer.set_throttle(int(detail.get("max_per_pump", 10)))  # type: ignore[arg-type]
            detail["lag_at_start"] = consumer.lag()
        elif kind is FaultKind.NOISY_NEIGHBOR:
            self._begin_noisy_neighbor(fault)
        elif kind is FaultKind.OBJSTORE_OUTAGE:
            store = self._require_objstore()
            store.set_outage(True)
            if self._shipper is not None:
                # Ground truth: how many flushes had failed before the
                # outage, so chaos tests can count failures *during* it.
                detail["flush_failures_at_start"] = self._shipper.flush_failures
        elif kind is FaultKind.OBJSTORE_SLOW:
            factor = float(detail.get("factor", 10.0))  # type: ignore[arg-type]
            self._require_objstore().set_slowdown(factor)
        elif kind is FaultKind.QUERIER_CRASH:
            pool = self._require_querier_pool()
            pool.set_crashed(str(target), True)
            # Ground truth: retries before the crash, so chaos tests can
            # count the retries this fault alone caused.
            detail["retries_at_start"] = pool.retries_total
        elif kind is FaultKind.SLOW_QUERIER:
            factor = float(detail.get("factor", 10.0))  # type: ignore[arg-type]
            self._require_querier_pool().set_slow(str(target), factor)
        elif kind is FaultKind.HEARTBEAT_LOSS:
            manager = self._require_selfheal()
            manager.begin_heartbeat_loss(str(target))
            if bool(detail.get("permanent", False)):
                # The node behind the gray failure is actually gone:
                # restarts will never answer, so the supervisor stands
                # aside and the repair path takes over after detection.
                manager.mark_unrecoverable(str(target))
            # Ground truth for the chaos tests: detector state before
            # the silence began.
            detail["deaths_at_start"] = manager.memberlist.deaths_total
            detail["repairs_at_start"] = manager.repairer.members_repaired_total
        elif kind is FaultKind.ZONE_OUTAGE:
            manager = self._require_selfheal()
            detail["members_downed"] = manager.begin_zone_outage(str(target))
            detail["restarts_at_start"] = manager.supervisor.restarts_total
        elif kind is FaultKind.LOG_STORM:
            self._begin_log_storm(fault)
        elif kind is FaultKind.NOVEL_ERROR:
            self._begin_novel_error(fault)
        elif kind is FaultKind.BURN_INJECTION:
            self._begin_burn_injection(fault)
        else:  # pragma: no cover - exhaustive over enum
            raise ValidationError(f"unhandled fault kind {kind}")

    def _begin_noisy_neighbor(self, fault: Fault) -> None:
        """Start the flood: every tick, one oversized push (and optional
        wide queries) under the target tenant id.  Typed 429s from
        admission are the *expected* outcome — they are counted, never
        propagated into the clock loop."""
        warehouse = self._require_warehouse()
        tenant = str(fault.target)
        detail = fault.detail
        interval = int(detail.get("interval_ns", seconds(1)))  # type: ignore[arg-type]
        lines = int(detail.get("lines_per_tick", 5_000))  # type: ignore[arg-type]
        queries = int(detail.get("queries_per_tick", 0))  # type: ignore[arg-type]
        query = str(detail.get("query", '{app="noisy-app"}'))
        detail.setdefault("pushes_attempted", 0)
        detail.setdefault("pushes_rejected", 0)
        detail.setdefault("entries_accepted", 0)
        detail.setdefault("queries_submitted", 0)
        detail.setdefault("queries_refused", 0)
        labels = LabelSet({"app": "noisy-app", "tenant_source": tenant})

        def flood() -> None:
            now = self._clock.now_ns
            request = PushRequest(
                streams=(
                    PushStream(
                        labels=labels,
                        entries=tuple(
                            LogEntry(now + i, f"noise burst line {i}")
                            for i in range(lines)
                        ),
                    ),
                )
            )
            detail["pushes_attempted"] = int(detail["pushes_attempted"]) + 1  # type: ignore[arg-type]
            try:
                accepted = warehouse.ingest_logs(request, tenant=tenant)
                detail["entries_accepted"] = (
                    int(detail["entries_accepted"]) + accepted  # type: ignore[arg-type]
                )
            except CapacityError:
                detail["pushes_rejected"] = int(detail["pushes_rejected"]) + 1  # type: ignore[arg-type]
            if self._scheduler is not None:
                for _ in range(queries):
                    detail["queries_submitted"] = (
                        int(detail["queries_submitted"]) + 1  # type: ignore[arg-type]
                    )
                    try:
                        self._scheduler.submit(
                            tenant, query, now - seconds(3600), now, seconds(60)
                        )
                    except CapacityError:
                        detail["queries_refused"] = (
                            int(detail["queries_refused"]) + 1  # type: ignore[arg-type]
                        )

        self._flood_timers[id(fault)] = self._clock.every(interval, flood)

    def _begin_log_storm(self, fault: Fault) -> None:
        """Start an alert storm: every tick, a burst of lines that are
        all instances of ONE template, varying only in a digit-bearing
        parameter.  Per-line alerting would page once per line; pattern
        grouping must collapse the whole storm into one incident."""
        warehouse = self._require_pattern_warehouse()
        app = str(fault.target)
        detail = fault.detail
        interval = int(detail.get("interval_ns", seconds(1)))  # type: ignore[arg-type]
        lines = int(detail.get("lines_per_tick", 100))  # type: ignore[arg-type]
        detail.setdefault("lines_injected", 0)
        detail.setdefault("pushes_rejected", 0)
        labels = LabelSet({"app": app, "data_type": "app_log"})
        sector = [0]

        def flood() -> None:
            now = self._clock.now_ns
            request = PushRequest(
                streams=(
                    PushStream(
                        labels=labels,
                        entries=tuple(
                            LogEntry(
                                now + i,
                                f"{app}: I/O error on dev sda, sector "
                                f"{sector[0] + i}",
                            )
                            for i in range(lines)
                        ),
                    ),
                )
            )
            sector[0] += lines
            try:
                warehouse.ingest_logs(request)
                detail["lines_injected"] = (
                    int(detail["lines_injected"]) + lines  # type: ignore[arg-type]
                )
            except CapacityError:
                detail["pushes_rejected"] = (
                    int(detail["pushes_rejected"]) + 1  # type: ignore[arg-type]
                )

        self._flood_timers[id(fault)] = self._clock.every(interval, flood)

    def _begin_novel_error(self, fault: Fault) -> None:
        """Inject one burst of a never-before-seen error template.

        The distinguishing marker is alphabetic (digit tokens are masked
        to ``<*>`` by the miner, so a numeric marker would collapse into
        a previously-seen template).  Instantaneous: the lines land and
        the fault is over."""
        warehouse = self._require_pattern_warehouse()
        app = str(fault.target)
        detail = fault.detail
        lines = int(detail.get("lines", 20))  # type: ignore[arg-type]
        marker = str(detail.get("marker", _letters_marker(fault.start_ns)))
        now = self._clock.now_ns
        labels = LabelSet({"app": app, "data_type": "app_log"})
        request = PushRequest(
            streams=(
                PushStream(
                    labels=labels,
                    entries=tuple(
                        LogEntry(
                            now + i,
                            f"{app}: FATAL {marker} assertion failure in "
                            f"module {marker}_core, unit {i}",
                        )
                        for i in range(lines)
                    ),
                ),
            )
        )
        detail["marker"] = marker
        detail["injected_at_ns"] = now
        try:
            detail["lines_injected"] = warehouse.ingest_logs(request)
        except CapacityError:
            detail["lines_injected"] = 0
        fault.active = False  # instantaneous, like INGESTER_RESTART

    def _begin_burn_injection(self, fault: Fault) -> None:
        """Start burning a chosen SLO's error budget: every tick,
        ``events_per_tick`` synthetic SLI events of which ``error_rate``
        are bad flow into the SLO's collector.  At 1.0 the SLI is a
        total outage; at e.g. 0.002 against a 99.9% objective it is the
        slow 2x burn only the long-window ticket tiers catch."""
        manager = self._require_slo_manager()
        name = str(fault.target)
        manager.collector(name)  # fail fast on unknown SLO names
        detail = fault.detail
        interval = int(detail.get("interval_ns", seconds(1)))  # type: ignore[arg-type]
        events = int(detail.get("events_per_tick", 100))  # type: ignore[arg-type]
        rate = float(detail.get("error_rate", 1.0))  # type: ignore[arg-type]
        if not 0.0 < rate <= 1.0:
            raise ValidationError("error_rate must be in (0, 1]")
        if events < 1:
            raise ValidationError("events_per_tick must be >= 1")
        detail.setdefault("injected_good", 0)
        detail.setdefault("injected_bad", 0)
        # Deterministic rate without randomness: accumulate the exact
        # fractional quota and inject its integer part each tick.
        carry = [0.0]

        def burn() -> None:
            carry[0] += events * rate
            bad = int(carry[0])
            carry[0] -= bad
            good = events - bad
            manager.inject(name, good, bad)
            detail["injected_good"] = int(detail["injected_good"]) + good  # type: ignore[arg-type]
            detail["injected_bad"] = int(detail["injected_bad"]) + bad  # type: ignore[arg-type]

        self._flood_timers[id(fault)] = self._clock.every(interval, burn)

    def _require_ring(self) -> "RingLokiCluster":
        if self._ring is None:
            raise ValidationError("ingester fault requires an ingest ring")
        return self._ring

    def _require_receiver(self, name: str) -> "FlakyReceiver":
        try:
            return self._receivers[name]
        except KeyError:
            raise ValidationError(
                f"receiver-outage fault needs an attached flaky receiver "
                f"named {name!r} (enable reliable delivery)"
            ) from None

    def _require_consumer(self, name: str) -> "_BaseConsumer":
        try:
            return self._consumers[name]
        except KeyError:
            raise ValidationError(
                f"slow-consumer fault needs an attached consumer named "
                f"{name!r} (enable reliable delivery)"
            ) from None

    def _require_warehouse(self) -> "OmniWarehouse":
        if self._warehouse is None:
            raise ValidationError(
                "noisy-neighbor fault requires an attached warehouse "
                "(enable multi-tenancy)"
            )
        return self._warehouse

    def _require_pattern_warehouse(self) -> "OmniWarehouse":
        if self._pattern_warehouse is None:
            raise ValidationError(
                "log-storm/novel-error faults require an attached "
                "warehouse (attach_patterns)"
            )
        return self._pattern_warehouse

    def _require_objstore(self) -> "ObjectStore":
        if self._objstore is None:
            raise ValidationError(
                "objstore fault requires an attached object store "
                "(enable object storage)"
            )
        return self._objstore

    def _require_querier_pool(self) -> "QuerierPool":
        if self._querier_pool is None:
            raise ValidationError(
                "querier fault requires an attached querier pool "
                "(enable the query engine)"
            )
        return self._querier_pool

    def _require_selfheal(self) -> "SelfHealManager":
        if self._selfheal is None:
            raise ValidationError(
                "self-healing fault requires an attached manager "
                "(enable self-healing)"
            )
        return self._selfheal

    def _require_slo_manager(self) -> "SloManager":
        if self._slo_manager is None:
            raise ValidationError(
                "burn-injection fault requires an attached SLO manager "
                "(enable the SLO plane)"
            )
        return self._slo_manager

    def _end(self, fault: Fault) -> None:
        if not fault.active:
            return
        fault.active = False
        kind, target, detail = fault.kind, fault.target, fault.detail
        if kind is FaultKind.CABINET_LEAK:
            zone = str(detail.get("zone", "Front"))
            sensor = str(detail.get("sensor", "A"))
            self._cluster.set_leak(target.cabinet_xname(), zone, sensor, False)
        elif kind in (FaultKind.SWITCH_OFFLINE, FaultKind.SWITCH_UNKNOWN):
            self._cluster.set_switch_state(target, SwitchState.ONLINE)
        elif kind is FaultKind.NODE_DOWN:
            self._cluster.set_node_state(target, NodeState.UP)
        elif kind is FaultKind.THERMAL_EXCURSION:
            if self._sensors is not None:
                self._sensors.set_offset(
                    SensorId(target, SensorKind.TEMPERATURE_C), 0.0
                )
        elif kind is FaultKind.INGESTER_CRASH:
            # Fault end = the operator restarts the process; WAL replay
            # recovers every acknowledged entry the replica held.
            if self._selfheal is not None and detail.get("bounded_selfheal"):
                fault.detail["replayed"] = self._selfheal.end_bounded_crash(
                    str(target)
                )
            else:
                fault.detail["replayed"] = self._require_ring().restart_ingester(
                    str(target)
                )
        elif kind is FaultKind.RECEIVER_OUTAGE:
            flaky = self._require_receiver(str(target))
            flaky.set_down(False)
            if self._journal is not None:
                stats = self._journal.stats(str(target))
                start = int(detail.get("enqueued_at_start", 0))  # type: ignore[arg-type]
                detail["enqueued_at_end"] = stats["enqueued"]
                # Every notification enqueued during the outage (plus any
                # already pending) must eventually deliver — the zero-loss
                # contract acceptance tests assert without re-deriving.
                detail["expected_deliveries"] = stats["enqueued"]
                detail["enqueued_during_outage"] = stats["enqueued"] - start
        elif kind is FaultKind.SLOW_CONSUMER:
            consumer = self._require_consumer(str(target))
            consumer.set_throttle(None)
            detail["lag_at_end"] = consumer.lag()
        elif kind is FaultKind.NOISY_NEIGHBOR:
            timer = self._flood_timers.pop(id(fault), None)
            if timer is not None:
                timer.cancel()
        elif kind is FaultKind.OBJSTORE_OUTAGE:
            self._require_objstore().set_outage(False)
            if self._shipper is not None:
                start = int(detail.get("flush_failures_at_start", 0))  # type: ignore[arg-type]
                detail["flush_failures_at_end"] = self._shipper.flush_failures
                detail["flush_failures_during"] = (
                    self._shipper.flush_failures - start
                )
        elif kind is FaultKind.OBJSTORE_SLOW:
            self._require_objstore().set_slowdown(1.0)
        elif kind is FaultKind.QUERIER_CRASH:
            pool = self._require_querier_pool()
            pool.set_crashed(str(target), False)
            start = int(detail.get("retries_at_start", 0))  # type: ignore[arg-type]
            detail["retries_at_end"] = pool.retries_total
            detail["retries_during"] = pool.retries_total - start
        elif kind is FaultKind.SLOW_QUERIER:
            self._require_querier_pool().set_slow(str(target), 1.0)
        elif kind is FaultKind.HEARTBEAT_LOSS:
            manager = self._require_selfheal()
            manager.end_heartbeat_loss(str(target))
            detail["deaths_at_end"] = manager.memberlist.deaths_total
            detail["repairs_at_end"] = manager.repairer.members_repaired_total
        elif kind is FaultKind.ZONE_OUTAGE:
            manager = self._require_selfheal()
            manager.end_zone_outage(str(target))
            detail["restarts_at_end"] = manager.supervisor.restarts_total
        elif kind is FaultKind.LOG_STORM:
            timer = self._flood_timers.pop(id(fault), None)
            if timer is not None:
                timer.cancel()
        elif kind is FaultKind.BURN_INJECTION:
            timer = self._flood_timers.pop(id(fault), None)
            if timer is not None:
                timer.cancel()
            manager = self._require_slo_manager()
            detail["budget_remaining_at_end"] = manager.budget(
                str(target)
            ).remaining_ratio()

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def active_faults(self) -> list[Fault]:
        return [f for f in self.faults if f.active]

    def faults_of_kind(self, kind: FaultKind) -> list[Fault]:
        return [f for f in self.faults if f.kind is kind]

    def delivery_ground_truth(self) -> list[dict[str, object]]:
        """Expected notification outcomes per delivery-plane fault.

        Chaos acceptance tests assert against these counts instead of
        re-deriving expectations from the scenario: for every ended
        ``RECEIVER_OUTAGE``, all notifications ever enqueued to the
        receiver (``expected_deliveries``) must eventually be delivered —
        zero loss.
        """
        out: list[dict[str, object]] = []
        for f in self.faults:
            if f.kind not in _DELIVERY_KINDS:
                continue
            out.append(
                {
                    "kind": f.kind.value,
                    "target": str(f.target),
                    "start_ns": f.start_ns,
                    "end_ns": f.end_ns,
                    **f.detail,
                }
            )
        return out

    def is_degraded(self, kind: FaultKind, target: XName | str) -> bool:
        """Whether an active fault of ``kind`` covers ``target``."""
        out = False
        for f in self.faults:
            if not (f.active and f.kind is kind):
                continue
            if isinstance(f.target, str) or isinstance(target, str):
                out = out or str(f.target) == str(target)
            else:
                out = out or f.target.contains(target)
        return out
