"""Facility/environment model: the building around the machine.

Paper §III.C: OMNI's operational data includes "time series data from
the environment (e.g., temperature, power, humidity levels, and particle
levels)".  This module models the facility plant that produces those
series: cooling distribution units (CDUs) serving cabinet groups, power
distribution units (PDUs), and room-level environment sensors including
particle counters.

Everything is seeded and fault-injectable (a CDU pump degradation warms
every cabinet it serves — the cross-layer correlation OMNI exists to
surface).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import NotFoundError, ValidationError


@dataclass
class Cdu:
    """One cooling distribution unit serving a set of cabinets."""

    name: str
    cabinets: list[str]
    pump_healthy: bool = True
    #: 0..1, scales cooling capacity when degraded
    capacity_factor: float = 1.0


@dataclass
class Pdu:
    """One power distribution unit."""

    name: str
    capacity_kw: float = 400.0
    breaker_open: bool = False


@dataclass(frozen=True)
class FacilitySample:
    """One snapshot of every facility series."""

    timestamp_ns: int
    room_temp_c: float
    room_humidity_pct: float
    particle_count_m3: float
    cdu_supply_temp_c: dict[str, float] = field(default_factory=dict)
    cdu_flow_lpm: dict[str, float] = field(default_factory=dict)
    pdu_load_kw: dict[str, float] = field(default_factory=dict)

    def flat_metrics(self) -> list[tuple[str, dict[str, str], float]]:
        """``(metric_name, labels, value)`` triples for warehouse ingest."""
        out: list[tuple[str, dict[str, str], float]] = [
            ("facility_room_temp_celsius", {}, self.room_temp_c),
            ("facility_room_humidity_percent", {}, self.room_humidity_pct),
            ("facility_particle_count_m3", {}, self.particle_count_m3),
        ]
        for name, value in self.cdu_supply_temp_c.items():
            out.append(("facility_cdu_supply_temp_celsius", {"cdu": name}, value))
        for name, value in self.cdu_flow_lpm.items():
            out.append(("facility_cdu_flow_lpm", {"cdu": name}, value))
        for name, value in self.pdu_load_kw.items():
            out.append(("facility_pdu_load_kw", {"pdu": name}, value))
        return out


class FacilityModel:
    """Seeded facility dynamics with fault injection."""

    def __init__(
        self,
        cabinet_names: list[str],
        cabinets_per_cdu: int = 2,
        pdus: int = 2,
        seed: int = 0,
    ) -> None:
        if not cabinet_names:
            raise ValidationError("facility needs cabinets to serve")
        if cabinets_per_cdu < 1:
            raise ValidationError("cabinets per CDU must be >= 1")
        if pdus < 1:
            raise ValidationError("need at least one PDU")
        self._rng = np.random.default_rng(seed)
        self.cdus: dict[str, Cdu] = {}
        for i in range(0, len(cabinet_names), cabinets_per_cdu):
            name = f"cdu-{i // cabinets_per_cdu}"
            self.cdus[name] = Cdu(name, cabinet_names[i : i + cabinets_per_cdu])
        self.pdus: dict[str, Pdu] = {
            f"pdu-{i}": Pdu(f"pdu-{i}") for i in range(pdus)
        }
        self._room_temp = 22.0
        self._humidity = 45.0
        self._particles = 2500.0

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def degrade_cdu(self, name: str, capacity_factor: float = 0.4) -> None:
        cdu = self._cdu(name)
        if not 0.0 <= capacity_factor <= 1.0:
            raise ValidationError("capacity factor must be in [0, 1]")
        cdu.pump_healthy = False
        cdu.capacity_factor = capacity_factor

    def repair_cdu(self, name: str) -> None:
        cdu = self._cdu(name)
        cdu.pump_healthy = True
        cdu.capacity_factor = 1.0

    def trip_pdu_breaker(self, name: str, open_: bool = True) -> None:
        self._pdu(name).breaker_open = open_

    def cdu_for_cabinet(self, cabinet: str) -> Cdu:
        for cdu in self.cdus.values():
            if cabinet in cdu.cabinets:
                return cdu
        raise NotFoundError(f"no CDU serves cabinet {cabinet}")

    def _cdu(self, name: str) -> Cdu:
        try:
            return self.cdus[name]
        except KeyError:
            raise NotFoundError(f"no such CDU: {name}") from None

    def _pdu(self, name: str) -> Pdu:
        try:
            return self.pdus[name]
        except KeyError:
            raise NotFoundError(f"no such PDU: {name}") from None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, timestamp_ns: int) -> FacilitySample:
        """Advance the facility one tick and snapshot every series."""
        rng = self._rng
        self._room_temp += 0.1 * (22.0 - self._room_temp) + 0.2 * rng.standard_normal()
        self._humidity += 0.05 * (45.0 - self._humidity) + 0.4 * rng.standard_normal()
        self._particles = max(
            0.0,
            self._particles
            + 0.1 * (2500.0 - self._particles)
            + 120.0 * rng.standard_normal(),
        )
        cdu_temp = {}
        cdu_flow = {}
        for name, cdu in self.cdus.items():
            # Degraded pumps: supply water warms and flow drops.
            base_temp = 18.0 + (1.0 - cdu.capacity_factor) * 14.0
            base_flow = 400.0 * cdu.capacity_factor
            cdu_temp[name] = base_temp + 0.5 * rng.standard_normal()
            cdu_flow[name] = max(0.0, base_flow + 8.0 * rng.standard_normal())
        pdu_load = {}
        for name, pdu in self.pdus.items():
            if pdu.breaker_open:
                pdu_load[name] = 0.0
            else:
                pdu_load[name] = max(
                    0.0, 0.65 * pdu.capacity_kw + 15.0 * rng.standard_normal()
                )
        return FacilitySample(
            timestamp_ns=timestamp_ns,
            room_temp_c=self._room_temp,
            room_humidity_pct=self._humidity,
            particle_count_m3=self._particles,
            cdu_supply_temp_c=cdu_temp,
            cdu_flow_lpm=cdu_flow,
            pdu_load_kw=pdu_load,
        )

    def cabinet_heat_offset_c(self, cabinet: str) -> float:
        """Extra heat a cabinet sees from its (possibly degraded) CDU."""
        cdu = self.cdu_for_cabinet(cabinet)
        return (1.0 - cdu.capacity_factor) * 20.0
