"""Recording rules: precomputed PromQL persisted back into the TSDB.

Prometheus and vmalert both support *recording rules* alongside alerting
rules: an expression evaluated on a fixed interval whose result is
written back into storage under a new metric name.  Dashboards and
alerts then read the precomputed series instead of re-deriving an
expensive ratio on every refresh — which is exactly what the SLO plane
needs, where four burn-rate windows per SLO would otherwise be computed
by the dashboard, by `logcli slo`, *and* by every alerting-rule
evaluation.

The engine evaluates rules in registration order within one cycle and
ingests each rule's output at the evaluation timestamp before moving to
the next rule, so a rule may read the output of an earlier rule in the
*same* cycle (Prometheus "rule group" chaining).  A rule registered
before its input's producer still works — it just reads the previous
cycle's value through the staleness lookback.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.labels import METRIC_NAME_LABEL
from repro.common.simclock import SimClock, Timer
from repro.tempo.tracer import Tracer
from repro.tsdb.promql import PromQLEngine, parse_promql
from repro.tsdb.storage import TimeSeriesStore

#: Metric names must be exposition-safe: the LogQL lexer (shared with
#: PromQL) has no colon token, so unlike Prometheus the conventional
#: ``job:metric:rate5m`` colons are not allowed — use underscores.
_RECORD_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


@dataclass(frozen=True)
class RecordingRule:
    """One recording rule: ``record: <name>  expr: <promql>``."""

    record: str
    expr: str
    labels: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _RECORD_NAME_RE.match(self.record):
            raise ValidationError(
                f"recording rule output name {self.record!r} is not a "
                "valid metric name (colons are not supported)"
            )
        parse_promql(self.expr)  # fail fast on bad expressions
        if METRIC_NAME_LABEL in self.labels:
            raise ValidationError(
                "recording rule labels may not override __name__; "
                "use `record` for the output name"
            )


class RecordingEngine:
    """Evaluates recording rules on the sim clock and persists results.

    Each evaluation queries the rule's expression as a PromQL instant
    query at "now", relabels the result vector under the rule's record
    name (merging any static rule labels), and ingests the samples back
    into the store at the evaluation timestamp.
    """

    def __init__(
        self,
        engine: PromQLEngine,
        store: TimeSeriesStore,
        clock: SimClock,
        tracer: Tracer | None = None,
    ) -> None:
        self._engine = engine
        self._store = store
        self._clock = clock
        self._tracer = tracer
        self._rules: list[RecordingRule] = []
        self._names: set[str] = set()
        self.evaluations = 0
        self.samples_recorded = 0
        self.eval_errors = 0

    def add_rule(self, rule: RecordingRule) -> None:
        """Register ``rule``; duplicate record/expr pairs are rejected."""
        key = (rule.record, rule.expr)
        if any((r.record, r.expr) == key for r in self._rules):
            raise ValidationError(
                f"recording rule {rule.record!r} with this expression "
                "is already registered"
            )
        self._rules.append(rule)
        self._names.add(rule.record)

    def rules(self) -> tuple[RecordingRule, ...]:
        return tuple(self._rules)

    def records(self, name: str) -> bool:
        """Whether any registered rule outputs ``name``."""
        return name in self._names

    def evaluate_all(self) -> int:
        """Run every rule once at the current sim time.

        Returns the number of samples recorded this cycle.  A rule whose
        query fails at runtime (e.g. a many-to-one join collision) is
        counted in ``eval_errors`` and skipped; one bad rule must not
        starve the rest of the group.
        """
        now = self._clock.now_ns
        recorded = 0
        for rule in self._rules:
            try:
                samples = self._engine.query_instant(rule.expr, now)
            except Exception:
                self.eval_errors += 1
                continue
            for sample in samples:
                labels = sample.labels.without(METRIC_NAME_LABEL)
                if rule.labels:
                    labels = labels.with_labels(**rule.labels)
                if self._store.ingest(rule.record, labels, sample.value, now):
                    recorded += 1
        self.evaluations += 1
        self.samples_recorded += recorded
        if self._tracer is not None:
            self._tracer.record(
                "recording",
                "evaluate_rules",
                None,
                now,
                now,
                attributes={
                    "rules": str(len(self._rules)),
                    "samples": str(recorded),
                },
            )
        return recorded

    def run_periodic(self, interval_ns: int) -> Timer:
        """Evaluate the rule group every ``interval_ns`` on the clock."""
        return self._clock.every(interval_ns, self.evaluate_all)
