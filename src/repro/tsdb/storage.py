"""Column-oriented time-series storage.

Each series (metric name + labels) owns two NumPy columns — ``int64``
timestamps and ``float64`` values — grown by amortised doubling.  Range
reads are ``searchsorted`` slices; the per-sample Python cost is one
append.  (HPC guide: vectorise the hot path, use views not copies.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.common.errors import ValidationError
from repro.common.labels import (
    METRIC_NAME_LABEL,
    LabelSet,
    Matcher,
    MatchOp,
)


@dataclass(frozen=True)
class MetricSample:
    """One ingested sample."""

    name: str
    labels: LabelSet
    value: float
    timestamp_ns: int


class _Column:
    """Amortised-doubling (timestamp, value) column pair."""

    __slots__ = ("_ts", "_val", "_len")

    def __init__(self) -> None:
        self._ts = np.empty(16, dtype=np.int64)
        self._val = np.empty(16, dtype=np.float64)
        self._len = 0

    def append(self, ts: int, value: float) -> None:
        if self._len == len(self._ts):
            self._ts = np.concatenate([self._ts, np.empty_like(self._ts)])
            self._val = np.concatenate([self._val, np.empty_like(self._val)])
        self._ts[self._len] = ts
        self._val[self._len] = value
        self._len += 1

    @property
    def timestamps(self) -> np.ndarray:
        return self._ts[: self._len]

    @property
    def values(self) -> np.ndarray:
        return self._val[: self._len]

    def window(self, start_ns: int, end_ns: int) -> tuple[np.ndarray, np.ndarray]:
        """Views over samples with ``start <= ts < end`` (requires the
        append order to be time-ordered, which ingest enforces)."""
        ts = self.timestamps
        lo = int(np.searchsorted(ts, start_ns, side="left"))
        hi = int(np.searchsorted(ts, end_ns, side="left"))
        return ts[lo:hi], self.values[lo:hi]

    def __len__(self) -> int:
        return self._len


class TimeSeriesStore:
    """The metric store: ingest + label-indexed selection."""

    def __init__(self) -> None:
        self._series: dict[LabelSet, _Column] = {}
        self._postings: dict[tuple[str, str], set[LabelSet]] = {}
        self.samples_ingested = 0
        self.samples_rejected = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        name: str,
        labels: Mapping[str, str] | LabelSet,
        value: float,
        timestamp_ns: int,
    ) -> bool:
        """Ingest one sample; returns False if rejected (out of order)."""
        if not name:
            raise ValidationError("metric name cannot be empty")
        base = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        full = base.with_labels(**{METRIC_NAME_LABEL: name})
        column = self._series.get(full)
        if column is None:
            column = _Column()
            self._series[full] = column
            for pair in full.items_tuple():
                self._postings.setdefault(pair, set()).add(full)
        ts = column.timestamps
        if len(ts) and timestamp_ns < int(ts[-1]):
            self.samples_rejected += 1
            return False
        column.append(timestamp_ns, value)
        self.samples_ingested += 1
        return True

    def ingest_sample(self, sample: MetricSample) -> bool:
        return self.ingest(
            sample.name, sample.labels, sample.value, sample.timestamp_ns
        )

    def ingest_many(self, samples: Iterable[MetricSample]) -> int:
        return sum(1 for s in samples if self.ingest_sample(s))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, np.ndarray, np.ndarray]]:
        """Matching series with their (timestamps, values) in the window."""
        if end_ns <= start_ns:
            raise ValidationError("empty time range")
        out = []
        for labels in self._select_series(matchers):
            ts, vals = self._series[labels].window(start_ns, end_ns)
            if len(ts):
                out.append((labels, ts, vals))
        out.sort(key=lambda item: item[0].items_tuple())
        return out

    def _select_series(self, matchers: Iterable[Matcher]) -> list[LabelSet]:
        matchers = list(matchers)
        # `{foo=""}` matches series *without* the label (Prometheus
        # semantics) and so cannot use the posting lists.
        eq = [m for m in matchers if m.op is MatchOp.EQ and m.value != ""]
        rest = [m for m in matchers if m.op is not MatchOp.EQ or m.value == ""]
        if eq:
            sets = []
            for m in eq:
                postings = self._postings.get((m.name, m.value))
                if not postings:
                    return []
                sets.append(postings)
            candidates = set.intersection(*sets)
        else:
            candidates = set(self._series)
        if rest:
            candidates = {
                s for s in candidates if all(m.matches(s) for m in rest)
            }
        return sorted(candidates, key=lambda s: s.items_tuple())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def series_count(self) -> int:
        return len(self._series)

    def sample_count(self) -> int:
        return sum(len(c) for c in self._series.values())

    def metric_names(self) -> list[str]:
        return sorted(
            {v for (n, v) in self._postings if n == METRIC_NAME_LABEL}
        )

    def retained_bytes(self) -> int:
        """Resident column bytes (16 per sample: int64 ts + float64 value)."""
        return 16 * self.sample_count()

    def delete_before(self, cutoff_ns: int) -> int:
        """Retention: drop samples older than ``cutoff_ns``.

        Columns are rebuilt (cheap — one slice copy per series); empty
        series are unregistered. Returns samples dropped.
        """
        dropped = 0
        for labels in list(self._series):
            column = self._series[labels]
            ts = column.timestamps
            keep_from = int(np.searchsorted(ts, cutoff_ns, side="left"))
            if keep_from == 0:
                continue
            dropped += keep_from
            if keep_from == len(ts):
                del self._series[labels]
                for pair in labels.items_tuple():
                    postings = self._postings.get(pair)
                    if postings:
                        postings.discard(labels)
                        if not postings:
                            del self._postings[pair]
            else:
                fresh = _Column()
                for t, v in zip(
                    ts[keep_from:].tolist(), column.values[keep_from:].tolist()
                ):
                    fresh.append(t, v)
                self._series[labels] = fresh
        return dropped
