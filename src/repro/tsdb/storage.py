"""Column-oriented time-series storage.

Each series (metric name + labels) owns two NumPy columns — ``int64``
timestamps and ``float64`` values — grown by amortised doubling.  Range
reads are ``searchsorted`` slices; the per-sample Python cost is one
append.  (HPC guide: vectorise the hot path, use views not copies.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.common.errors import ValidationError
from repro.common.labels import (
    METRIC_NAME_LABEL,
    LabelSet,
    Matcher,
    MatchOp,
)

#: Exemplars kept per series — enough for "why is this spiking" clicks
#: without unbounded growth (Prometheus keeps a similar small ring).
EXEMPLARS_PER_SERIES = 10


@dataclass(frozen=True)
class MetricSample:
    """One ingested sample."""

    name: str
    labels: LabelSet
    value: float
    timestamp_ns: int


@dataclass(frozen=True)
class Exemplar:
    """A trace reference attached to a sample (OpenMetrics exemplars).

    Grafana uses these to jump from a metric chart straight to the trace
    that produced the outlying value.
    """

    trace_id: str
    value: float
    timestamp_ns: int


class _Column:
    """Amortised-doubling (timestamp, value) column pair."""

    __slots__ = ("_ts", "_val", "_len")

    def __init__(self) -> None:
        self._ts = np.empty(16, dtype=np.int64)
        self._val = np.empty(16, dtype=np.float64)
        self._len = 0

    def append(self, ts: int, value: float) -> None:
        if self._len == len(self._ts):
            self._ts = np.concatenate([self._ts, np.empty_like(self._ts)])
            self._val = np.concatenate([self._val, np.empty_like(self._val)])
        self._ts[self._len] = ts
        self._val[self._len] = value
        self._len += 1

    @property
    def timestamps(self) -> np.ndarray:
        return self._ts[: self._len]

    @property
    def values(self) -> np.ndarray:
        return self._val[: self._len]

    def window(self, start_ns: int, end_ns: int) -> tuple[np.ndarray, np.ndarray]:
        """Views over samples with ``start <= ts < end`` (requires the
        append order to be time-ordered, which ingest enforces)."""
        ts = self.timestamps
        lo = int(np.searchsorted(ts, start_ns, side="left"))
        hi = int(np.searchsorted(ts, end_ns, side="left"))
        return ts[lo:hi], self.values[lo:hi]

    def __len__(self) -> int:
        return self._len


class TimeSeriesStore:
    """The metric store: ingest + label-indexed selection."""

    def __init__(self) -> None:
        self._series: dict[LabelSet, _Column] = {}
        self._postings: dict[tuple[str, str], set[LabelSet]] = {}
        self._exemplars: dict[LabelSet, deque[Exemplar]] = {}
        self.samples_ingested = 0
        self.samples_rejected = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        name: str,
        labels: Mapping[str, str] | LabelSet,
        value: float,
        timestamp_ns: int,
        exemplar: Exemplar | None = None,
    ) -> bool:
        """Ingest one sample; returns False if rejected (out of order)."""
        if not name:
            raise ValidationError("metric name cannot be empty")
        base = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        full = base.with_labels(**{METRIC_NAME_LABEL: name})
        column = self._series.get(full)
        if column is None:
            column = _Column()
            self._series[full] = column
            for pair in full.items_tuple():
                self._postings.setdefault(pair, set()).add(full)
        ts = column.timestamps
        if len(ts) and timestamp_ns < int(ts[-1]):
            self.samples_rejected += 1
            return False
        column.append(timestamp_ns, value)
        if exemplar is not None:
            ring = self._exemplars.get(full)
            if ring is None:
                ring = self._exemplars[full] = deque(maxlen=EXEMPLARS_PER_SERIES)
            ring.append(exemplar)
        self.samples_ingested += 1
        return True

    def ingest_sample(self, sample: MetricSample) -> bool:
        return self.ingest(
            sample.name, sample.labels, sample.value, sample.timestamp_ns
        )

    def ingest_many(self, samples: Iterable[MetricSample]) -> int:
        return sum(1 for s in samples if self.ingest_sample(s))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, np.ndarray, np.ndarray]]:
        """Matching series with their (timestamps, values) in the window."""
        if end_ns <= start_ns:
            raise ValidationError("empty time range")
        out = []
        for labels in self._select_series(matchers):
            ts, vals = self._series[labels].window(start_ns, end_ns)
            if len(ts):
                out.append((labels, ts, vals))
        out.sort(key=lambda item: item[0].items_tuple())
        return out

    def _select_series(self, matchers: Iterable[Matcher]) -> list[LabelSet]:
        matchers = list(matchers)
        # `{foo=""}` matches series *without* the label (Prometheus
        # semantics) and so cannot use the posting lists.
        eq = [m for m in matchers if m.op is MatchOp.EQ and m.value != ""]
        rest = [m for m in matchers if m.op is not MatchOp.EQ or m.value == ""]
        if eq:
            sets = []
            for m in eq:
                postings = self._postings.get((m.name, m.value))
                if not postings:
                    return []
                sets.append(postings)
            candidates = set.intersection(*sets)
        else:
            candidates = set(self._series)
        if rest:
            candidates = {
                s for s in candidates if all(m.matches(s) for m in rest)
            }
        return sorted(candidates, key=lambda s: s.items_tuple())

    def exemplars(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[Exemplar]]]:
        """Exemplars of matching series with ``start <= ts < end``."""
        if end_ns <= start_ns:
            raise ValidationError("empty time range")
        out: list[tuple[LabelSet, list[Exemplar]]] = []
        for labels in self._select_series(matchers):
            ring = self._exemplars.get(labels)
            if not ring:
                continue
            hits = [e for e in ring if start_ns <= e.timestamp_ns < end_ns]
            if hits:
                out.append((labels, hits))
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def series_count(self) -> int:
        return len(self._series)

    def sample_count(self) -> int:
        return sum(len(c) for c in self._series.values())

    def metric_names(self) -> list[str]:
        return sorted(
            {v for (n, v) in self._postings if n == METRIC_NAME_LABEL}
        )

    def retained_bytes(self) -> int:
        """Resident column bytes (16 per sample: int64 ts + float64 value)."""
        return 16 * self.sample_count()

    def delete_before(self, cutoff_ns: int) -> int:
        """Retention: drop samples older than ``cutoff_ns``.

        Columns are rebuilt (cheap — one slice copy per series); empty
        series are unregistered. Returns samples dropped.
        """
        dropped = 0
        for labels in list(self._series):
            column = self._series[labels]
            ts = column.timestamps
            keep_from = int(np.searchsorted(ts, cutoff_ns, side="left"))
            if keep_from == 0:
                continue
            dropped += keep_from
            ring = self._exemplars.get(labels)
            if ring is not None:
                kept = [e for e in ring if e.timestamp_ns >= cutoff_ns]
                if kept:
                    ring.clear()
                    ring.extend(kept)
                else:
                    del self._exemplars[labels]
            if keep_from == len(ts):
                del self._series[labels]
                self._exemplars.pop(labels, None)
                for pair in labels.items_tuple():
                    postings = self._postings.get(pair)
                    if postings:
                        postings.discard(labels)
                        if not postings:
                            del self._postings[pair]
            else:
                fresh = _Column()
                for t, v in zip(
                    ts[keep_from:].tolist(), column.values[keep_from:].tolist()
                ):
                    fresh.append(t, v)
                self._series[labels] = fresh
        return dropped
