"""PromQL/MetricsQL subset for the TSDB.

vmalert and Grafana query VictoriaMetrics with PromQL; this module
implements the subset the monitoring rules need:

* instant selectors — ``node_temp_celsius{cluster="perlmutter"}`` with
  the standard 5-minute staleness lookback;
* range functions — ``rate``, ``increase``, ``delta``, ``avg_over_time``,
  ``min_over_time``, ``max_over_time``, ``sum_over_time``,
  ``count_over_time``, ``last_over_time`` over ``[5m]`` windows;
* vector aggregation — ``sum/min/max/avg/count`` with ``by``/``without``;
* vector↔scalar comparisons (filtering) and arithmetic;
* vector↔vector arithmetic and comparisons with one-to-one matching on
  the full label set (ignoring ``__name__``), as SLO burn-rate ratios
  need (``good_rate / total_rate``);
* the logical set operators ``and``, ``or`` and ``unless`` at the
  lowest precedence, so multi-window burn alerts can require both
  windows at once (``burn_5m > 14.4 and burn_1h > 14.4``).

The lexer is shared with LogQL (the grammars overlap exactly where we
need them to).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Protocol, Union

import numpy as np

from repro.common.durations import parse_duration_ns
from repro.common.errors import QueryError
from repro.common.labels import METRIC_NAME_LABEL, LabelSet, Matcher, MatchOp
from repro.common.simclock import NANOS_PER_SECOND, minutes
from repro.common.vector import Sample, Series
from repro.loki.logql.ast import ArithOp, CmpOp, GroupMode, Scalar, VectorOp
from repro.loki.logql.lexer import Tok, Token, tokenize

#: Prometheus staleness lookback for instant selectors.
DEFAULT_LOOKBACK_NS = minutes(5)


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class VectorSelector:
    matchers: tuple[Matcher, ...]

    def __post_init__(self) -> None:
        if not self.matchers:
            raise QueryError("selector needs at least one matcher")


class PromRangeFunc(enum.Enum):
    RATE = "rate"
    INCREASE = "increase"
    DELTA = "delta"
    AVG_OVER_TIME = "avg_over_time"
    MIN_OVER_TIME = "min_over_time"
    MAX_OVER_TIME = "max_over_time"
    SUM_OVER_TIME = "sum_over_time"
    COUNT_OVER_TIME = "count_over_time"
    LAST_OVER_TIME = "last_over_time"


@dataclass(frozen=True)
class PromRangeAgg:
    func: PromRangeFunc
    selector: VectorSelector
    range_ns: int

    def __post_init__(self) -> None:
        if self.range_ns <= 0:
            raise QueryError("range window must be positive")


@dataclass(frozen=True)
class PromVectorAgg:
    op: VectorOp
    expr: "PromExpr"
    mode: GroupMode = GroupMode.NONE
    labels: tuple[str, ...] = ()


@dataclass(frozen=True)
class PromAbsent:
    """``absent(node_up{job="node"})`` — 1 when the selector returns
    nothing.  The alerting primitive for *silent* failures: a sampler
    that stops reporting never trips a threshold rule, but it does trip
    ``absent(...)``."""

    selector: VectorSelector


@dataclass(frozen=True)
class PromTopK:
    """``topk(3, node_temp_celsius)`` / ``bottomk`` — k extreme series."""

    k: int
    expr: "PromExpr"
    bottom: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError("topk/bottomk need k >= 1")


@dataclass(frozen=True)
class PromBinOp:
    """Arithmetic or comparison between vector/scalar operands.

    One scalar side follows the classic vector↔scalar semantics; two
    vector sides join one-to-one on the full label set minus
    ``__name__`` (unmatched series drop out, duplicates are an error).
    Scalar-only arithmetic is rejected — a bare number is not a vector.
    """

    op: CmpOp | ArithOp
    lhs: "PromExpr | Scalar"
    rhs: "PromExpr | Scalar"

    def __post_init__(self) -> None:
        scalar_sides = isinstance(self.lhs, Scalar) + isinstance(self.rhs, Scalar)
        if scalar_sides == 2:
            raise QueryError("binary op needs at least one vector operand")


class SetOp(enum.Enum):
    AND = "and"
    OR = "or"
    UNLESS = "unless"


@dataclass(frozen=True)
class PromSetOp:
    """``and`` / ``or`` / ``unless`` between two instant vectors,
    matching on the full label set minus ``__name__``."""

    op: SetOp
    lhs: "PromExpr"
    rhs: "PromExpr"

    def __post_init__(self) -> None:
        if isinstance(self.lhs, Scalar) or isinstance(self.rhs, Scalar):
            raise QueryError(f"{self.op.value} requires vector operands")


PromExpr = Union[
    VectorSelector,
    PromRangeAgg,
    PromVectorAgg,
    PromBinOp,
    PromSetOp,
    PromTopK,
    PromAbsent,
]

_RANGE_FUNCS = {f.value: f for f in PromRangeFunc}
_VECTOR_OPS = {o.value: o for o in VectorOp}
_CMP_TOKENS = {
    Tok.GT: CmpOp.GT,
    Tok.GTE: CmpOp.GTE,
    Tok.LT: CmpOp.LT,
    Tok.LTE: CmpOp.LTE,
    Tok.EQL: CmpOp.EQ,
    Tok.NEQ: CmpOp.NEQ,
}
_ARITH_TOKENS = {
    Tok.ADD: ArithOp.ADD,
    Tok.SUB: ArithOp.SUB,
    Tok.MUL: ArithOp.MUL,
    Tok.DIV: ArithOp.DIV,
}
_MATCH_TOKENS = {
    Tok.EQ: MatchOp.EQ,
    Tok.NEQ: MatchOp.NEQ,
    Tok.RE: MatchOp.RE,
    Tok.NRE: MatchOp.NRE,
}
# Set operators lex as plain identifiers (the lexer is LogQL's).
_SET_WORDS = {o.value: o for o in SetOp}


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not Tok.EOF:
            self._pos += 1
        return tok

    def expect(self, kind: Tok) -> Token:
        tok = self.next()
        if tok.kind is not kind:
            raise QueryError(
                f"expected {kind.value!r} but found {tok.text or 'EOF'!r} "
                f"at position {tok.pos}"
            )
        return tok

    def at(self, kind: Tok) -> bool:
        return self.peek().kind is kind

    def parse(self) -> PromExpr:
        expr = self._expr()
        tok = self.peek()
        if tok.kind is not Tok.EOF:
            raise QueryError(f"trailing input at position {tok.pos}: {tok.text!r}")
        return expr

    def _expr(self) -> PromExpr:
        # Set operators bind loosest, as in Prometheus: each side of an
        # ``and``/``or``/``unless`` is a full comparison/arithmetic chain.
        lhs = self._binop_expr()
        while self.at(Tok.IDENT) and self.peek().text in _SET_WORDS:
            op = _SET_WORDS[self.next().text]
            lhs = PromSetOp(op, lhs, self._binop_expr())
        return lhs

    def _binop_expr(self) -> PromExpr:
        lhs = self._atom()
        while True:
            tok = self.peek()
            if tok.kind in _CMP_TOKENS:
                self.next()
                lhs = PromBinOp(_CMP_TOKENS[tok.kind], lhs, self._scalar_or_atom())
            elif tok.kind in _ARITH_TOKENS:
                self.next()
                lhs = PromBinOp(_ARITH_TOKENS[tok.kind], lhs, self._scalar_or_atom())
            else:
                return lhs

    def _scalar_or_atom(self):
        if self.at(Tok.NUMBER):
            return Scalar(float(self.next().text))
        return self._atom()

    def _atom(self) -> PromExpr:
        tok = self.peek()
        if tok.kind is Tok.NUMBER:
            scalar = Scalar(float(self.next().text))
            op_tok = self.next()
            if op_tok.kind in _CMP_TOKENS:
                return PromBinOp(_CMP_TOKENS[op_tok.kind], scalar, self._atom())
            if op_tok.kind in _ARITH_TOKENS:
                return PromBinOp(_ARITH_TOKENS[op_tok.kind], scalar, self._atom())
            raise QueryError(f"bare scalar is not a query (pos {tok.pos})")
        if tok.kind is Tok.LPAREN:
            self.next()
            inner = self._expr()
            self.expect(Tok.RPAREN)
            return inner
        if tok.kind is Tok.LBRACE:
            return VectorSelector(tuple(self._matchers()))
        if tok.kind is not Tok.IDENT:
            raise QueryError(f"unexpected token {tok.text!r} at position {tok.pos}")
        word = tok.text
        if word in _VECTOR_OPS:
            return self._vector_agg()
        if word in _RANGE_FUNCS:
            return self._range_agg()
        if word == "absent":
            self.next()
            self.expect(Tok.LPAREN)
            tok2 = self.peek()
            if tok2.kind is Tok.IDENT:
                name = self.next().text
                matchers = [Matcher(METRIC_NAME_LABEL, MatchOp.EQ, name)]
                if self.at(Tok.LBRACE):
                    matchers.extend(self._matchers())
            elif tok2.kind is Tok.LBRACE:
                matchers = self._matchers()
            else:
                raise QueryError("absent() takes a vector selector")
            self.expect(Tok.RPAREN)
            return PromAbsent(VectorSelector(tuple(matchers)))
        if word in ("topk", "bottomk"):
            self.next()
            self.expect(Tok.LPAREN)
            k_tok = self.expect(Tok.NUMBER)
            self.expect(Tok.COMMA)
            inner = self._expr()
            self.expect(Tok.RPAREN)
            return PromTopK(int(float(k_tok.text)), inner, bottom=word == "bottomk")
        # Bare metric name, optionally with a matcher block.
        self.next()
        matchers = [Matcher(METRIC_NAME_LABEL, MatchOp.EQ, word)]
        if self.at(Tok.LBRACE):
            matchers.extend(self._matchers())
        return VectorSelector(tuple(matchers))

    def _matchers(self) -> list[Matcher]:
        self.expect(Tok.LBRACE)
        matchers = []
        if not self.at(Tok.RBRACE):
            while True:
                name = self.expect(Tok.IDENT).text
                op_tok = self.next()
                if op_tok.kind not in _MATCH_TOKENS:
                    raise QueryError(
                        f"expected matcher operator at position {op_tok.pos}"
                    )
                value = self.expect(Tok.STRING).text
                matchers.append(Matcher(name, _MATCH_TOKENS[op_tok.kind], value))
                if self.at(Tok.COMMA):
                    self.next()
                    continue
                break
        self.expect(Tok.RBRACE)
        return matchers

    def _range_agg(self) -> PromRangeAgg:
        func = _RANGE_FUNCS[self.expect(Tok.IDENT).text]
        self.expect(Tok.LPAREN)
        tok = self.peek()
        if tok.kind is Tok.IDENT:
            name = self.next().text
            matchers = [Matcher(METRIC_NAME_LABEL, MatchOp.EQ, name)]
            if self.at(Tok.LBRACE):
                matchers.extend(self._matchers())
        elif tok.kind is Tok.LBRACE:
            matchers = self._matchers()
        else:
            raise QueryError(f"expected a selector inside range function (pos {tok.pos})")
        selector = VectorSelector(tuple(matchers))
        self.expect(Tok.LBRACKET)
        range_ns = parse_duration_ns(self.expect(Tok.DURATION).text)
        self.expect(Tok.RBRACKET)
        self.expect(Tok.RPAREN)
        return PromRangeAgg(func, selector, range_ns)

    def _vector_agg(self) -> PromVectorAgg:
        op = _VECTOR_OPS[self.expect(Tok.IDENT).text]
        mode, labels = GroupMode.NONE, ()
        if self.at(Tok.IDENT) and self.peek().text in ("by", "without"):
            mode, labels = self._grouping()
        self.expect(Tok.LPAREN)
        inner = self._expr()
        self.expect(Tok.RPAREN)
        if (
            mode is GroupMode.NONE
            and self.at(Tok.IDENT)
            and self.peek().text in ("by", "without")
        ):
            mode, labels = self._grouping()
        return PromVectorAgg(op, inner, mode, tuple(labels))

    def _grouping(self):
        word = self.expect(Tok.IDENT).text
        mode = GroupMode.BY if word == "by" else GroupMode.WITHOUT
        self.expect(Tok.LPAREN)
        labels = []
        if not self.at(Tok.RPAREN):
            while True:
                labels.append(self.expect(Tok.IDENT).text)
                if self.at(Tok.COMMA):
                    self.next()
                    continue
                break
        self.expect(Tok.RPAREN)
        return mode, tuple(labels)


def parse_promql(query: str) -> PromExpr:
    """Parse a PromQL query into its AST. Raises :class:`QueryError`."""
    if not query or not query.strip():
        raise QueryError("empty query")
    return _Parser(tokenize(query)).parse()


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------
class MetricSource(Protocol):
    """What the engine needs from a TSDB."""

    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, np.ndarray, np.ndarray]]: ...


class PromQLEngine:
    """Evaluates the PromQL subset against a :class:`TimeSeriesStore`."""

    def __init__(
        self, source: MetricSource, lookback_ns: int = DEFAULT_LOOKBACK_NS
    ) -> None:
        self._source = source
        self._lookback_ns = lookback_ns

    # -- public -------------------------------------------------------------
    def query_instant(self, query: str | PromExpr, time_ns: int) -> list[Sample]:
        expr = parse_promql(query) if isinstance(query, str) else query
        result = self._eval(expr, time_ns)
        if isinstance(expr, PromTopK):
            return result  # rank order is the point of topk/bottomk
        return sorted(result, key=lambda s: s.labels.items_tuple())

    def query_range(
        self, query: str | PromExpr, start_ns: int, end_ns: int, step_ns: int
    ) -> list[Series]:
        if step_ns <= 0:
            raise QueryError("step must be positive")
        if end_ns < start_ns:
            raise QueryError("end before start")
        expr = parse_promql(query) if isinstance(query, str) else query
        series: dict[LabelSet, list[tuple[int, float]]] = {}
        t = start_ns
        while t <= end_ns:
            for sample in self._eval(expr, t):
                series.setdefault(sample.labels, []).append((t, sample.value))
            t += step_ns
        return [
            Series(labels, tuple(points))
            for labels, points in sorted(
                series.items(), key=lambda kv: kv[0].items_tuple()
            )
        ]

    # -- evaluation ----------------------------------------------------------
    def _eval(self, expr: PromExpr | Scalar, time_ns: int) -> list[Sample]:
        if isinstance(expr, VectorSelector):
            return self._eval_selector(expr, time_ns)
        if isinstance(expr, PromRangeAgg):
            return self._eval_range(expr, time_ns)
        if isinstance(expr, PromVectorAgg):
            return self._eval_agg(expr, time_ns)
        if isinstance(expr, PromBinOp):
            return self._eval_binop(expr, time_ns)
        if isinstance(expr, PromSetOp):
            return self._eval_setop(expr, time_ns)
        if isinstance(expr, PromAbsent):
            present = self._eval_selector(expr.selector, time_ns)
            if present:
                return []
            # Equality matchers become the result labels, as in Prometheus.
            labels = {
                m.name: m.value
                for m in expr.selector.matchers
                if m.op is MatchOp.EQ and m.name != METRIC_NAME_LABEL and m.value
            }
            return [Sample(LabelSet(labels), 1.0, time_ns)]
        if isinstance(expr, PromTopK):
            inner = self._eval(expr.expr, time_ns)
            inner.sort(key=lambda s: (s.value, s.labels.items_tuple()),
                       reverse=not expr.bottom)
            return inner[: expr.k]
        raise QueryError(f"cannot evaluate {type(expr).__name__} as a vector")

    def _eval_selector(self, expr: VectorSelector, time_ns: int) -> list[Sample]:
        start = time_ns - self._lookback_ns + 1
        out = []
        for labels, _ts, vals in self._source.select(
            expr.matchers, start, time_ns + 1
        ):
            # Most recent sample inside the staleness window.
            out.append(Sample(labels, float(vals[-1]), time_ns))
        return out

    def _eval_range(self, expr: PromRangeAgg, time_ns: int) -> list[Sample]:
        start = time_ns - expr.range_ns + 1
        range_seconds = expr.range_ns / NANOS_PER_SECOND
        out = []
        for labels, ts, vals in self._source.select(
            expr.selector.matchers, start, time_ns + 1
        ):
            value = self._range_value(expr.func, ts, vals, range_seconds)
            if value is None:
                continue
            # Range functions drop the metric name (Prometheus semantics).
            out.append(Sample(labels.without(METRIC_NAME_LABEL), value, time_ns))
        return out

    @staticmethod
    def _range_value(
        func: PromRangeFunc, ts: np.ndarray, vals: np.ndarray, range_seconds: float
    ) -> float | None:
        if func is PromRangeFunc.COUNT_OVER_TIME:
            return float(len(vals))
        if func is PromRangeFunc.LAST_OVER_TIME:
            return float(vals[-1])
        if func is PromRangeFunc.SUM_OVER_TIME:
            return float(vals.sum())
        if func is PromRangeFunc.AVG_OVER_TIME:
            return float(vals.mean())
        if func is PromRangeFunc.MIN_OVER_TIME:
            return float(vals.min())
        if func is PromRangeFunc.MAX_OVER_TIME:
            return float(vals.max())
        # rate / increase / delta need at least two points.
        if len(vals) < 2:
            return None
        if func is PromRangeFunc.DELTA:
            return float(vals[-1] - vals[0])
        # Counter semantics: add back resets (vectorised).
        diffs = np.diff(vals)
        resets = vals[:-1][diffs < 0]
        increase = float(vals[-1] - vals[0] + resets.sum())
        if func is PromRangeFunc.INCREASE:
            return increase
        return increase / range_seconds  # RATE

    def _eval_agg(self, expr: PromVectorAgg, time_ns: int) -> list[Sample]:
        inner = self._eval(expr.expr, time_ns)
        groups: dict[LabelSet, list[float]] = {}
        for sample in inner:
            labels = sample.labels.without(METRIC_NAME_LABEL)
            if expr.mode is GroupMode.BY:
                key = labels.project(expr.labels)
            elif expr.mode is GroupMode.WITHOUT:
                key = labels.without(*expr.labels)
            else:
                key = LabelSet()
            groups.setdefault(key, []).append(sample.value)
        out = []
        for labels, values in groups.items():
            if expr.op is VectorOp.SUM:
                value = sum(values)
            elif expr.op is VectorOp.MIN:
                value = min(values)
            elif expr.op is VectorOp.MAX:
                value = max(values)
            elif expr.op is VectorOp.AVG:
                value = sum(values) / len(values)
            else:
                value = float(len(values))
            out.append(Sample(labels, value, time_ns))
        return out

    def _eval_binop(self, expr: PromBinOp, time_ns: int) -> list[Sample]:
        if isinstance(expr.lhs, Scalar) or isinstance(expr.rhs, Scalar):
            return self._eval_binop_scalar(expr, time_ns)
        return self._eval_binop_vector(expr, time_ns)

    def _eval_binop_scalar(self, expr: PromBinOp, time_ns: int) -> list[Sample]:
        scalar_left = isinstance(expr.lhs, Scalar)
        scalar = expr.lhs if scalar_left else expr.rhs
        assert isinstance(scalar, Scalar)
        vector = self._eval(
            expr.rhs if scalar_left else expr.lhs, time_ns  # type: ignore[arg-type]
        )
        out = []
        for sample in vector:
            a, b = (
                (scalar.value, sample.value)
                if scalar_left
                else (sample.value, scalar.value)
            )
            if isinstance(expr.op, CmpOp):
                if expr.op.apply(a, b):
                    out.append(sample)
            else:
                assert isinstance(expr.op, ArithOp)
                out.append(sample.with_value(expr.op.apply(a, b)))
        return out

    def _eval_binop_vector(self, expr: PromBinOp, time_ns: int) -> list[Sample]:
        lhs = self._eval(expr.lhs, time_ns)
        rhs = self._eval(expr.rhs, time_ns)
        rindex: dict[LabelSet, Sample] = {}
        for sample in rhs:
            key = sample.labels.without(METRIC_NAME_LABEL)
            if key in rindex:
                raise QueryError(
                    "many-to-one matching not supported: duplicate right-hand "
                    f"series {key}"
                )
            rindex[key] = sample
        seen: set[LabelSet] = set()
        out = []
        for sample in lhs:
            key = sample.labels.without(METRIC_NAME_LABEL)
            if key in seen:
                raise QueryError(
                    "one-to-many matching not supported: duplicate left-hand "
                    f"series {key}"
                )
            seen.add(key)
            other = rindex.get(key)
            if other is None:
                continue  # one-to-one join: unmatched series drop out
            if isinstance(expr.op, CmpOp):
                if expr.op.apply(sample.value, other.value):
                    out.append(sample)
            else:
                assert isinstance(expr.op, ArithOp)
                # Arithmetic drops the metric name (Prometheus semantics).
                out.append(Sample(key, expr.op.apply(sample.value, other.value),
                                  time_ns))
        return out

    def _eval_setop(self, expr: PromSetOp, time_ns: int) -> list[Sample]:
        lhs = self._eval(expr.lhs, time_ns)
        rhs = self._eval(expr.rhs, time_ns)
        rkeys = {s.labels.without(METRIC_NAME_LABEL) for s in rhs}
        if expr.op is SetOp.AND:
            return [s for s in lhs if s.labels.without(METRIC_NAME_LABEL) in rkeys]
        if expr.op is SetOp.UNLESS:
            return [
                s for s in lhs if s.labels.without(METRIC_NAME_LABEL) not in rkeys
            ]
        lkeys = {s.labels.without(METRIC_NAME_LABEL) for s in lhs}
        return lhs + [
            s for s in rhs if s.labels.without(METRIC_NAME_LABEL) not in lkeys
        ]
