"""VictoriaMetrics-like time-series database.

Metrics from Prometheus-style exporters (scraped by
:mod:`repro.tsdb.vmagent`) and from the Telemetry-API consumer pods land
here; :mod:`repro.tsdb.vmalert` queries it "continuously with predefined
alerting rules created by NERSC" and forwards events to Alertmanager
(paper §III / §IV workflow).

Storage is column-oriented: each series keeps NumPy arrays of timestamps
and values with amortised-doubling appends, so range selections are
vectorised ``searchsorted`` slices rather than Python loops.
"""

from repro.tsdb.storage import TimeSeriesStore, MetricSample
from repro.tsdb.promql import PromQLEngine
from repro.tsdb.recording import RecordingEngine, RecordingRule
from repro.tsdb.vmagent import VMAgent, ScrapeTarget
from repro.tsdb.vmalert import VMAlert

__all__ = [
    "TimeSeriesStore",
    "MetricSample",
    "PromQLEngine",
    "RecordingEngine",
    "RecordingRule",
    "VMAgent",
    "ScrapeTarget",
    "VMAlert",
]
