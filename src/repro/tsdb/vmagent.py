"""vmagent: scrapes Prometheus-style exporters into VictoriaMetrics.

Paper §IV workflow: "VMagent directly pushes metrics to the
VictoriaMetrics cluster in OMNI."  Each scrape target gets the standard
``job``/``instance`` labels added to every parsed sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.common.errors import ValidationError
from repro.common.simclock import SimClock
from repro.exporters.textformat import parse_exposition
from repro.tsdb.storage import TimeSeriesStore


class Scrapable(Protocol):
    def scrape(self) -> str: ...


@dataclass(frozen=True)
class ScrapeTarget:
    """One exporter endpoint with its job/instance identity."""

    job: str
    instance: str
    exporter: Scrapable

    def __post_init__(self) -> None:
        if not self.job or not self.instance:
            raise ValidationError("scrape target needs job and instance")


class VMAgent:
    """Deterministic scraper over the simulated clock."""

    def __init__(self, store: TimeSeriesStore, clock: SimClock) -> None:
        self._store = store
        self._clock = clock
        self._targets: list[ScrapeTarget] = []
        self.scrapes_done = 0
        self.samples_pushed = 0
        self.scrape_errors = 0

    def add_target(self, target: ScrapeTarget) -> None:
        if any(
            t.job == target.job and t.instance == target.instance
            for t in self._targets
        ):
            raise ValidationError(
                f"duplicate target {target.job}/{target.instance}"
            )
        self._targets.append(target)

    def targets(self) -> list[ScrapeTarget]:
        return list(self._targets)

    def scrape_all(self) -> int:
        """Scrape every target once; returns samples pushed."""
        now = self._clock.now_ns
        pushed = 0
        for target in self._targets:
            try:
                text = target.exporter.scrape()
                points = parse_exposition(text)
            except Exception:
                self.scrape_errors += 1
                # Synthesise the `up` metric Prometheus would record.
                self._store.ingest(
                    "up", {"job": target.job, "instance": target.instance}, 0.0, now
                )
                continue
            for point in points:
                labels = dict(point.labels)
                labels.setdefault("job", target.job)
                labels.setdefault("instance", target.instance)
                if self._store.ingest(point.name, labels, point.value, now):
                    pushed += 1
            self._store.ingest(
                "up", {"job": target.job, "instance": target.instance}, 1.0, now
            )
            self.scrapes_done += 1
        self.samples_pushed += pushed
        return pushed

    def run_periodic(self, interval_ns: int) -> None:
        self._clock.every(interval_ns, lambda: self.scrape_all())
