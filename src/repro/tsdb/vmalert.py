"""vmalert: VictoriaMetrics' rule evaluator.

Paper §III: "Alerting is handled using vmalert for metrics, a component
of VictoriaMetrics, that queries the database based on predefined rules.
When the return value matches, vmalert sends an event to AlertManager."

Shares the Prometheus rule state machine with the Loki Ruler
(:class:`repro.alerting.rules.RuleEvaluator`).
"""

from __future__ import annotations

from typing import Callable

from repro.common.simclock import SimClock
from repro.common.vector import Sample
from repro.alerting.events import AlertEvent
from repro.alerting.rules import RuleEvaluator, RuleSpec
from repro.tsdb.promql import PromQLEngine, parse_promql

#: vmalert rules are Prometheus-format too; alias for symmetry with Ruler.
MetricAlertingRule = RuleSpec


class VMAlert(RuleEvaluator):
    """Evaluates PromQL alerting rules against the TSDB."""

    def __init__(
        self,
        engine: PromQLEngine,
        clock: SimClock,
        notifier: Callable[[AlertEvent], None],
        generator: str = "vmalert",
    ) -> None:
        super().__init__(clock, notifier, generator)
        self._engine = engine

    def _validate_expr(self, expr: str) -> None:
        parse_promql(expr)

    def _query(self, expr: str, time_ns: int) -> list[Sample]:
        return self._engine.query_instant(expr, time_ns)
