"""The notification journal: persist-before-dispatch delivery ledger.

Alertmanager hands every outbound notification to the delivery layer,
which journals it *before* the first delivery attempt.  The journal is
the at-least-once contract for the alert tail: a notification is PENDING
until some attempt succeeds (DELIVERED) or the retry budget is exhausted
(FAILED, the notification-side dead letter).  Each entry carries an
idempotency key — retries of the same entry reuse the key, so receivers
behind an :class:`~repro.resilience.receivers.IdempotentReceiver` never
double-create ServiceNow incidents or duplicate Slack posts even when a
delivery succeeded but was reported failed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.simclock import SimClock
from repro.alerting.receivers import Notification


class NotificationState(enum.Enum):
    PENDING = "pending"
    DELIVERED = "delivered"
    FAILED = "failed"


@dataclass
class JournalEntry:
    """One journaled notification and its delivery lifecycle."""

    key: str
    receiver: str
    notification: Notification
    enqueued_ns: int
    state: NotificationState = NotificationState.PENDING
    attempts: int = 0
    delivered_ns: int | None = None
    failed_ns: int | None = None
    last_error: str = ""
    errors: list[str] = field(default_factory=list)

    def latency_ns(self) -> int | None:
        """Enqueue → delivery latency; None while not delivered."""
        if self.delivered_ns is None:
            return None
        return self.delivered_ns - self.enqueued_ns


class NotificationJournal:
    """Ledger of every notification handed to the delivery layer."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._entries: list[JournalEntry] = []
        self._by_key: dict[str, JournalEntry] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(
        self, receiver: str, notification: Notification, key: str | None = None
    ) -> JournalEntry:
        """Journal a notification before dispatch; idempotent on key."""
        if key is None:
            key = notification.idempotency_key
        if key is None:
            self._seq += 1
            key = f"{receiver}/journal-{self._seq:06d}"
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        entry = JournalEntry(
            key=key,
            receiver=receiver,
            notification=notification,
            enqueued_ns=self._clock.now_ns,
        )
        self._entries.append(entry)
        self._by_key[key] = entry
        return entry

    def record_attempt(self, entry: JournalEntry, error: str | None = None) -> None:
        entry.attempts += 1
        if error is not None:
            entry.last_error = error
            entry.errors.append(error)

    def mark_delivered(self, entry: JournalEntry) -> None:
        if entry.state is NotificationState.FAILED:
            raise ValidationError(f"entry {entry.key} already dead-lettered")
        entry.state = NotificationState.DELIVERED
        entry.delivered_ns = self._clock.now_ns

    def mark_failed(self, entry: JournalEntry, error: str) -> None:
        entry.state = NotificationState.FAILED
        entry.failed_ns = self._clock.now_ns
        entry.last_error = error

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, key: str) -> JournalEntry | None:
        return self._by_key.get(key)

    def entries(self, receiver: str | None = None) -> list[JournalEntry]:
        if receiver is None:
            return list(self._entries)
        return [e for e in self._entries if e.receiver == receiver]

    def pending(self, receiver: str | None = None) -> list[JournalEntry]:
        return [
            e
            for e in self.entries(receiver)
            if e.state is NotificationState.PENDING
        ]

    def failed(self, receiver: str | None = None) -> list[JournalEntry]:
        return [
            e
            for e in self.entries(receiver)
            if e.state is NotificationState.FAILED
        ]

    def enqueued_count(self, receiver: str | None = None) -> int:
        return len(self.entries(receiver))

    def delivered_count(self, receiver: str | None = None) -> int:
        return sum(
            1
            for e in self.entries(receiver)
            if e.state is NotificationState.DELIVERED
        )

    def latencies_ns(self, receiver: str | None = None) -> list[int]:
        """Enqueue → delivery latencies of delivered entries, in order."""
        return [
            lat
            for e in self.entries(receiver)
            if (lat := e.latency_ns()) is not None
        ]

    def stats(self, receiver: str | None = None) -> dict[str, int]:
        entries = self.entries(receiver)
        return {
            "enqueued": len(entries),
            "pending": sum(
                1 for e in entries if e.state is NotificationState.PENDING
            ),
            "delivered": sum(
                1 for e in entries if e.state is NotificationState.DELIVERED
            ),
            "failed": sum(
                1 for e in entries if e.state is NotificationState.FAILED
            ),
            "attempts": sum(e.attempts for e in entries),
        }
