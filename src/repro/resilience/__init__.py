"""repro.resilience — end-to-end delivery guarantees for the alert path.

The paper's value proposition is that a Redfish leak event *reliably*
becomes a ServiceNow incident.  This package supplies the delivery-side
machinery that makes "reliably" true when the monitoring plane itself
fails: deterministic exponential backoff (:mod:`backoff`), a per-receiver
circuit breaker (:mod:`circuit`), a notification journal with idempotency
keys (:mod:`journal`) and the retrying/flaky/idempotent receiver stack
(:mod:`receivers`).  The broker half of the story — manual offset
commits, backpressure, dead-letter queues — lives on
:class:`repro.bus.broker.Broker` itself.
"""

from repro.resilience.backoff import BackoffPolicy
from repro.resilience.circuit import CircuitBreaker, CircuitState
from repro.resilience.journal import (
    JournalEntry,
    NotificationJournal,
    NotificationState,
)
from repro.resilience.receivers import (
    FlakyReceiver,
    IdempotentReceiver,
    RetryingReceiver,
)

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "CircuitState",
    "JournalEntry",
    "NotificationJournal",
    "NotificationState",
    "FlakyReceiver",
    "IdempotentReceiver",
    "RetryingReceiver",
]
