"""Deterministic exponential backoff with seeded jitter.

Retry schedules in this stack must be *reproducible*: the same seed
always yields the same delays, so a chaos scenario replays identically
and the benches report stable percentiles.  ``delay_ns`` is therefore a
pure function of ``(policy, attempt)`` — the jitter comes from hashing
the seed and attempt number, not from shared RNG state.

The jitter is bounded so the schedule keeps two properties the
Hypothesis suite pins down:

* **monotone non-decreasing** until the cap: each attempt's jittered
  delay never undercuts the previous attempt's, because the jitter
  fraction is capped at ``multiplier - 1``;
* **never exceeds the cap**: the final clamp applies after jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def unit_interval(seed: int | str, n: int) -> float:
    """Deterministic uniform-ish value in [0, 1) from ``(seed, n)``.

    The stack's shared jitter primitive: retry schedules hash
    ``(seed, attempt)``, the self-healing heartbeat loops hash
    ``(member_id, tick)`` — any site needing reproducible spread uses
    this instead of shared RNG state, so replays stay bit-identical.
    """
    h = _FNV_OFFSET
    for byte in f"{seed}:{n}".encode():
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return (h >> 11) / float(1 << 53)


#: Historical private name, kept for in-repo callers.
_unit_interval = unit_interval


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``base * multiplier^attempt``, jittered, capped."""

    base_ns: int
    cap_ns: int
    multiplier: float = 2.0
    #: Fractional jitter: attempt ``n`` gets up to ``jitter * raw_delay``
    #: added.  Must not exceed ``multiplier - 1`` or the schedule could
    #: locally decrease.
    jitter: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_ns <= 0:
            raise ValidationError("backoff base must be positive")
        if self.cap_ns < self.base_ns:
            raise ValidationError("backoff cap must be >= base")
        if self.multiplier < 1.0:
            raise ValidationError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= self.multiplier - 1.0:
            raise ValidationError(
                "jitter must be in [0, multiplier - 1] to keep the "
                "schedule monotone"
            )

    def delay_ns(self, attempt: int) -> int:
        """Delay before retry number ``attempt`` (0-based), in ns."""
        if attempt < 0:
            raise ValidationError("attempt must be non-negative")
        raw = float(self.base_ns)
        for _ in range(attempt):
            raw *= self.multiplier
            if raw >= self.cap_ns:
                # Saturated: jitter cannot push below the cap's clamp and
                # further multiplication would only overflow.
                return self.cap_ns
        jittered = raw * (1.0 + self.jitter * _unit_interval(self.seed, attempt))
        return min(self.cap_ns, int(jittered))

    def schedule(self, attempts: int) -> list[int]:
        """The first ``attempts`` delays — handy for tests and reports."""
        return [self.delay_ns(i) for i in range(attempts)]
