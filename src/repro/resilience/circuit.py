"""Closed/open/half-open circuit breaker on the simulated clock.

A receiver that is hard-down fails every notify; retrying each pending
notification against it individually just burns attempts and pushes the
backoff schedule out.  The breaker aggregates that signal: after
``failure_threshold`` consecutive failures it *opens* and rejects
attempts outright; once ``reset_timeout_ns`` of simulated time has
passed it lets exactly one probe through (*half-open*); a successful
probe closes the circuit, a failed one re-opens it and re-arms the
timer.
"""

from __future__ import annotations

import enum

from repro.common.errors import ValidationError
from repro.common.simclock import SimClock


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-receiver failure aggregation with timed recovery probes."""

    def __init__(
        self,
        clock: SimClock,
        failure_threshold: int = 3,
        reset_timeout_ns: int = 60_000_000_000,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError("failure threshold must be positive")
        if reset_timeout_ns <= 0:
            raise ValidationError("reset timeout must be positive")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout_ns = reset_timeout_ns
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_ns: int | None = None
        self._probe_inflight = False
        self.times_opened = 0
        self.rejections = 0

    @property
    def state(self) -> CircuitState:
        """Current state, accounting for timer-driven OPEN → HALF_OPEN."""
        if (
            self._state is CircuitState.OPEN
            and self._opened_at_ns is not None
            and self._clock.now_ns - self._opened_at_ns >= self.reset_timeout_ns
        ):
            return CircuitState.HALF_OPEN
        return self._state

    @property
    def opened_at_ns(self) -> int | None:
        return self._opened_at_ns

    def retry_after_ns(self) -> int:
        """Simulated delay until the next probe is admissible (0 if now)."""
        if self.state is not CircuitState.OPEN or self._opened_at_ns is None:
            return 0
        return max(
            0, self._opened_at_ns + self.reset_timeout_ns - self._clock.now_ns
        )

    def allow(self) -> bool:
        """Whether a delivery attempt may proceed right now.

        In half-open state only a single in-flight probe is admitted;
        callers must answer it with :meth:`record_success` or
        :meth:`record_failure`.
        """
        state = self.state
        if state is CircuitState.CLOSED:
            return True
        if state is CircuitState.HALF_OPEN:
            if self._probe_inflight:
                self.rejections += 1
                return False
            self._state = CircuitState.HALF_OPEN
            self._probe_inflight = True
            return True
        self.rejections += 1
        return False

    def record_success(self) -> None:
        """A delivery attempt succeeded: close the circuit."""
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_ns = None
        self._probe_inflight = False

    def record_failure(self) -> None:
        """A delivery attempt failed: count it, maybe (re-)open."""
        if self._state is CircuitState.HALF_OPEN:
            self._open()
            return
        self._consecutive_failures += 1
        if (
            self._state is CircuitState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open()
        elif self._state is CircuitState.OPEN:
            # A failure while open (e.g. a probe admitted by the timer)
            # re-arms the recovery window.
            self._open()

    def _open(self) -> None:
        self._state = CircuitState.OPEN
        self._opened_at_ns = self._clock.now_ns
        self._consecutive_failures = 0
        self._probe_inflight = False
        self.times_opened += 1
