"""Resilient receiver wrappers: retrying, idempotent, and flaky-for-test.

The delivery chain the framework assembles in reliable mode is

    Alertmanager → RetryingReceiver → FlakyReceiver → IdempotentReceiver
                → (TracingReceiver →) Slack / ServiceNow

reading outward-in: the retrying layer owns the journal, backoff timers
and circuit breaker; the flaky layer is the chaos hook (seeded outage
windows, or forced down by a ``RECEIVER_OUTAGE`` fault); the idempotent
layer drops redeliveries of an already-delivered idempotency key so an
*ambiguous* failure (delivered, then reported failed) never duplicates a
Slack post or ServiceNow incident.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Sequence

from repro.common.errors import DeliveryError, ValidationError
from repro.common.simclock import SimClock
from repro.alerting.receivers import Notification, Receiver
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.journal import (
    JournalEntry,
    NotificationJournal,
    NotificationState,
)

if TYPE_CHECKING:
    from repro.tempo.tracer import Tracer


class FlakyReceiver:
    """Test double injecting receiver outages, deterministically.

    The receiver is *down* while the simulated clock sits inside any of
    its outage windows, or while :meth:`set_down` has forced it down (the
    ``RECEIVER_OUTAGE`` fault hook).  A down receiver raises
    :class:`DeliveryError`; with ``ambiguous=True`` it first delivers to
    the inner receiver and *then* raises — the at-least-once duplicate
    source idempotency keys exist to absorb.
    """

    def __init__(
        self,
        inner: Receiver,
        clock: SimClock,
        outages: Sequence[tuple[int, int]] = (),
        ambiguous: bool = False,
    ) -> None:
        for start, end in outages:
            if end <= start:
                raise ValidationError("outage window must end after it starts")
        self.name = inner.name
        self._inner = inner
        self._clock = clock
        self.outages = tuple(sorted(outages))
        self.ambiguous = ambiguous
        self._forced_down = False
        self.attempts = 0
        self.failures = 0
        self.delivered = 0

    @classmethod
    def seeded(
        cls,
        inner: Receiver,
        clock: SimClock,
        seed: int,
        outage_count: int = 3,
        horizon_ns: int = 3_600_000_000_000,
        mean_outage_ns: int = 300_000_000_000,
        ambiguous: bool = False,
    ) -> "FlakyReceiver":
        """Generate ``outage_count`` reproducible windows after now."""
        if outage_count < 1:
            raise ValidationError("need at least one outage window")
        rng = random.Random(seed)
        base = clock.now_ns
        windows = []
        for _ in range(outage_count):
            start = base + int(rng.random() * horizon_ns)
            duration = max(1, int(rng.expovariate(1.0 / mean_outage_ns)))
            windows.append((start, start + duration))
        return cls(inner, clock, windows, ambiguous=ambiguous)

    def set_down(self, down: bool) -> None:
        """Force the receiver down/up regardless of windows (fault hook)."""
        self._forced_down = down

    def is_down(self, now_ns: int | None = None) -> bool:
        if self._forced_down:
            return True
        now = self._clock.now_ns if now_ns is None else now_ns
        return any(start <= now < end for start, end in self.outages)

    def notify(self, notification: Notification) -> None:
        self.attempts += 1
        if self.is_down():
            if self.ambiguous:
                # The delivery actually lands but the ack is lost.
                self._inner.notify(notification)
            self.failures += 1
            raise DeliveryError(f"receiver {self.name!r} is down")
        self._inner.notify(notification)
        self.delivered += 1


class IdempotentReceiver:
    """Drops redeliveries of an already-delivered idempotency key."""

    def __init__(self, inner: Receiver) -> None:
        self.name = inner.name
        self._inner = inner
        self._delivered_keys: set[str] = set()
        self.duplicates_dropped = 0

    def notify(self, notification: Notification) -> None:
        key = notification.idempotency_key
        if key is not None and key in self._delivered_keys:
            self.duplicates_dropped += 1
            return
        self._inner.notify(notification)
        if key is not None:
            # Registered only after the inner notify returned, so a real
            # (non-ambiguous) failure stays retryable.
            self._delivered_keys.add(key)


class RetryingReceiver:
    """Journal-backed at-least-once delivery with backoff and breaker.

    ``notify`` never raises: the notification is journaled, then
    attempted; failures schedule a retry on the simulated clock per the
    backoff policy.  While the circuit breaker is open, attempts are
    deferred until its reset timeout instead of burning the inner
    receiver.  ``max_attempts=None`` retries until delivered — the
    framework default, since a lost alert is the one unacceptable
    outcome; a finite budget dead-letters the entry and reports it via
    ``on_dead_letter``.
    """

    def __init__(
        self,
        inner: Receiver,
        clock: SimClock,
        policy: BackoffPolicy,
        journal: NotificationJournal,
        breaker: CircuitBreaker | None = None,
        max_attempts: int | None = None,
        on_dead_letter: Callable[[JournalEntry], None] | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if max_attempts is not None and max_attempts < 1:
            raise ValidationError("max_attempts must be positive or None")
        self.name = inner.name
        self._inner = inner
        self._clock = clock
        self._policy = policy
        self._journal = journal
        self._breaker = breaker
        self._max_attempts = max_attempts
        self._on_dead_letter = on_dead_letter
        self._tracer = tracer
        self.attempts_total = 0
        self.retries_scheduled = 0
        self.delivered_total = 0
        self.dead_lettered_total = 0
        self.breaker_deferrals = 0

    @property
    def breaker(self) -> CircuitBreaker | None:
        return self._breaker

    @property
    def journal(self) -> NotificationJournal:
        return self._journal

    def notify(self, notification: Notification) -> None:
        entry = self._journal.append(self.name, notification)
        self._attempt(entry)

    def pending(self) -> list[JournalEntry]:
        return self._journal.pending(self.name)

    # ------------------------------------------------------------------
    # Delivery machinery
    # ------------------------------------------------------------------
    def _attempt(self, entry: JournalEntry) -> None:
        if entry.state is not NotificationState.PENDING:
            return  # delivered or dead-lettered while a retry was queued
        if self._breaker is not None and not self._breaker.allow():
            # Circuit open: wait out the breaker (or one backoff step in
            # the half-open race) rather than hammering the receiver.
            self.breaker_deferrals += 1
            delay = self._breaker.retry_after_ns() or self._policy.delay_ns(
                entry.attempts
            )
            self._schedule(entry, delay)
            return
        self.attempts_total += 1
        try:
            self._inner.notify(entry.notification)
        except DeliveryError as err:
            self._journal.record_attempt(entry, str(err))
            if self._breaker is not None:
                self._breaker.record_failure()
            self._trace_attempt(entry, ok=False)
            if (
                self._max_attempts is not None
                and entry.attempts >= self._max_attempts
            ):
                self._journal.mark_failed(entry, str(err))
                self.dead_lettered_total += 1
                if self._on_dead_letter is not None:
                    self._on_dead_letter(entry)
                return
            self._schedule(entry, self._policy.delay_ns(entry.attempts - 1))
            return
        self._journal.record_attempt(entry)
        self._journal.mark_delivered(entry)
        self.delivered_total += 1
        if self._breaker is not None:
            self._breaker.record_success()
        self._trace_attempt(entry, ok=True)

    def _schedule(self, entry: JournalEntry, delay_ns: int) -> None:
        self.retries_scheduled += 1
        self._clock.call_later(max(1, delay_ns), lambda: self._attempt(entry))

    def _trace_attempt(self, entry: JournalEntry, ok: bool) -> None:
        if self._tracer is None:
            return
        from repro.tempo.model import SpanStatus

        now = self._clock.now_ns
        self._tracer.record(
            self.name,
            "delivery_attempt",
            None,
            start_ns=entry.enqueued_ns if entry.attempts <= 1 else now,
            end_ns=now,
            attributes={
                "key": entry.key,
                "attempt": str(max(1, entry.attempts)),
                "outcome": "delivered" if ok else "failed",
            },
            status=SpanStatus.OK if ok else SpanStatus.ERROR,
        )
