"""The declarative SLO: objective, budget window, and a good/total SLI.

An SLO here is purely data — "99.9% of ingest pushes succeed, measured
over 30 days" — expressed the way Sloth/pyrra-style tooling does it: a
pair of PromQL selectors for the good-event and total-event counters.
The :class:`~repro.slo.manager.SloManager` turns the pair into
burn-rate recording rules by wrapping each selector in ``increase()``
over every alerting window.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.durations import format_duration_ns, parse_duration_ns
from repro.common.errors import ValidationError
from repro.slo.burnrate import budget_rate
from repro.tsdb.promql import parse_promql

#: Every SLO's SLI counters carry this label, keyed by the SLO name;
#: it is the join key that keeps one SLO's windows matching each other
#: and different SLOs apart.
SLO_LABEL = "slo"

#: Counter families the built-in exporter publishes for every SLO.
SLI_GOOD_METRIC = "slo_sli_good_total"
SLI_TOTAL_METRIC = "slo_sli_total"

_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a good/total SLI pair.

    ``good_expr`` / ``total_expr`` must be plain vector selectors (they
    get wrapped in ``increase(<expr>[<window>])`` by the recording
    rules); they default to the standard SLI counter families filtered
    to this SLO's name.
    """

    name: str
    description: str
    objective: float = 0.999
    window: str = "30d"
    good_expr: str = ""
    total_expr: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValidationError(
                f"SLO name {self.name!r} must be lowercase kebab-case "
                "(it becomes the `slo` label value)"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValidationError(
                f"objective must be in (0, 1) exclusive, got {self.objective}"
            )
        if parse_duration_ns(self.window) <= 0:
            raise ValidationError("SLO window must be positive")
        if not self.good_expr:
            object.__setattr__(
                self,
                "good_expr",
                f'{SLI_GOOD_METRIC}{{{SLO_LABEL}="{self.name}"}}',
            )
        if not self.total_expr:
            object.__setattr__(
                self,
                "total_expr",
                f'{SLI_TOTAL_METRIC}{{{SLO_LABEL}="{self.name}"}}',
            )
        for expr in (self.good_expr, self.total_expr):
            # Selectors must compose into range functions.
            parse_promql(f"increase({expr}[5m])")

    @property
    def budget_rate(self) -> float:
        """Allowed error fraction: ``1 - objective``."""
        return budget_rate(self.objective)

    @property
    def window_ns(self) -> int:
        return parse_duration_ns(self.window)

    def describe(self) -> str:
        """Human one-liner for dashboards and ``logcli slo``."""
        pct = self.objective * 100.0
        return (
            f"{self.name}: {pct:g}% over "
            f"{format_duration_ns(self.window_ns)} — {self.description}"
        )
