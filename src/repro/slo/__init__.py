"""Service-level objectives over the monitoring plane's own signals.

The paper's goal is a *small number of high-confidence ServiceNow
incidents* out of a flood of raw telemetry.  This package adds the
standard SRE rollup layer on top of the tsdb/vmalert/alerting plane:
declarative SLOs with good/total SLIs, burn-rate recording rules
persisted back into the TSDB, error budgets, and Google-SRE-workbook
multi-window multi-burn-rate alerting — pages open ServiceNow
incidents, slow-burn tickets only annotate.
"""

from repro.slo.budget import ErrorBudget
from repro.slo.burnrate import (
    DEFAULT_BURN_WINDOWS,
    SEVERITY_PAGE,
    SEVERITY_TICKET,
    BurnWindow,
    budget_rate,
    burn_metric_name,
    burn_rate,
    detection_latency_bound_ns,
    error_ratio_metric_name,
    max_within_budget_burn,
    multiwindow_fires,
    time_to_exceed_ns,
    windowed_burn,
    windowed_error_fraction,
)
from repro.slo.manager import SloManager
from repro.slo.model import SLI_GOOD_METRIC, SLI_TOTAL_METRIC, SLO, SLO_LABEL
from repro.slo.sources import (
    AlertDeliverySource,
    IngestAvailabilitySource,
    PatternFreshnessSource,
    QueryLatencySource,
    SliCollector,
    SliSnapshot,
    SliSource,
    StaticSource,
)

__all__ = [
    "AlertDeliverySource",
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "ErrorBudget",
    "IngestAvailabilitySource",
    "PatternFreshnessSource",
    "QueryLatencySource",
    "SEVERITY_PAGE",
    "SEVERITY_TICKET",
    "SLI_GOOD_METRIC",
    "SLI_TOTAL_METRIC",
    "SLO",
    "SLO_LABEL",
    "SliCollector",
    "SliSnapshot",
    "SliSource",
    "SloManager",
    "StaticSource",
    "budget_rate",
    "burn_metric_name",
    "burn_rate",
    "detection_latency_bound_ns",
    "error_ratio_metric_name",
    "max_within_budget_burn",
    "multiwindow_fires",
    "time_to_exceed_ns",
    "windowed_burn",
    "windowed_error_fraction",
]
