"""Pure burn-rate math for multi-window multi-burn-rate SLO alerting.

Everything here is side-effect free and works on plain numbers, so the
Hypothesis property suite and Bench O1 can exercise the alerting
semantics without a TSDB in the loop.  The production path records the
same quantities as PromQL recording rules; this module is the ground
truth they are checked against.

Terminology (Google SRE workbook, ch. 5 "Alerting on SLOs"):

- *budget rate* — the error fraction the objective allows,
  ``1 - objective`` (0.1% for a 99.9% objective).
- *burn rate* — how fast the budget is being consumed relative to the
  allowed pace: ``error_fraction / budget_rate``.  Burn 1 means the
  budget lasts exactly the SLO window; burn 14.4 exhausts a 30-day
  budget in 50 hours.
- *multi-window rule* — fire only when the burn over a short AND a long
  window both exceed a factor.  The long window proves the burn is
  material; the short window makes the alert reset quickly once the
  incident is over.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.durations import parse_duration_ns
from repro.common.errors import ValidationError

#: Severity of the two alert tiers: pages interrupt a human now,
#: tickets wait for working hours.
SEVERITY_PAGE = "page"
SEVERITY_TICKET = "ticket"


@dataclass(frozen=True)
class BurnWindow:
    """One row of the workbook's multi-window multi-burn-rate table."""

    short: str  #: fast-reset window, e.g. ``"5m"``
    long: str  #: sustain-proof window, e.g. ``"1h"``
    factor: float  #: burn-rate threshold both windows must exceed
    severity: str  #: :data:`SEVERITY_PAGE` or :data:`SEVERITY_TICKET`

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValidationError("burn factor must be positive")
        if self.severity not in (SEVERITY_PAGE, SEVERITY_TICKET):
            raise ValidationError(
                f"burn window severity must be {SEVERITY_PAGE!r} or "
                f"{SEVERITY_TICKET!r}, not {self.severity!r}"
            )
        if self.short_ns >= self.long_ns:
            raise ValidationError(
                f"short window {self.short} must be shorter than the "
                f"long window {self.long}"
            )

    @property
    def short_ns(self) -> int:
        return parse_duration_ns(self.short)

    @property
    def long_ns(self) -> int:
        return parse_duration_ns(self.long)

    @property
    def is_page(self) -> bool:
        return self.severity == SEVERITY_PAGE


#: The workbook's recommended four-tier table for a 30-day window:
#: 14.4x burn spends 2% of the monthly budget in an hour (page), 6x
#: spends 5% in six hours (page), 3x/1x are ticket-grade slow burns.
#: Short windows are 1/12 of their long window throughout.
DEFAULT_BURN_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow("5m", "1h", 14.4, SEVERITY_PAGE),
    BurnWindow("30m", "6h", 6.0, SEVERITY_PAGE),
    BurnWindow("2h", "1d", 3.0, SEVERITY_TICKET),
    BurnWindow("6h", "3d", 1.0, SEVERITY_TICKET),
)


def budget_rate(objective: float) -> float:
    """The error fraction the objective allows (``1 - objective``)."""
    if not 0.0 < objective < 1.0:
        raise ValidationError("objective must be in (0, 1) exclusive")
    return 1.0 - objective


def burn_rate(error_fraction: float, objective: float) -> float:
    """Budget-consumption speed: error fraction over allowed fraction."""
    if error_fraction < 0.0:
        raise ValidationError("error fraction cannot be negative")
    return error_fraction / budget_rate(objective)


def windowed_error_fraction(
    events: Sequence[tuple[int, float, float]],
    t_ns: int,
    window_ns: int,
) -> float:
    """Error fraction of the ``(ts_ns, good, bad)`` increments in
    ``(t_ns - window_ns, t_ns]``.  Zero traffic reads as fraction 0 —
    the PromQL guard drops the sample entirely in that case, which for
    alerting purposes is the same "cannot fire" outcome.

    ``events`` must be sorted by timestamp (they are appended in sim
    order everywhere this is used).
    """
    if window_ns <= 0:
        raise ValidationError("window must be positive")
    times = [e[0] for e in events]
    lo = bisect_right(times, t_ns - window_ns)
    hi = bisect_right(times, t_ns)
    good = sum(e[1] for e in events[lo:hi])
    bad = sum(e[2] for e in events[lo:hi])
    total = good + bad
    if total <= 0:
        return 0.0
    return bad / total


def windowed_burn(
    events: Sequence[tuple[int, float, float]],
    t_ns: int,
    window_ns: int,
    objective: float,
) -> float:
    """Burn rate of the event stream over the trailing window."""
    return burn_rate(
        windowed_error_fraction(events, t_ns, window_ns), objective
    )


def multiwindow_fires(
    events: Sequence[tuple[int, float, float]],
    t_ns: int,
    window: BurnWindow,
    objective: float,
) -> bool:
    """The workbook condition: burn over *both* windows exceeds the
    factor.  This is the reference semantics for the recorded
    ``slo_burn_rate_<short> > f and slo_burn_rate_<long> > f`` rule."""
    return (
        windowed_burn(events, t_ns, window.short_ns, objective)
        > window.factor
        and windowed_burn(events, t_ns, window.long_ns, objective)
        > window.factor
    )


def time_to_exceed_ns(
    window_ns: int,
    factor: float,
    objective: float,
    error_rate: float,
) -> int | None:
    """How long a steady burn takes to push one window past its factor.

    With steady traffic and a constant error fraction ``error_rate``
    starting at t=0 (window previously error-free), the trailing-window
    error fraction after ``d`` is ``error_rate * d / window`` (until the
    window is saturated).  It crosses ``factor * budget_rate`` at::

        d = window * factor * budget_rate / error_rate

    Returns ``None`` when the steady-state burn never reaches the
    factor (``error_rate / budget_rate <= factor``) — the window
    saturates below the threshold.
    """
    if window_ns <= 0:
        raise ValidationError("window must be positive")
    if not 0.0 < error_rate <= 1.0:
        raise ValidationError("error rate must be in (0, 1]")
    rate = budget_rate(objective)
    if error_rate / rate <= factor:
        return None
    return int(window_ns * factor * rate / error_rate) + 1


def detection_latency_bound_ns(
    window: BurnWindow,
    objective: float,
    eval_interval_ns: int,
    error_rate: float = 1.0,
) -> int | None:
    """Worst-case firing latency of a multi-window rule under a steady
    burn, on an evaluator that looks every ``eval_interval_ns``.

    Both windows must cross; the long window (needing more absolute bad
    events for the same fraction) dominates.  The evaluator adds at
    most one interval of staleness on top of the analytic crossing.

    For the workbook's page tiers this bound is far below the short
    window: a total outage against a 99.9% objective crosses the 1-hour
    14.4x condition in ~52s.  ``None`` means the burn never fires.
    """
    if eval_interval_ns <= 0:
        raise ValidationError("eval interval must be positive")
    crossings = [
        time_to_exceed_ns(w, window.factor, objective, error_rate)
        for w in (window.short_ns, window.long_ns)
    ]
    if any(c is None for c in crossings):
        return None
    return max(c for c in crossings if c is not None) + eval_interval_ns


def max_within_budget_burn(windows: Iterable[BurnWindow]) -> float:
    """The smallest page factor — a stream whose burn never reaches it
    on any window can never page.  Used by the noise-soak property."""
    factors = [w.factor for w in windows if w.is_page]
    if not factors:
        raise ValidationError("no page-severity windows configured")
    return min(factors)


def burn_metric_name(window: str) -> str:
    """TSDB name of the recorded per-window burn series.

    Window-suffixed names (``slo_burn_rate_5m``) rather than a
    ``window`` label: the multi-window rule joins the short and long
    series with ``and``, which matches on the full label set — a window
    label would break the join.  A labelled ``slo_burn_rate`` family is
    additionally recorded (via alias rules) for the dashboard heatmap.
    """
    name = f"slo_burn_rate_{window}"
    if not name.replace("_", "").isalnum():
        raise ValidationError(f"window {window!r} is not metric-name safe")
    return name


def error_ratio_metric_name(window: str) -> str:
    """TSDB name of the recorded per-window raw error-ratio series."""
    name = f"slo_error_ratio_{window}"
    if not name.replace("_", "").isalnum():
        raise ValidationError(f"window {window!r} is not metric-name safe")
    return name
