"""Error-budget accounting over the SLO window.

The budget is the bad-event allowance the objective grants over the
SLO window: ``(1 - objective) * total_events_in_window``.  The tracker
keeps cumulative SLI snapshots, prunes them past the window, and
reports the remaining fraction — 1.0 with an untouched budget, 0.0 at
exhaustion, negative once overspent (the dashboard shows how deep).
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ValidationError
from repro.slo.model import SLO
from repro.slo.sources import SliSnapshot


class ErrorBudget:
    """Rolling-window budget state for one SLO."""

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        # (ts_ns, good, total) cumulative snapshots, oldest first.  One
        # snapshot older than the window is retained as the baseline the
        # in-window consumption is measured against.
        self._snapshots: deque[tuple[int, float, float]] = deque()

    def observe(self, ts_ns: int, snapshot: SliSnapshot) -> None:
        """Record a cumulative snapshot taken at ``ts_ns``."""
        if self._snapshots and ts_ns < self._snapshots[-1][0]:
            raise ValidationError("budget snapshots must arrive in order")
        self._snapshots.append((ts_ns, snapshot.good, snapshot.total))
        horizon = ts_ns - self.slo.window_ns
        while len(self._snapshots) >= 2 and self._snapshots[1][0] <= horizon:
            self._snapshots.popleft()

    def window_totals(self) -> tuple[float, float]:
        """(bad, total) events consumed within the current window.

        Counter resets (a snapshot below its predecessor) contribute
        zero rather than negative consumption.
        """
        if len(self._snapshots) < 2:
            return (0.0, 0.0)
        bad = 0.0
        total = 0.0
        prev = self._snapshots[0]
        for snap in list(self._snapshots)[1:]:
            d_total = snap[2] - prev[2]
            d_good = snap[1] - prev[1]
            if d_total >= 0 and d_good >= 0:
                total += d_total
                bad += max(d_total - d_good, 0.0)
            prev = snap
        return (bad, total)

    def remaining_ratio(self) -> float:
        """Budget left as a fraction of the window's allowance.

        With no traffic in the window there is nothing to have failed,
        so the budget reads untouched (1.0).
        """
        bad, total = self.window_totals()
        allowance = self.slo.budget_rate * total
        if allowance <= 0.0:
            return 1.0
        return 1.0 - bad / allowance

    @property
    def exhausted(self) -> bool:
        return self.remaining_ratio() <= 0.0 and len(self._snapshots) >= 2

    def snapshot_count(self) -> int:
        return len(self._snapshots)
