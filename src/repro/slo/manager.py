"""SloManager: recording rules, budgets, burn alerts, escalation.

The manager owns the whole derived-data pipeline for every registered
SLO:

1. **Recording rules** — for each SLO and each distinct alerting
   window it registers burn-rate and raw error-ratio rules with the
   :class:`~repro.tsdb.recording.RecordingEngine`; vmalert rules and
   dashboards then read precomputed series (``slo_burn_rate_5m``) not
   raw counters.  A labelled ``slo_burn_rate{window=...}`` alias family
   is chained off the suffixed series for the heatmap panel.
2. **Alerting rules** — one vmalert :class:`RuleSpec` per burn tier,
   global across SLOs (the ``slo`` label rides in from the series):
   ``slo_burn_rate_5m > 14.4 and slo_burn_rate_1h > 14.4``.  Pages
   carry ``severity=critical`` (ServiceNow incident); tickets carry
   ``severity=warning`` (annotation only).
3. **Error budgets** — cumulative SLI snapshots feed an
   :class:`~repro.slo.budget.ErrorBudget` per SLO; first exhaustion
   emits a critical ``SloErrorBudgetExhausted`` alert directly into
   Alertmanager with the recent burn history attached, and a resolve
   follows once the budget recovers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.alerting.events import (
    ALERTNAME_LABEL,
    SEVERITY_LABEL,
    AlertEvent,
    AlertState,
)
from repro.alerting.rules import RuleSpec
from repro.common.errors import ValidationError
from repro.common.labels import LabelSet
from repro.common.simclock import NANOS_PER_SECOND, SimClock, Timer
from repro.slo.budget import ErrorBudget
from repro.slo.burnrate import (
    DEFAULT_BURN_WINDOWS,
    BurnWindow,
    burn_metric_name,
    error_ratio_metric_name,
)
from repro.slo.model import SLO, SLO_LABEL
from repro.slo.sources import SliCollector, SliSource
from repro.tempo.tracer import Tracer
from repro.tsdb.promql import PromQLEngine
from repro.tsdb.recording import RecordingEngine, RecordingRule
from repro.tsdb.storage import TimeSeriesStore

#: Alert label marking every alert the SLO plane emits; the framework
#: routes on it (pages also match the severity=critical ServiceNow
#: route, which comes first with continue enabled).
CATEGORY_LABEL = "category"
CATEGORY_SLO = "slo"
TIER_LABEL = "tier"

#: How many (timestamp, burns) rows each SLO retains for the
#: budget-exhaustion incident's attached history.
BURN_HISTORY_LEN = 48


@dataclass
class _SloEntry:
    slo: SLO
    collector: SliCollector
    budget: ErrorBudget
    history: deque = field(default_factory=lambda: deque(maxlen=BURN_HISTORY_LEN))
    exhausted: bool = False
    exhausted_since_ns: int | None = None


def _severity_label(window: BurnWindow) -> str:
    return "critical" if window.is_page else "warning"


class SloManager:
    """Registers SLOs and drives recording, budgets, and escalation."""

    def __init__(
        self,
        clock: SimClock,
        promql: PromQLEngine,
        store: TimeSeriesStore,
        notifier: Callable[[AlertEvent], None] | None = None,
        *,
        windows: Iterable[BurnWindow] = DEFAULT_BURN_WINDOWS,
        cluster: str = "",
        tracer: Tracer | None = None,
    ) -> None:
        self.windows = tuple(windows)
        if not self.windows:
            raise ValidationError("at least one burn window is required")
        self._clock = clock
        self._promql = promql
        self._notifier = notifier
        self._cluster = cluster
        self._tracer = tracer
        self.recording = RecordingEngine(promql, store, clock, tracer)
        self._entries: dict[str, _SloEntry] = {}
        self.evaluations = 0
        self.exhaustion_events = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, slo: SLO, source: SliSource) -> SliCollector:
        """Register ``slo`` backed by ``source``; install its rules."""
        if slo.name in self._entries:
            raise ValidationError(f"SLO {slo.name!r} already registered")
        collector = SliCollector(source)
        self._entries[slo.name] = _SloEntry(
            slo=slo, collector=collector, budget=ErrorBudget(slo)
        )
        for window in self._distinct_windows():
            self.recording.add_rule(self._burn_rule(slo, window))
            self.recording.add_rule(self._ratio_rule(slo, window))
            # Chained alias: read the suffixed series just recorded and
            # re-emit it with a window label for the dashboard heatmap.
            alias = RecordingRule(
                record="slo_burn_rate",
                expr=burn_metric_name(window),
                labels={"window": window},
            )
            if not any(
                r.record == alias.record and r.expr == alias.expr
                for r in self.recording.rules()
            ):
                self.recording.add_rule(alias)
        return collector

    def _distinct_windows(self) -> list[str]:
        seen: list[str] = []
        for w in self.windows:
            for d in (w.short, w.long):
                if d not in seen:
                    seen.append(d)
        return seen

    def _burn_rule(self, slo: SLO, window: str) -> RecordingRule:
        # The `> 0` guard drops the sample when the window saw no
        # traffic: no sample means the burn alert *cannot* fire, which
        # is the correct reading of "nothing happened".
        good, total = slo.good_expr, slo.total_expr
        expr = (
            f"(increase({total}[{window}]) - increase({good}[{window}]))"
            f" / (increase({total}[{window}]) > 0)"
            f" / {slo.budget_rate:g}"
        )
        return RecordingRule(record=burn_metric_name(window), expr=expr)

    def _ratio_rule(self, slo: SLO, window: str) -> RecordingRule:
        good, total = slo.good_expr, slo.total_expr
        expr = (
            f"(increase({total}[{window}]) - increase({good}[{window}]))"
            f" / (increase({total}[{window}]) > 0)"
        )
        return RecordingRule(record=error_ratio_metric_name(window), expr=expr)

    # ------------------------------------------------------------------
    # Alerting rules (vmalert)
    # ------------------------------------------------------------------
    def rule_specs(self) -> list[RuleSpec]:
        """Multi-window burn alerting rules, one per configured tier.

        Global across SLOs: the expressions select every recorded burn
        series and the per-SLO labels ride through, so registering a
        new SLO needs no new alerting rules.  ``for_`` stays 0 — the
        long window *is* the sustain condition.
        """
        specs: list[RuleSpec] = []
        for w in self.windows:
            short_m = burn_metric_name(w.short)
            long_m = burn_metric_name(w.long)
            labels = {
                SEVERITY_LABEL: _severity_label(w),
                CATEGORY_LABEL: CATEGORY_SLO,
                TIER_LABEL: w.severity,
                "long_window": w.long,
            }
            if self._cluster:
                labels["cluster"] = self._cluster
            specs.append(
                RuleSpec(
                    name=f"Slo{w.severity.capitalize()}Burn_{w.short}_{w.long}",
                    expr=(
                        f"{short_m} > {w.factor:g}"
                        f" and {long_m} > {w.factor:g}"
                    ),
                    for_="0s",
                    labels=labels,
                    annotations={
                        "summary": (
                            "SLO {{ $labels.slo }} burning error budget at "
                            "{{ $value }}x the allowed rate over "
                            f"{w.short} (also above {w.factor:g}x over "
                            f"{w.long})"
                        ),
                        "runbook": (
                            "Budget burns at this pace exhaust the SLO "
                            "window early; inspect the SLO Overview "
                            "dashboard burn heatmap."
                        ),
                    },
                )
            )
        return specs

    # ------------------------------------------------------------------
    # Periodic evaluation
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One evaluation cycle: recording rules, then budgets."""
        self.recording.evaluate_all()
        self.evaluate_budgets()

    def run_periodic(self, interval_ns: int) -> Timer:
        if interval_ns <= 0:
            raise ValidationError("SLO eval interval must be positive")
        return self._clock.every(interval_ns, self.tick)

    def evaluate_budgets(self) -> None:
        now = self._clock.now_ns
        for entry in self._entries.values():
            entry.budget.observe(now, entry.collector.snapshot())
            entry.history.append((now, self._current_burns(entry.slo.name)))
            self._check_exhaustion(entry, now)
        self.evaluations += 1
        if self._tracer is not None:
            self._tracer.record(
                "slo",
                "evaluate_budgets",
                None,
                now,
                now,
                attributes={"slos": str(len(self._entries))},
            )

    def _current_burns(self, name: str) -> dict[str, float]:
        """Latest recorded burn per distinct window for one SLO."""
        burns: dict[str, float] = {}
        now = self._clock.now_ns
        for window in self._distinct_windows():
            expr = f'{burn_metric_name(window)}{{{SLO_LABEL}="{name}"}}'
            samples = self._promql.query_instant(expr, now)
            if samples:
                burns[window] = samples[0].value
        return burns

    def _check_exhaustion(self, entry: _SloEntry, now: int) -> None:
        exhausted = entry.budget.exhausted
        if exhausted and not entry.exhausted:
            entry.exhausted = True
            entry.exhausted_since_ns = now
            self._notify_exhaustion(entry, now, AlertState.FIRING)
        elif not exhausted and entry.exhausted:
            entry.exhausted = False
            self._notify_exhaustion(entry, now, AlertState.RESOLVED)
            entry.exhausted_since_ns = None

    def _notify_exhaustion(
        self, entry: _SloEntry, now: int, state: AlertState
    ) -> None:
        if self._notifier is None:
            return
        labels = {
            ALERTNAME_LABEL: "SloErrorBudgetExhausted",
            SEVERITY_LABEL: "critical",
            CATEGORY_LABEL: CATEGORY_SLO,
            TIER_LABEL: "page",
            SLO_LABEL: entry.slo.name,
        }
        if self._cluster:
            labels["cluster"] = self._cluster
        remaining = entry.budget.remaining_ratio()
        event = AlertEvent(
            labels=LabelSet(labels),
            annotations={
                "summary": (
                    f"SLO {entry.slo.name} has exhausted its "
                    f"{entry.slo.window} error budget "
                    f"(remaining {remaining * 100.0:.1f}%)"
                ),
                "burn_history": self._format_history(entry),
                "description": entry.slo.describe(),
            },
            state=state,
            value=remaining,
            started_at_ns=entry.exhausted_since_ns or now,
            fired_at_ns=now,
            generator="slo-manager",
        )
        self.exhaustion_events += 1
        self._notifier(event)

    def _format_history(self, entry: _SloEntry) -> str:
        """Compact burn history attached to the exhaustion incident."""
        rows = []
        for ts, burns in list(entry.history)[-12:]:
            pairs = " ".join(
                f"{w}={v:.1f}x" for w, v in sorted(burns.items())
            )
            rows.append(f"t={ts / NANOS_PER_SECOND:.0f}s {pairs or '-'}")
        return "; ".join(rows)

    # ------------------------------------------------------------------
    # Introspection / injection
    # ------------------------------------------------------------------
    def slos(self) -> list[SLO]:
        return [e.slo for e in self._entries.values()]

    def collector(self, name: str) -> SliCollector:
        entry = self._entries.get(name)
        if entry is None:
            raise ValidationError(
                f"unknown SLO {name!r}; registered: "
                f"{sorted(self._entries) or 'none'}"
            )
        return entry.collector

    def inject(self, name: str, good: float, bad: float) -> None:
        """Degrade (or boost) an SLI synthetically — the fault hook."""
        self.collector(name).inject(good, bad)

    def budget(self, name: str) -> ErrorBudget:
        entry = self._entries.get(name)
        if entry is None:
            raise ValidationError(f"unknown SLO {name!r}")
        return entry.budget

    def burn_history(self, name: str) -> list[tuple[int, dict[str, float]]]:
        entry = self._entries.get(name)
        if entry is None:
            raise ValidationError(f"unknown SLO {name!r}")
        return list(entry.history)

    def status(self) -> list[dict[str, object]]:
        """Per-SLO status rows for ``logcli slo`` and health summaries.

        Fast/slow burn are the first (fastest-paging) configured tier's
        short- and long-window recorded burns.
        """
        fast_w = self.windows[0].short
        slow_w = self.windows[0].long
        rows: list[dict[str, object]] = []
        for name in sorted(self._entries):
            entry = self._entries[name]
            burns = self._current_burns(name)
            state = "ok"
            if entry.exhausted:
                state = "exhausted"
            else:
                for w in self.windows:
                    short_b = burns.get(w.short, 0.0)
                    long_b = burns.get(w.long, 0.0)
                    if short_b > w.factor and long_b > w.factor:
                        state = w.severity
                        if w.is_page:
                            break
            rows.append(
                {
                    "slo": name,
                    "objective": entry.slo.objective,
                    "window": entry.slo.window,
                    "budget_remaining": entry.budget.remaining_ratio(),
                    "fast_burn": burns.get(fast_w, 0.0),
                    "slow_burn": burns.get(slow_w, 0.0),
                    "state": state,
                }
            )
        return rows
