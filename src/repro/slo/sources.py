"""SLI sources: cumulative good/total snapshots from the live planes.

Each source adapts one subsystem's existing counters into the uniform
"good events / total events" shape an SLO needs.  Snapshots are
cumulative (monotone while the process lives), exactly like the
counters they read — the exporter publishes them verbatim and all
windowing happens downstream in ``increase()``.

A :class:`SliCollector` wraps a source with an injection channel so the
BURN_INJECTION chaos fault (and tests) can degrade any SLI uniformly,
regardless of which subsystem backs it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class SliSnapshot:
    """Cumulative good/total event counts at one instant."""

    good: float
    total: float

    @property
    def bad(self) -> float:
        return self.total - self.good

    def __post_init__(self) -> None:
        if self.good < 0 or self.total < 0:
            raise ValidationError("SLI counts cannot be negative")
        if self.good > self.total:
            raise ValidationError(
                f"good events ({self.good}) exceed total ({self.total})"
            )


class SliSource(Protocol):
    """Anything that can report a cumulative good/total pair."""

    def snapshot(self) -> SliSnapshot: ...


class StaticSource:
    """A source with no live backend; events arrive only by injection.

    Used by benches and tests that drive an SLO synthetically through
    :meth:`SliCollector.inject`.
    """

    def snapshot(self) -> SliSnapshot:
        return SliSnapshot(0.0, 0.0)


class IngestAvailabilitySource:
    """Ingest availability: accepted entries vs discarded + lost.

    Good events are entries the warehouse actually ingested; bad events
    are admission discards (rate limits, stream limits) plus writes the
    distributor could not place on a quorum of ingesters.
    """

    def __init__(self, warehouse, admission=None, distributor=None) -> None:
        self._warehouse = warehouse
        self._admission = admission
        self._distributor = distributor

    def snapshot(self) -> SliSnapshot:
        good = float(self._warehouse.messages_ingested)
        bad = 0.0
        if self._admission is not None:
            bad += float(
                sum(
                    c.entries_discarded
                    for c in self._admission.counters.values()
                )
            )
        if self._distributor is not None:
            bad += float(self._distributor.quorum_failures)
        return SliSnapshot(good, good + bad)


class QueryLatencySource:
    """Query latency: fast-enough queries vs all queries, from the
    sharded engine's accounted wall-clock."""

    def __init__(self, engine) -> None:
        self._engine = engine

    def snapshot(self) -> SliSnapshot:
        total = float(self._engine.queries_total)
        slow = float(self._engine.slow_queries_total)
        return SliSnapshot(max(total - slow, 0.0), total)


class AlertDeliverySource:
    """Alert delivery: journal entries delivered vs settled.

    Pending notifications are in flight, not failures — only settled
    entries (delivered or exhausted-retries failed) count toward the
    SLI, so a burst of queued alerts does not read as an outage.
    """

    def __init__(self, journal) -> None:
        self._journal = journal

    def snapshot(self) -> SliSnapshot:
        stats = self._journal.stats()
        delivered = float(stats["delivered"])
        failed = float(stats["failed"])
        return SliSnapshot(delivered, delivered + failed)


class PatternFreshnessSource:
    """Pattern-detection freshness: novel-error templates noticed
    within the bound vs all novel templates detected."""

    def __init__(self, ruler, bound_ns: int) -> None:
        if bound_ns <= 0:
            raise ValidationError("freshness bound must be positive")
        self._ruler = ruler
        self._bound_ns = bound_ns

    def snapshot(self) -> SliSnapshot:
        detections = self._ruler.novel_detections
        total = float(len(detections))
        good = float(
            sum(1 for d in detections if d.latency_ns <= self._bound_ns)
        )
        return SliSnapshot(good, total)


class SliCollector:
    """A source plus an additive injection channel.

    ``inject()`` adds synthetic good/bad events on top of whatever the
    backing source reports; the sum stays cumulative, so the injected
    burn flows through scrape → increase() → burn rate like organic
    traffic.  The injected totals are kept separate as ground truth for
    fault bookkeeping.
    """

    def __init__(self, source: SliSource) -> None:
        self._source = source
        self.injected_good = 0.0
        self.injected_bad = 0.0

    def inject(self, good: float, bad: float) -> None:
        if good < 0 or bad < 0:
            raise ValidationError("injected counts cannot be negative")
        self.injected_good += good
        self.injected_bad += bad

    def snapshot(self) -> SliSnapshot:
        base = self._source.snapshot()
        return SliSnapshot(
            base.good + self.injected_good,
            base.total + self.injected_good + self.injected_bad,
        )
