"""In-process Kafka-like message bus.

The Shasta telemetry plane stores sensor data, Redfish events, syslog and
container logs in Kafka topics; the Telemetry API then serves them to
consumers (paper §IV workflow steps).  This package provides the minimal
broker semantics that pipeline depends on:

* named **topics** split into **partitions**,
* per-partition monotonically increasing **offsets**,
* key-based partition assignment (same key → same partition → ordering),
* **consumer groups** with committed offsets and lag accounting,
* time-based **retention** that advances the log start offset.

Everything is synchronous and deterministic; no threads.
"""

from repro.bus.broker import Broker, Record, TopicConfig, ConsumerGroup

__all__ = ["Broker", "Record", "TopicConfig", "ConsumerGroup"]
