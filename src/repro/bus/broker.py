"""The broker: topics, partitions, consumer groups, retention.

Modeled after the subset of Apache Kafka the paper's pipeline uses.  The
HMS collector produces Redfish events into topics; rsyslog aggregators
produce syslog; the Telemetry API consumes on behalf of clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.common.simclock import SimClock


@dataclass(frozen=True)
class Record:
    """A single message in a topic partition."""

    topic: str
    partition: int
    offset: int
    timestamp_ns: int
    key: str | None
    value: str
    #: Kafka-style headers: out-of-band metadata (e.g. trace context)
    #: that rides the record without touching the payload bytes.
    headers: tuple[tuple[str, str], ...] = ()

    def size_bytes(self) -> int:
        """Approximate wire size (key + value, UTF-8)."""
        return len(self.value.encode()) + (len(self.key.encode()) if self.key else 0)

    def header(self, name: str) -> str | None:
        for key, value in self.headers:
            if key == name:
                return value
        return None


@dataclass
class TopicConfig:
    """Creation-time configuration for a topic."""

    partitions: int = 4
    retention_ns: int | None = None  # None = keep forever

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ValidationError("topic needs at least one partition")
        if self.retention_ns is not None and self.retention_ns <= 0:
            raise ValidationError("retention must be positive or None")


class _Partition:
    """One partition: an append-only list plus a log-start offset.

    Records before ``start_offset`` have been deleted by retention; the
    list only holds ``records[start_offset:]``.
    """

    __slots__ = ("records", "start_offset")

    def __init__(self) -> None:
        self.records: list[Record] = []
        self.start_offset = 0

    @property
    def end_offset(self) -> int:
        """Offset that the *next* record will receive."""
        return self.start_offset + len(self.records)

    def append(self, record: Record) -> None:
        self.records.append(record)

    def read_from(self, offset: int, max_records: int) -> list[Record]:
        offset = max(offset, self.start_offset)
        idx = offset - self.start_offset
        return self.records[idx : idx + max_records]

    def expire_before(self, cutoff_ns: int) -> int:
        """Drop records older than ``cutoff_ns``; return how many were dropped."""
        drop = 0
        for rec in self.records:
            if rec.timestamp_ns < cutoff_ns:
                drop += 1
            else:
                break
        if drop:
            del self.records[:drop]
            self.start_offset += drop
        return drop


class _Topic:
    def __init__(self, name: str, config: TopicConfig) -> None:
        self.name = name
        self.config = config
        self.partitions = [_Partition() for _ in range(config.partitions)]
        self.total_produced = 0
        self.total_bytes = 0


@dataclass
class ConsumerGroup:
    """Committed offsets for one consumer group on one topic."""

    group_id: str
    topic: str
    offsets: dict[int, int] = field(default_factory=dict)


class Broker:
    """A deterministic single-process message broker.

    Parameters
    ----------
    clock:
        Simulated clock used to timestamp records and drive retention.
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._topics: dict[str, _Topic] = {}
        self._groups: dict[tuple[str, str], ConsumerGroup] = {}

    # ------------------------------------------------------------------
    # Topic management
    # ------------------------------------------------------------------
    def create_topic(self, name: str, config: TopicConfig | None = None) -> None:
        """Create ``name``; idempotent only if the topic does not exist yet."""
        if not name:
            raise ValidationError("topic name cannot be empty")
        if name in self._topics:
            raise StateError(f"topic already exists: {name}")
        self._topics[name] = _Topic(name, config or TopicConfig())

    def ensure_topic(self, name: str, config: TopicConfig | None = None) -> None:
        """Create ``name`` if missing; no-op if it already exists."""
        if name not in self._topics:
            self.create_topic(name, config)

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def _topic(self, name: str) -> _Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise NotFoundError(f"no such topic: {name}") from None

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def produce(
        self,
        topic: str,
        value: str,
        key: str | None = None,
        timestamp_ns: int | None = None,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> Record:
        """Append a message; keyed messages land deterministically on one
        partition so per-key ordering holds (per-sensor, per-xname...)."""
        t = self._topic(topic)
        if key is None:
            # Round-robin for un-keyed records.
            partition = t.total_produced % len(t.partitions)
        else:
            partition = _stable_hash(key) % len(t.partitions)
        part = t.partitions[partition]
        record = Record(
            topic=topic,
            partition=partition,
            offset=part.end_offset,
            timestamp_ns=timestamp_ns if timestamp_ns is not None else self._clock.now_ns,
            key=key,
            value=value,
            headers=headers,
        )
        part.append(record)
        t.total_produced += 1
        t.total_bytes += record.size_bytes()
        return record

    def produce_batch(
        self, topic: str, values: Iterable[str], key: str | None = None
    ) -> int:
        """Produce many values; returns the count."""
        n = 0
        for v in values:
            self.produce(topic, v, key=key)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def _group(self, group_id: str, topic: str) -> ConsumerGroup:
        key = (group_id, topic)
        if key not in self._groups:
            t = self._topic(topic)
            self._groups[key] = ConsumerGroup(
                group_id,
                topic,
                {p: t.partitions[p].start_offset for p in range(len(t.partitions))},
            )
        return self._groups[key]

    def poll(self, group_id: str, topic: str, max_records: int = 500) -> list[Record]:
        """Fetch up to ``max_records`` new records for ``group_id`` and
        auto-commit the advanced offsets (the pipeline's at-most-once mode,
        adequate for telemetry streams)."""
        if max_records < 1:
            raise ValidationError("max_records must be positive")
        t = self._topic(topic)
        group = self._group(group_id, topic)
        out: list[Record] = []
        budget = max_records
        for pidx, part in enumerate(t.partitions):
            if budget <= 0:
                break
            current = max(group.offsets.get(pidx, 0), part.start_offset)
            batch = part.read_from(current, budget)
            if batch:
                out.extend(batch)
                group.offsets[pidx] = batch[-1].offset + 1
                budget -= len(batch)
        out.sort(key=lambda r: (r.timestamp_ns, r.partition, r.offset))
        return out

    def lag(self, group_id: str, topic: str) -> int:
        """Total records the group has not yet consumed."""
        t = self._topic(topic)
        group = self._group(group_id, topic)
        total = 0
        for pidx, part in enumerate(t.partitions):
            committed = max(group.offsets.get(pidx, 0), part.start_offset)
            total += part.end_offset - committed
        return total

    def seek_to_beginning(self, group_id: str, topic: str) -> None:
        """Rewind a group to the log start offsets (replay)."""
        t = self._topic(topic)
        group = self._group(group_id, topic)
        for pidx, part in enumerate(t.partitions):
            group.offsets[pidx] = part.start_offset

    # ------------------------------------------------------------------
    # Retention & stats
    # ------------------------------------------------------------------
    def enforce_retention(self) -> int:
        """Apply per-topic time retention; returns total records expired."""
        expired = 0
        now = self._clock.now_ns
        for t in self._topics.values():
            if t.config.retention_ns is None:
                continue
            cutoff = now - t.config.retention_ns
            for part in t.partitions:
                expired += part.expire_before(cutoff)
        return expired

    def topic_stats(self, topic: str) -> dict[str, int]:
        """Counters consumed by the kafka-exporter."""
        t = self._topic(topic)
        return {
            "partitions": len(t.partitions),
            "total_produced": t.total_produced,
            "total_bytes": t.total_bytes,
            "retained_records": sum(len(p.records) for p in t.partitions),
            "log_start_offset_sum": sum(p.start_offset for p in t.partitions),
        }

    def group_ids(self) -> list[tuple[str, str]]:
        return sorted(self._groups)


def _stable_hash(key: str) -> int:
    """FNV-1a — deterministic across processes, unlike ``hash()``."""
    h = 0xCBF29CE484222325
    for byte in key.encode():
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
