"""The broker: topics, partitions, consumer groups, retention.

Modeled after the subset of Apache Kafka the paper's pipeline uses.  The
HMS collector produces Redfish events into topics; rsyslog aggregators
produce syslog; the Telemetry API consumes on behalf of clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import (
    CapacityError,
    NotFoundError,
    StateError,
    ValidationError,
)
from repro.common.hashing import fnv1a_64, mix64
from repro.common.simclock import SimClock

#: Suffix appended to a topic's name to form its dead-letter topic.
DLQ_SUFFIX = ".dlq"


@dataclass(frozen=True)
class Record:
    """A single message in a topic partition."""

    topic: str
    partition: int
    offset: int
    timestamp_ns: int
    key: str | None
    value: str
    #: Kafka-style headers: out-of-band metadata (e.g. trace context)
    #: that rides the record without touching the payload bytes.
    headers: tuple[tuple[str, str], ...] = ()

    def size_bytes(self) -> int:
        """Approximate wire size (key + value, UTF-8)."""
        return len(self.value.encode()) + (len(self.key.encode()) if self.key else 0)

    def header(self, name: str) -> str | None:
        for key, value in self.headers:
            if key == name:
                return value
        return None


@dataclass
class TopicConfig:
    """Creation-time configuration for a topic."""

    partitions: int = 4
    retention_ns: int | None = None  # None = keep forever
    #: Bound on records resident per partition.  ``None`` = unbounded
    #: (the legacy telemetry topics).  A full partition refuses produce
    #: with :class:`CapacityError` — the backpressure signal.
    max_records_per_partition: int | None = None

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ValidationError("topic needs at least one partition")
        if self.retention_ns is not None and self.retention_ns <= 0:
            raise ValidationError("retention must be positive or None")
        if (
            self.max_records_per_partition is not None
            and self.max_records_per_partition < 1
        ):
            raise ValidationError("partition bound must be positive or None")


class _Partition:
    """One partition: an append-only list plus a log-start offset.

    Records before ``start_offset`` have been deleted by retention; the
    list only holds ``records[start_offset:]``.
    """

    __slots__ = ("records", "start_offset")

    def __init__(self) -> None:
        self.records: list[Record] = []
        self.start_offset = 0

    @property
    def end_offset(self) -> int:
        """Offset that the *next* record will receive."""
        return self.start_offset + len(self.records)

    def append(self, record: Record) -> None:
        self.records.append(record)

    def read_from(self, offset: int, max_records: int) -> list[Record]:
        offset = max(offset, self.start_offset)
        idx = offset - self.start_offset
        return self.records[idx : idx + max_records]

    def expire_before(self, cutoff_ns: int) -> int:
        """Drop records older than ``cutoff_ns``; return how many were dropped."""
        drop = 0
        for rec in self.records:
            if rec.timestamp_ns < cutoff_ns:
                drop += 1
            else:
                break
        if drop:
            del self.records[:drop]
            self.start_offset += drop
        return drop


class _Topic:
    def __init__(self, name: str, config: TopicConfig) -> None:
        self.name = name
        self.config = config
        self.partitions = [_Partition() for _ in range(config.partitions)]
        self.total_produced = 0
        self.total_bytes = 0
        #: Records handed to consumers by :meth:`Broker.poll` — counts
        #: every delivery, so a redelivered record counts again (the gap
        #: between produced and consumed is fan-out plus redelivery).
        self.total_consumed = 0
        self.backpressure_rejections = 0


@dataclass
class ConsumerGroup:
    """Offsets for one consumer group on one topic.

    ``offsets`` are the *committed* offsets — the group's durable
    progress, what it resumes from after a crash.  ``positions`` are the
    in-memory read positions a live consumer advances as it polls; under
    auto-commit the two move together (the legacy at-most-once mode),
    under manual commit they diverge until :meth:`Broker.commit`.
    """

    group_id: str
    topic: str
    offsets: dict[int, int] = field(default_factory=dict)
    positions: dict[int, int] = field(default_factory=dict)


class Broker:
    """A deterministic single-process message broker.

    Parameters
    ----------
    clock:
        Simulated clock used to timestamp records and drive retention.
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._topics: dict[str, _Topic] = {}
        self._groups: dict[tuple[str, str], ConsumerGroup] = {}
        #: (group, topic, partition, offset) -> failed delivery attempts.
        self._delivery_failures: dict[tuple[str, str, int, int], int] = {}
        self.records_dead_lettered = 0

    # ------------------------------------------------------------------
    # Topic management
    # ------------------------------------------------------------------
    def create_topic(self, name: str, config: TopicConfig | None = None) -> None:
        """Create ``name``; idempotent only if the topic does not exist yet."""
        if not name:
            raise ValidationError("topic name cannot be empty")
        if name in self._topics:
            raise StateError(f"topic already exists: {name}")
        self._topics[name] = _Topic(name, config or TopicConfig())

    def ensure_topic(self, name: str, config: TopicConfig | None = None) -> None:
        """Create ``name`` if missing; no-op if it already exists."""
        if name not in self._topics:
            self.create_topic(name, config)

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def _topic(self, name: str) -> _Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise NotFoundError(f"no such topic: {name}") from None

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def produce(
        self,
        topic: str,
        value: str,
        key: str | None = None,
        timestamp_ns: int | None = None,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> Record:
        """Append a message; keyed messages land deterministically on one
        partition so per-key ordering holds (per-sensor, per-xname...)."""
        t = self._topic(topic)
        if key is None:
            # Round-robin for un-keyed records.
            partition = t.total_produced % len(t.partitions)
        else:
            partition = _stable_hash(key) % len(t.partitions)
        part = t.partitions[partition]
        bound = t.config.max_records_per_partition
        if bound is not None and len(part.records) >= bound:
            t.backpressure_rejections += 1
            raise CapacityError(
                f"topic {topic!r} partition {partition} is full "
                f"({bound} records); consumer lagging — backpressure"
            )
        record = Record(
            topic=topic,
            partition=partition,
            offset=part.end_offset,
            timestamp_ns=timestamp_ns if timestamp_ns is not None else self._clock.now_ns,
            key=key,
            value=value,
            headers=headers,
        )
        part.append(record)
        t.total_produced += 1
        t.total_bytes += record.size_bytes()
        return record

    def produce_batch(
        self, topic: str, values: Iterable[str], key: str | None = None
    ) -> int:
        """Produce many values; returns the count."""
        n = 0
        for v in values:
            self.produce(topic, v, key=key)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def _group(self, group_id: str, topic: str) -> ConsumerGroup:
        key = (group_id, topic)
        if key not in self._groups:
            t = self._topic(topic)
            starts = {
                p: t.partitions[p].start_offset for p in range(len(t.partitions))
            }
            self._groups[key] = ConsumerGroup(
                group_id, topic, dict(starts), dict(starts)
            )
        return self._groups[key]

    def poll(
        self,
        group_id: str,
        topic: str,
        max_records: int = 500,
        auto_commit: bool = True,
    ) -> list[Record]:
        """Fetch up to ``max_records`` new records for ``group_id``.

        With ``auto_commit`` (the legacy default) the advanced offsets are
        committed as they are read — at-most-once, adequate for telemetry
        streams.  With ``auto_commit=False`` only the in-memory read
        position advances; the records stay uncommitted until
        :meth:`commit`, so a consumer that crashes (modelled by
        :meth:`reset_to_committed`) sees them redelivered — at-least-once.
        """
        if max_records < 1:
            raise ValidationError("max_records must be positive")
        t = self._topic(topic)
        group = self._group(group_id, topic)
        out: list[Record] = []
        budget = max_records
        for pidx, part in enumerate(t.partitions):
            if budget <= 0:
                break
            current = max(group.positions.get(pidx, 0), part.start_offset)
            batch = part.read_from(current, budget)
            if batch:
                out.extend(batch)
                group.positions[pidx] = batch[-1].offset + 1
                budget -= len(batch)
        if auto_commit:
            group.offsets.update(group.positions)
        t.total_consumed += len(out)
        out.sort(key=lambda r: (r.timestamp_ns, r.partition, r.offset))
        return out

    def commit(self, group_id: str, topic: str) -> int:
        """Commit the group's read positions; returns records committed."""
        group = self._group(group_id, topic)
        newly = sum(
            max(0, pos - group.offsets.get(pidx, 0))
            for pidx, pos in group.positions.items()
        )
        group.offsets.update(group.positions)
        return newly

    def committed(self, group_id: str, topic: str) -> dict[int, int]:
        """The group's committed offset per partition — what survives a
        consumer crash, and what lag accounting runs against."""
        return dict(self._group(group_id, topic).offsets)

    def seek(self, group_id: str, topic: str, partition: int, offset: int) -> None:
        """Move the group's read position on one partition (not the
        committed offset) — how a manual-commit consumer re-reads a
        record whose processing failed."""
        t = self._topic(topic)
        if not 0 <= partition < len(t.partitions):
            raise ValidationError(f"no partition {partition} in topic {topic!r}")
        group = self._group(group_id, topic)
        group.positions[partition] = max(
            offset, t.partitions[partition].start_offset
        )

    def reset_to_committed(self, group_id: str, topic: str) -> int:
        """Rewind read positions to the committed offsets — what a
        restarted consumer does after a crash.  Returns the number of
        read-but-uncommitted records that will be redelivered."""
        group = self._group(group_id, topic)
        rewound = sum(
            max(0, pos - group.offsets.get(pidx, 0))
            for pidx, pos in group.positions.items()
        )
        group.positions = dict(group.offsets)
        return rewound

    def lag(self, group_id: str, topic: str) -> int:
        """Total records beyond the group's *committed* offsets — under
        manual commit, read-but-uncommitted records still count as lag."""
        t = self._topic(topic)
        group = self._group(group_id, topic)
        total = 0
        for pidx, part in enumerate(t.partitions):
            committed = max(group.offsets.get(pidx, 0), part.start_offset)
            total += part.end_offset - committed
        return total

    def seek_to_beginning(self, group_id: str, topic: str) -> None:
        """Rewind a group to the log start offsets (replay)."""
        t = self._topic(topic)
        group = self._group(group_id, topic)
        for pidx, part in enumerate(t.partitions):
            group.offsets[pidx] = part.start_offset
            group.positions[pidx] = part.start_offset

    # ------------------------------------------------------------------
    # Dead-letter queues
    # ------------------------------------------------------------------
    def dlq_topic(self, topic: str) -> str:
        return topic + DLQ_SUFFIX

    def fail_delivery(
        self,
        group_id: str,
        record: Record,
        error: str,
        max_failures: int = 3,
    ) -> bool:
        """Report that ``group_id`` failed to process ``record``.

        Failure counts accumulate per (group, record).  Below
        ``max_failures`` the caller is expected to :meth:`seek` back and
        retry (returns ``False``).  At ``max_failures`` the record is a
        *poison record*: it is quarantined into the topic's dead-letter
        queue with provenance headers and the caller should commit past
        it (returns ``True``).
        """
        if max_failures < 1:
            raise ValidationError("max_failures must be positive")
        key = (group_id, record.topic, record.partition, record.offset)
        count = self._delivery_failures.get(key, 0) + 1
        if count < max_failures:
            self._delivery_failures[key] = count
            return False
        self._delivery_failures.pop(key, None)
        dlq = self.dlq_topic(record.topic)
        self.ensure_topic(dlq, TopicConfig(partitions=1))
        self.produce(
            dlq,
            record.value,
            key=record.key,
            timestamp_ns=record.timestamp_ns,
            headers=record.headers
            + (
                ("dlq-source-topic", record.topic),
                ("dlq-source-partition", str(record.partition)),
                ("dlq-source-offset", str(record.offset)),
                ("dlq-failures", str(count)),
                ("dlq-error", error),
                ("dlq-group", group_id),
            ),
        )
        self.records_dead_lettered += 1
        return True

    def dlq_depth(self, topic: str) -> int:
        """Records quarantined in ``topic``'s dead-letter queue."""
        dlq = self._topics.get(self.dlq_topic(topic))
        if dlq is None:
            return 0
        return sum(len(p.records) for p in dlq.partitions)

    # ------------------------------------------------------------------
    # Retention & stats
    # ------------------------------------------------------------------
    def enforce_retention(self) -> int:
        """Apply per-topic time retention; returns total records expired."""
        expired = 0
        now = self._clock.now_ns
        for t in self._topics.values():
            if t.config.retention_ns is None:
                continue
            cutoff = now - t.config.retention_ns
            for part in t.partitions:
                expired += part.expire_before(cutoff)
        return expired

    def topic_stats(self, topic: str) -> dict[str, int]:
        """Counters consumed by the kafka-exporter."""
        t = self._topic(topic)
        return {
            "partitions": len(t.partitions),
            "total_produced": t.total_produced,
            "total_consumed": t.total_consumed,
            "total_bytes": t.total_bytes,
            "retained_records": sum(len(p.records) for p in t.partitions),
            "log_start_offset_sum": sum(p.start_offset for p in t.partitions),
            "backpressure_rejections": t.backpressure_rejections,
        }

    def group_ids(self) -> list[tuple[str, str]]:
        return sorted(self._groups)


def _stable_hash(key: str) -> int:
    """Deterministic across processes, unlike ``hash()``.

    Finalized FNV-1a: raw FNV avalanches poorly in the low bits for
    short structured keys (``x1000c0s3b0n0``-style hostnames differing
    in one digit), and ``% partitions`` reads exactly those bits — the
    same skew the ring placement fixed.  The SplitMix64 finalizer
    decorrelates them.
    """
    return mix64(fnv1a_64(key.encode()))
