"""Console log collection (conman-style).

Paper §III.C lists "console logs" among OMNI's event data and Figure 1
routes them through Kafka like syslog.  This module models the console
concentrator: every node has a serial console whose output (boot
messages, kernel chatter, and — critically — panics and MCEs) is
captured per-node and published to a Kafka topic.

A kernel panic on the console is often the *only* trace of a crashed
node, which is why console capture exists; the framework's rules grep
for exactly those signatures.
"""

from __future__ import annotations

import numpy as np

from repro.bus.broker import Broker, TopicConfig
from repro.common.errors import ValidationError
from repro.common.jsonutil import dumps_compact
from repro.common.simclock import SimClock
from repro.common.xname import XName

TOPIC_CONSOLE_LOGS = "shasta-console-logs"

#: (weight, template) — ordinary console chatter.
_CHATTER = [
    (10.0, "systemd[1]: Started {unit}."),
    (6.0, "kernel: perf: interrupt took too long ({n} > {n2}), lowering rate"),
    (4.0, "login: root login on ttyS0"),
    (3.0, "kernel: hrtimer: interrupt took {n} ns"),
    (2.0, "NetworkManager[{pid}]: <info> device hsn0: state change"),
]

_UNITS = ("munge.service", "slurmd.service", "dvs.service", "nscd.service")

#: The signatures the panic rule greps for.
PANIC_LINES = (
    "kernel: Kernel panic - not syncing: Fatal hardware error",
    "kernel: mce: [Hardware Error]: CPU {cpu}: Machine Check Exception",
    "kernel: Kernel panic - not syncing: Attempted to kill init!",
)


class ConsoleCollector:
    """Per-node console streams, published as envelopes to Kafka."""

    def __init__(
        self,
        broker: Broker,
        clock: SimClock,
        nodes: list[XName],
        cluster: str = "perlmutter",
        seed: int = 0,
    ) -> None:
        if not nodes:
            raise ValidationError("console collector needs nodes")
        broker.ensure_topic(TOPIC_CONSOLE_LOGS, TopicConfig(partitions=4))
        self._broker = broker
        self._clock = clock
        self._nodes = [str(x) for x in nodes]
        self._cluster = cluster
        self._rng = np.random.default_rng(seed)
        weights = np.array([w for w, _ in _CHATTER])
        self._probs = weights / weights.sum()
        self.lines_published = 0

    def _publish(self, node: str, line: str) -> None:
        envelope = {
            "labels": {
                "cluster": self._cluster,
                "data_type": "console_log",
                "hostname": node,
            },
            "ts": self._clock.now_ns,
            "line": line,
        }
        self._broker.produce(
            TOPIC_CONSOLE_LOGS, dumps_compact(envelope), key=node,
            timestamp_ns=self._clock.now_ns,
        )
        self.lines_published += 1

    def emit_chatter(self, lines: int) -> int:
        """Publish ``lines`` of ordinary console noise across the fleet."""
        if lines < 0:
            raise ValidationError("line count must be non-negative")
        picks = self._rng.choice(len(_CHATTER), size=lines, p=self._probs)
        node_idx = self._rng.integers(0, len(self._nodes), size=lines)
        numbers = self._rng.integers(1000, 99999, size=(lines, 3))
        for i in range(lines):
            _w, template = _CHATTER[int(picks[i])]
            line = template.format(
                unit=_UNITS[int(numbers[i][0]) % len(_UNITS)],
                n=int(numbers[i][0]),
                n2=int(numbers[i][1]),
                pid=int(numbers[i][2]) % 32768,
            )
            self._publish(self._nodes[int(node_idx[i])], line)
        return lines

    def emit_panic(self, node: XName | str, kind: int = 0) -> str:
        """Publish a kernel panic signature for ``node``; returns the line."""
        name = str(node)
        if name not in self._nodes:
            raise ValidationError(f"{name} has no console here")
        template = PANIC_LINES[kind % len(PANIC_LINES)]
        line = template.format(cpu=int(self._rng.integers(0, 64)))
        self._publish(name, line)
        return line

    def run_periodic(self, interval_ns: int, lines_per_tick: int = 5) -> None:
        """Background chatter on the simulated clock."""
        self._clock.every(interval_ns, lambda: self.emit_chatter(lines_per_tick))
