"""Shasta monitoring-plane simulation.

Implements the HPE-provided pieces of the paper's Figure 1 pipeline:

* :mod:`repro.shasta.redfish` — Redfish event payloads in the exact nested
  JSON shape of the paper's Figure 2, plus an event source that watches the
  synthetic cluster and emits events on state transitions.
* :mod:`repro.shasta.hms` — the HMS (hardware management service) collector
  that pushes Redfish events and sensor telemetry into Kafka topics.
* :mod:`repro.shasta.fabric_manager` — the Slingshot Fabric Manager switch
  state API and the NERSC monitor program that polls it (§IV.B).
* :mod:`repro.shasta.telemetry_api` — the authenticated middleman between
  Kafka and data consumers.
"""

from repro.shasta.redfish import RedfishEvent, RedfishEventSource, telemetry_payload
from repro.shasta.hms import HmsCollector, TOPIC_REDFISH_EVENTS, TOPIC_SENSOR_TELEMETRY
from repro.shasta.fabric_manager import FabricManager, FabricManagerMonitor
from repro.shasta.telemetry_api import TelemetryAPI, Subscription

__all__ = [
    "RedfishEvent",
    "RedfishEventSource",
    "telemetry_payload",
    "HmsCollector",
    "TOPIC_REDFISH_EVENTS",
    "TOPIC_SENSOR_TELEMETRY",
    "FabricManager",
    "FabricManagerMonitor",
    "TelemetryAPI",
    "Subscription",
]
