"""The Shasta Telemetry API.

Paper §IV workflow: "The telemetry API server acts as a middleman between
Kafka and data consumers and is responsible for authentication and
balancing income requests. The telemetry API client then sends a request
to the API server and creates a subscription to a Kafka topic."

This module implements that middleman: token authentication, per-client
subscriptions backed by broker consumer groups, and round-robin balancing
of fetches across a configurable number of API server replicas (tracked
so the balancing behaviour is testable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.broker import Broker, Record
from repro.common.errors import AuthError, StateError, ValidationError


@dataclass
class Subscription:
    """A client's live subscription to one topic."""

    subscription_id: str
    topic: str
    client: str
    group_id: str
    closed: bool = False
    records_delivered: int = 0


@dataclass
class _ServerStats:
    requests_served: int = 0
    records_served: int = 0


class TelemetryAPI:
    """Authenticated, balanced access to the telemetry bus."""

    def __init__(self, broker: Broker, servers: int = 2) -> None:
        if servers < 1:
            raise ValidationError("need at least one API server")
        self._broker = broker
        self._tokens: dict[str, str] = {}  # token -> client name
        self._subscriptions: dict[str, Subscription] = {}
        self._servers = [_ServerStats() for _ in range(servers)]
        self._next_server = 0
        self._sub_counter = 0
        #: Which replica served the most recent fetch (span attribution).
        self.last_server_index: int | None = None

    # ------------------------------------------------------------------
    # Authentication
    # ------------------------------------------------------------------
    def register_client(self, client: str, token: str) -> None:
        """Provision an access token for ``client``."""
        if not token:
            raise ValidationError("empty token")
        if token in self._tokens:
            raise StateError("token already registered")
        self._tokens[token] = client

    def _authenticate(self, token: str) -> str:
        try:
            return self._tokens[token]
        except KeyError:
            raise AuthError("invalid telemetry API token") from None

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, token: str, topic: str) -> Subscription:
        """Create a subscription; the group id isolates this client's
        offsets so independent consumers replay independently."""
        client = self._authenticate(token)
        if topic not in self._broker.topics():
            # Surface the broker's error type for a missing topic.
            self._broker.poll(client, topic, 1)  # raises NotFoundError
        self._sub_counter += 1
        sub_id = f"sub-{self._sub_counter}"
        sub = Subscription(
            subscription_id=sub_id,
            topic=topic,
            client=client,
            group_id=f"telemetry-api/{client}/{topic}",
        )
        self._subscriptions[sub_id] = sub
        return sub

    def fetch(
        self,
        sub: Subscription,
        max_records: int = 500,
        auto_commit: bool = True,
    ) -> list[Record]:
        """Fetch the next batch for a subscription (balanced).

        ``auto_commit=True`` is the legacy at-most-once mode; with
        ``auto_commit=False`` the client owns its offsets and must call
        :meth:`commit` after processing (at-least-once).
        """
        if sub.closed:
            raise StateError(f"subscription {sub.subscription_id} is closed")
        if sub.subscription_id not in self._subscriptions:
            raise StateError("unknown subscription")
        server = self._servers[self._next_server]
        self.last_server_index = self._next_server
        self._next_server = (self._next_server + 1) % len(self._servers)
        records = self._broker.poll(
            sub.group_id, sub.topic, max_records, auto_commit=auto_commit
        )
        server.requests_served += 1
        server.records_served += len(records)
        sub.records_delivered += len(records)
        return records

    # ------------------------------------------------------------------
    # Manual-commit surface (at-least-once consumers)
    # ------------------------------------------------------------------
    def commit(self, sub: Subscription) -> int:
        """Commit the subscription's read positions; returns records
        newly covered by the commit."""
        return self._broker.commit(sub.group_id, sub.topic)

    def seek(self, sub: Subscription, partition: int, offset: int) -> None:
        """Rewind the read position on one partition for reprocessing."""
        self._broker.seek(sub.group_id, sub.topic, partition, offset)

    def fail_delivery(
        self, sub: Subscription, record: Record, error: str, max_failures: int = 3
    ) -> bool:
        """Report a processing failure; ``True`` = record quarantined to
        the topic's dead-letter queue and should be committed past."""
        return self._broker.fail_delivery(
            sub.group_id, record, error, max_failures
        )

    def lag(self, sub: Subscription) -> int:
        """Records beyond the subscription's committed offsets."""
        return self._broker.lag(sub.group_id, sub.topic)

    def close(self, sub: Subscription) -> None:
        sub.closed = True
        self._subscriptions.pop(sub.subscription_id, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def server_request_counts(self) -> list[int]:
        """Requests served per replica — evidence of load balancing."""
        return [s.requests_served for s in self._servers]

    def active_subscriptions(self) -> list[Subscription]:
        return sorted(self._subscriptions.values(), key=lambda s: s.subscription_id)
