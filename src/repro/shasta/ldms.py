"""LDMS: the Lightweight Distributed Metric Service sampler plane.

Figure 1 of the paper routes "LDMS metrics" through Kafka alongside the
environmental data.  LDMS samples *host-side* OS metrics on every compute
node (load, memory, network counters) at high frequency — complementary
to the Redfish hardware telemetry.  This module models the samplers and
their aggregator, publishing per-node metric sets into a Kafka topic in
the same JSON envelope the sensor pipeline uses.
"""

from __future__ import annotations

import numpy as np

from repro.bus.broker import Broker, TopicConfig
from repro.common.errors import ValidationError
from repro.common.jsonutil import dumps_compact
from repro.common.simclock import SimClock
from repro.cluster.topology import Cluster, NodeState

TOPIC_LDMS = "cray-ldms-metrics"

#: metric name -> (mean, stddev, is_counter)
_METRICS: dict[str, tuple[float, float, bool]] = {
    "ldms_loadavg_1m": (8.0, 4.0, False),
    "ldms_mem_used_gb": (180.0, 40.0, False),
    "ldms_hsn_tx_bytes": (2.0e9, 8.0e8, True),
    "ldms_hsn_rx_bytes": (2.0e9, 8.0e8, True),
    "ldms_procs_running": (64.0, 20.0, False),
}


class LdmsAggregator:
    """Samples every UP node and publishes one envelope per node.

    Counters accumulate; gauges are mean-reverting draws.  Down nodes
    stop reporting — their silence is itself a signal (the `up`-style
    absence the threshold rules catch via ``node_up``).
    """

    def __init__(
        self,
        broker: Broker,
        clock: SimClock,
        cluster: Cluster,
        seed: int = 0,
        cluster_name: str = "perlmutter",
    ) -> None:
        broker.ensure_topic(TOPIC_LDMS, TopicConfig(partitions=4))
        self._broker = broker
        self._clock = clock
        self._cluster = cluster
        self._cluster_name = cluster_name
        self._rng = np.random.default_rng(seed)
        self._nodes = sorted(cluster.nodes)
        n = len(self._nodes)
        self._counters = {
            name: np.zeros(n)
            for name, (_, _, is_counter) in _METRICS.items()
            if is_counter
        }
        self.samples_published = 0

    def sample_once(self) -> int:
        """One sampling pass over the fleet; returns envelopes published."""
        now = self._clock.now_ns
        published = 0
        gauges = {}
        for name, (mean, std, is_counter) in _METRICS.items():
            draws = mean + std * self._rng.standard_normal(len(self._nodes))
            draws = np.maximum(draws, 0.0)
            if is_counter:
                self._counters[name] += draws
                gauges[name] = self._counters[name]
            else:
                gauges[name] = draws
        for i, xname in enumerate(self._nodes):
            if self._cluster.nodes[xname].state is not NodeState.UP:
                continue
            metrics = {name: round(float(values[i]), 3)
                       for name, values in gauges.items()}
            envelope = {
                "Context": str(xname),
                "Timestamp": now,
                "Cluster": self._cluster_name,
                "Metrics": metrics,
            }
            self._broker.produce(
                TOPIC_LDMS, dumps_compact(envelope), key=str(xname),
                timestamp_ns=now,
            )
            published += 1
        self.samples_published += published
        return published

    def run_periodic(self, interval_ns: int) -> None:
        self._clock.every(interval_ns, lambda: self.sample_once())


class LdmsConsumer:
    """The k3s pod reading LDMS envelopes into VictoriaMetrics."""

    def __init__(self, api, token: str, warehouse) -> None:
        self._api = api
        self._warehouse = warehouse
        self._sub = api.subscribe(token, TOPIC_LDMS)
        self.records_processed = 0
        self.records_failed = 0

    def pump(self, max_records: int = 1000) -> int:
        from repro.common.jsonutil import loads

        records = self._api.fetch(self._sub, max_records)
        done = 0
        for record in records:
            try:
                envelope = loads(record.value)
                context = envelope["Context"]
                ts = int(envelope["Timestamp"])
                cluster = envelope.get("Cluster", "")
                metrics = envelope["Metrics"]
                for name, value in metrics.items():
                    self._warehouse.ingest_metric(
                        name,
                        {"xname": context, "cluster": cluster},
                        float(value),
                        ts,
                    )
                done += 1
            except (KeyError, TypeError, ValueError, ValidationError):
                self.records_failed += 1
        self.records_processed += done
        return done
