"""Redfish events in the paper's exact wire format.

Figure 2 of the paper shows a leak event as pulled from the Telemetry API:

.. code-block:: json

    {"metrics": {"messages": [{
        "Context": "x1203c1b0",
        "Events": [{
            "EventTimestamp": "2022-03-03T01:47:57+00:00",
            "Severity": "Warning",
            "Message": "Sensor 'A' of the redundant leak sensors in the
                        'Front' cabinet zone has detected a leak.",
            "MessageId": "CrayAlerts.1.0.CabinetLeakDetected",
            "MessageArgs": ["A, Front"],
            "OriginOfCondition": {"@odata.id": "/redfish/v1/Chassis/Enclosure"}
        }]
    }]}}

This module builds those payloads and provides an event *source* that
watches the synthetic cluster for state transitions (leak detected /
cleared, power state changes) and emits the corresponding events, exactly
as the BMC Redfish endpoints push to the HMS collector in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.jsonutil import ns_to_iso8601
from repro.common.simclock import SimClock
from repro.common.xname import XName
from repro.cluster.topology import Cluster, NodeState

MSG_ID_LEAK = "CrayAlerts.1.0.CabinetLeakDetected"
MSG_ID_LEAK_CLEARED = "CrayAlerts.1.0.CabinetLeakCleared"
MSG_ID_POWER_OFF = "CrayAlerts.1.0.PowerStateChangedToOff"
MSG_ID_POWER_ON = "CrayAlerts.1.0.PowerStateChangedToOn"

ODATA_ENCLOSURE = "/redfish/v1/Chassis/Enclosure"
ODATA_NODE = "/redfish/v1/Systems/Node"


@dataclass(frozen=True)
class RedfishEvent:
    """A single Redfish event, pre-serialisation."""

    context: str  # xname of the reporting controller
    timestamp_ns: int
    severity: str
    message: str
    message_id: str
    message_args: tuple[str, ...] = ()
    origin_odata_id: str = ODATA_ENCLOSURE

    def to_json_obj(self) -> dict[str, Any]:
        """The ``Events[i]`` element of the Figure-2 payload."""
        return {
            "EventTimestamp": ns_to_iso8601(self.timestamp_ns),
            "Severity": self.severity,
            "Message": self.message,
            "MessageId": self.message_id,
            "MessageArgs": list(self.message_args),
            "OriginOfCondition": {"@odata.id": self.origin_odata_id},
        }


def telemetry_payload(events: list[RedfishEvent]) -> dict[str, Any]:
    """Wrap events into the nested Telemetry-API JSON of Figure 2.

    Events are grouped into one ``messages`` element per reporting context,
    preserving arrival order within each context.
    """
    by_context: dict[str, list[RedfishEvent]] = {}
    order: list[str] = []
    for ev in events:
        if ev.context not in by_context:
            by_context[ev.context] = []
            order.append(ev.context)
        by_context[ev.context].append(ev)
    return {
        "metrics": {
            "messages": [
                {
                    "Context": ctx,
                    "Events": [ev.to_json_obj() for ev in by_context[ctx]],
                }
                for ctx in order
            ]
        }
    }


def cabinet_leak_event(
    controller: XName, zone: str, sensor: str, timestamp_ns: int, detected: bool = True
) -> RedfishEvent:
    """Build the paper's leak event (or its all-clear counterpart)."""
    if detected:
        message = (
            f"Sensor '{sensor}' of the redundant leak sensors in the "
            f"'{zone}' cabinet zone has detected a leak."
        )
        return RedfishEvent(
            context=str(controller),
            timestamp_ns=timestamp_ns,
            severity="Warning",
            message=message,
            message_id=MSG_ID_LEAK,
            message_args=(f"{sensor}, {zone}",),
            origin_odata_id=ODATA_ENCLOSURE,
        )
    message = (
        f"Sensor '{sensor}' of the redundant leak sensors in the "
        f"'{zone}' cabinet zone is no longer detecting a leak."
    )
    return RedfishEvent(
        context=str(controller),
        timestamp_ns=timestamp_ns,
        severity="OK",
        message=message,
        message_id=MSG_ID_LEAK_CLEARED,
        message_args=(f"{sensor}, {zone}",),
        origin_odata_id=ODATA_ENCLOSURE,
    )


def node_power_event(
    node: XName, timestamp_ns: int, powered_on: bool
) -> RedfishEvent:
    state = "On" if powered_on else "Off"
    return RedfishEvent(
        context=str(node.parent() or node),
        timestamp_ns=timestamp_ns,
        severity="OK" if powered_on else "Critical",
        message=f"The power state of node {node} has changed to {state}.",
        message_id=MSG_ID_POWER_ON if powered_on else MSG_ID_POWER_OFF,
        message_args=(str(node), state),
        origin_odata_id=ODATA_NODE,
    )


class RedfishEventSource:
    """Watches cluster state and emits Redfish events on transitions.

    BMC Redfish endpoints are event-driven; we reproduce that by diffing the
    observable state (leak sensors, node power) between polls.  The chassis
    controller of chassis 1 reports cabinet-zone leaks, matching the paper's
    ``x1203c1b0`` context for a cabinet-level event.
    """

    def __init__(self, cluster: Cluster, clock: SimClock) -> None:
        self._cluster = cluster
        self._clock = clock
        self._leak_seen: dict[tuple[str, str, str], bool] = {}
        self._node_seen: dict[XName, NodeState] = {}
        self._prime()

    def _prime(self) -> None:
        for cab_x, cab in self._cluster.cabinets.items():
            for (zone, sensor), state in cab.leak_state.items():
                self._leak_seen[(str(cab_x), zone, sensor)] = state
        for node_x, node in self._cluster.nodes.items():
            self._node_seen[node_x] = node.state

    def _cabinet_reporting_controller(self, cab_x: XName) -> XName:
        """The chassis BMC that carries cabinet-environment events."""
        cab = self._cluster.cabinets[cab_x]
        first_chassis = cab.chassis[0] if len(cab.chassis) == 1 else cab.chassis[1]
        return self._cluster.chassis_controller_xname(first_chassis)

    def poll(self) -> list[RedfishEvent]:
        """Diff state since the last poll; return new events."""
        now = self._clock.now_ns
        events: list[RedfishEvent] = []
        for cab_x, cab in sorted(self._cluster.cabinets.items()):
            controller = self._cabinet_reporting_controller(cab_x)
            for (zone, sensor), state in sorted(cab.leak_state.items()):
                key = (str(cab_x), zone, sensor)
                prev = self._leak_seen.get(key, False)
                if state != prev:
                    events.append(
                        cabinet_leak_event(controller, zone, sensor, now, state)
                    )
                    self._leak_seen[key] = state
        for node_x, node in sorted(self._cluster.nodes.items()):
            prev_state = self._node_seen.get(node_x, NodeState.UP)
            if node.state != prev_state:
                events.append(
                    node_power_event(node_x, now, node.state is NodeState.UP)
                )
                self._node_seen[node_x] = node.state
        return events
