"""Slingshot Fabric Manager and the NERSC switch-state monitor (§IV.B).

The Fabric Manager "manages all switches [and] provides an API for
querying the state of each switch".  NERSC runs a Python program that
polls that API periodically and, on any state change, pushes an event
line to Loki in the exact format of the paper:

    [critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN

The monitor here is that program; its sink is pluggable (in production
wiring it is a Loki push client).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.simclock import SimClock
from repro.common.xname import XName
from repro.cluster.topology import Cluster, SwitchState

#: Labels the monitor attaches to its Loki stream (paper Fig. 7 shows
#: ``app`` and ``cluster``).
MONITOR_APP_LABEL = "fabric_manager_monitor"

_SEVERITY_FOR_STATE = {
    SwitchState.ONLINE: "info",
    SwitchState.OFFLINE: "critical",
    SwitchState.UNKNOWN: "critical",
}


class FabricManager:
    """The HPE-provided switch-state query API."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self.queries_served = 0

    def get_switch_states(self) -> dict[str, str]:
        """Return ``{xname: state}`` for every Rosetta switch."""
        self.queries_served += 1
        return {
            str(x): sw.state.value for x, sw in sorted(self._cluster.switches.items())
        }

    def get_switch_state(self, xname: XName | str) -> str:
        self.queries_served += 1
        return self._cluster.switch(xname).state.value


@dataclass(frozen=True)
class SwitchEvent:
    """One state-change observation from the monitor."""

    timestamp_ns: int
    severity: str
    problem: str
    xname: str
    state: str

    def to_line(self) -> str:
        """The paper's wire format (§IV.B sample event)."""
        return (
            f"[{self.severity}] problem:{self.problem}, "
            f"xname:{self.xname}, state:{self.state}"
        )


class FabricManagerMonitor:
    """NERSC's poller: query the FM API, emit an event on any state change.

    ``sink`` receives each :class:`SwitchEvent`; the production wiring
    forwards to Loki with labels ``{app="fabric_manager_monitor",
    cluster=<name>}``.
    """

    def __init__(
        self,
        fabric_manager: FabricManager,
        clock: SimClock,
        sink: Callable[[SwitchEvent], None],
        cluster_name: str = "perlmutter",
    ) -> None:
        self._fm = fabric_manager
        self._clock = clock
        self._sink = sink
        self.cluster_name = cluster_name
        self._last_states: dict[str, str] = self._fm.get_switch_states()
        self.events_emitted = 0

    def poll_once(self) -> list[SwitchEvent]:
        """One polling pass; emits events for every changed switch."""
        now = self._clock.now_ns
        current = self._fm.get_switch_states()
        events: list[SwitchEvent] = []
        for xname, state in current.items():
            prev = self._last_states.get(xname)
            if state != prev:
                sev = _SEVERITY_FOR_STATE[SwitchState(state)]
                problem = (
                    "fm_switch_offline"
                    if state != SwitchState.ONLINE.value
                    else "fm_switch_online"
                )
                event = SwitchEvent(
                    timestamp_ns=now,
                    severity=sev,
                    problem=problem,
                    xname=xname,
                    state=state,
                )
                events.append(event)
                self._sink(event)
        self._last_states = current
        self.events_emitted += len(events)
        return events

    def run_periodic(self, interval_ns: int) -> None:
        """Poll every ``interval_ns`` on the simulated clock."""
        self._clock.every(interval_ns, lambda: self.poll_once())
