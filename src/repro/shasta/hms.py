"""HMS (hardware management service) collector.

Paper §IV workflow: "Redfish endpoint on each controller push metrics and
events (e.g. power down) to an HMS collector. The HMS collector pushes
data to Kafka, where Kafka stores data in different topics by categories."

The collector serialises Redfish events into the Figure-2 payload and
sensor readings into per-sample JSON, keyed by reporting xname so that
per-component ordering is preserved across partitions.
"""

from __future__ import annotations

from repro.bus.broker import Broker, TopicConfig
from repro.common.jsonutil import dumps_compact
from repro.common.simclock import SimClock, days
from repro.cluster.sensors import SensorBank
from repro.shasta.redfish import RedfishEvent, RedfishEventSource, telemetry_payload
from repro.tempo.tracer import Tracer

TOPIC_REDFISH_EVENTS = "cray-dmtf-resource-event"
TOPIC_SENSOR_TELEMETRY = "cray-telemetry-sensor"
TOPIC_SYSLOG = "shasta-syslog"
TOPIC_CONTAINER_LOGS = "shasta-container-logs"

#: HPE keeps event data for no more than two months (paper §I) — the very
#: limitation OMNI exists to work around.
HPE_RETENTION_NS = days(60)

ALL_TOPICS = (
    TOPIC_REDFISH_EVENTS,
    TOPIC_SENSOR_TELEMETRY,
    TOPIC_SYSLOG,
    TOPIC_CONTAINER_LOGS,
)


class HmsCollector:
    """Bridges Redfish endpoints and sensors into Kafka topics."""

    def __init__(
        self,
        broker: Broker,
        clock: SimClock,
        event_source: RedfishEventSource | None = None,
        sensors: SensorBank | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._broker = broker
        self._clock = clock
        self._event_source = event_source
        self._sensors = sensors
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self.events_collected = 0
        self.samples_collected = 0
        for topic in ALL_TOPICS:
            broker.ensure_topic(
                topic, TopicConfig(partitions=4, retention_ns=HPE_RETENTION_NS)
            )

    def _trace_headers(
        self, name: str, start_ns: int, attributes: dict[str, str]
    ) -> tuple[tuple[str, str], ...]:
        """Root a trace at data birth; empty when tracing is off/sampled out."""
        if self._tracer is None:
            return ()
        ctx = self._tracer.record(
            "redfish", name, None, start_ns, self._clock.now_ns, attributes
        )
        if ctx is None:
            return ()
        return tuple(Tracer.inject(ctx).items())

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def publish_events(self, events: list[RedfishEvent]) -> int:
        """Publish events, one Telemetry-API payload per reporting context."""
        by_context: dict[str, list[RedfishEvent]] = {}
        for ev in events:
            by_context.setdefault(ev.context, []).append(ev)
        for context, ctx_events in by_context.items():
            payload = telemetry_payload(ctx_events)
            headers = self._trace_headers(
                "hms.publish_events",
                min(ev.timestamp_ns for ev in ctx_events),
                {"context": context, "events": str(len(ctx_events))},
            )
            self._broker.produce(
                TOPIC_REDFISH_EVENTS,
                dumps_compact(payload),
                key=context,
                headers=headers,
            )
        self.events_collected += len(events)
        return len(events)

    def collect_events(self) -> int:
        """Poll the Redfish source once and publish whatever transitioned."""
        if self._event_source is None:
            return 0
        events = self._event_source.poll()
        if events:
            self.publish_events(events)
        return len(events)

    # ------------------------------------------------------------------
    # Sensor telemetry
    # ------------------------------------------------------------------
    def collect_sensors(self) -> int:
        """Snapshot every sensor into the telemetry topic."""
        if self._sensors is None:
            return 0
        now = self._clock.now_ns
        n = 0
        for sid, value in self._sensors.read_all():
            sample = {
                "Context": str(sid.xname),
                "PhysicalContext": sid.kind.value,
                "Index": sid.index,
                "Timestamp": now,
                "Value": round(value, 3),
            }
            headers = self._trace_headers(
                "hms.sensor_sample",
                now,
                {"xname": str(sid.xname), "physical": sid.kind.value},
            )
            self._broker.produce(
                TOPIC_SENSOR_TELEMETRY,
                dumps_compact(sample),
                key=str(sid.xname),
                headers=headers,
            )
            n += 1
        self.samples_collected += n
        return n

    def run_periodic(self, event_interval_ns: int, sensor_interval_ns: int) -> None:
        """Register periodic collection on the simulated clock."""
        self._clock.every(event_interval_ns, lambda: self.collect_events())
        if self._sensors is not None:
            def sensor_tick() -> None:
                self._sensors.step()
                self.collect_sensors()

            self._clock.every(sensor_interval_ns, sensor_tick)
