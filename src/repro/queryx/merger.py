"""Recombining subquery partials into the final query result.

Two merge surfaces, matching the two query families:

- **Metric partials** are ``Series`` lists.  Within one time window the
  shard partials combine per (labels, instant) with the plan's merge
  op (sum / max / min — the op :mod:`planner` proved distributes over
  the stream partition); across time windows the per-label points
  simply concatenate, because every evaluation instant belongs to
  exactly one window.
- **Log partials** are ``(labels, entries)`` groups.  Shard streams are
  disjoint and time windows abut, so a plain union would do — but the
  merger uses the same max-multiplicity ``_merge_replicas`` as
  :class:`TieredLokiStore`, so a retried subquery whose partial ever
  arrived twice, or a hot/cold overlap inside one shard, still counts
  every entry exactly once.  Same dedup semantics end to end.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet
from repro.common.vector import Series
from repro.loki.model import LogEntry
from repro.queryx.planner import (
    MERGE_MAX,
    MERGE_MIN,
    MERGE_NONE,
    MERGE_SUM,
    QueryPlan,
    Subquery,
)
from repro.ring.distributor import _merge_replicas

_MERGE_FN = {
    MERGE_SUM: sum,
    MERGE_MAX: max,
    MERGE_MIN: min,
    MERGE_NONE: None,  # single shard: nothing to combine
}


def merge_metric_partials(
    plan: QueryPlan,
    partials: list[tuple[Subquery, list[Series]]],
) -> list[Series]:
    """Combine per-(window, shard) series lists into the final frame."""
    fn = _MERGE_FN.get(plan.merge, None)
    if plan.merge not in _MERGE_FN:
        raise ValidationError(f"not a metric merge class: {plan.merge!r}")
    # (labels, ts) -> shard values within the owning window.  Windows
    # partition the instants, so ts alone identifies the window.
    cells: dict[tuple[LabelSet, int], list[float]] = {}
    for _sub, series_list in partials:
        for series in series_list:
            for ts, value in series.points:
                cells.setdefault((series.labels, ts), []).append(value)
    merged: dict[LabelSet, list[tuple[int, float]]] = {}
    for (labels, ts), values in cells.items():
        if fn is None:
            if len(values) != 1:
                raise ValidationError(
                    "unsharded plan produced colliding partials"
                )
            value = values[0]
        else:
            value = float(fn(values))
        merged.setdefault(labels, []).append((ts, value))
    out = []
    for labels, points in merged.items():
        points.sort(key=lambda p: p[0])
        out.append(Series(labels, tuple(points)))
    out.sort(key=lambda s: s.labels.items_tuple())
    return out


def merge_log_partials(
    partials: list[tuple[Subquery, list[tuple[LabelSet, list[LogEntry]]]]],
) -> list[tuple[LabelSet, list[LogEntry]]]:
    """Union log groups across shards and windows, deduplicated with
    the tiered store's max-multiplicity semantics."""
    grouped: dict[LabelSet, list[list[LogEntry]]] = {}
    for _sub, groups in partials:
        for labels, entries in groups:
            grouped.setdefault(labels, []).append(entries)
    out = [
        (labels, _merge_replicas(entry_lists))
        for labels, entry_lists in grouped.items()
    ]
    out.sort(key=lambda pair: pair[0].items_tuple())
    return out
