"""Stream sharding for parallel query execution.

Loki's query sharding rewrites ``rate({job="x"}[5m])`` into
``sum(downstream<rate(...), shard=0_of_16> + ...)``: each downstream
only reads the streams whose label-hash lands in its shard, so the fan
out partitions work without double counting.  This module supplies the
two halves of that contract for the reproduction:

- :func:`shard_of` — the partition function, the same FNV-1a +
  SplitMix64 fingerprint the shipper index and ``LokiCluster`` use, so
  a stream lands in exactly one shard no matter which component asks.
- :class:`ShardedSource` — a store facade restricting ``select`` to one
  shard.  Stores that advertise ``supports_shard_hints`` get the shard
  pushed down (the gateway then prunes chunk refs *before* paying
  object-store GETs); anything else is post-filtered, which is slower
  but identical in result.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet, Matcher
from repro.loki.model import LogEntry
from repro.objstore.index import stream_fingerprint


def shard_of(labels: LabelSet, shard_count: int) -> int:
    """Which of ``shard_count`` shards owns this stream."""
    if shard_count < 1:
        raise ValidationError("shard_count must be >= 1")
    return stream_fingerprint(labels) % shard_count


class ShardedSource:
    """Restrict a store's ``select`` to one stream shard.

    Exactness: shards partition streams (every stream belongs to
    exactly one shard), so the union of all shards' selects equals the
    unsharded select and no pair of shards overlaps.
    """

    #: Accepts line hints itself (the LogQL engine pushes needles down
    #: per pipeline) and forwards them when the inner store can use them.
    supports_line_hints = True

    def __init__(
        self,
        inner,
        shard_index: int,
        shard_count: int,
        line_contains: Sequence[str] = (),
    ) -> None:
        if not 0 <= shard_index < shard_count:
            raise ValidationError(
                f"shard_index {shard_index} out of range for {shard_count} shards"
            )
        self._inner = inner
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.line_contains = tuple(line_contains)

    def select(
        self,
        matchers: Iterable[Matcher],
        start_ns: int,
        end_ns: int,
        line_contains: Sequence[str] = (),
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        matchers = list(matchers)
        needles = tuple(dict.fromkeys((*self.line_contains, *line_contains)))
        if getattr(self._inner, "supports_shard_hints", False):
            kwargs = {"shard": (self.shard_index, self.shard_count)}
            if needles and getattr(self._inner, "supports_line_hints", False):
                kwargs["line_contains"] = needles
            return self._inner.select(matchers, start_ns, end_ns, **kwargs)
        # Fallback: full select, keep only this shard's streams.  The
        # line-contains hint is only an optimization (the LogQL pipeline
        # re-applies the filter), so dropping it here is safe.
        return [
            (labels, entries)
            for labels, entries in self._inner.select(matchers, start_ns, end_ns)
            if shard_of(labels, self.shard_count) == self.shard_index
        ]
