"""ShardedQueryEngine: the queryx front door.

Implements the same ``query_range`` / ``query_logs`` surface as
:class:`~repro.loki.logql.engine.LogQLEngine`, so it can sit anywhere
the monolithic engine does (under the query-frontend cache, behind the
ruler) — but each call is planned into time × shard subqueries, executed
across the querier pool, and merged back exactly.

Latency accounting: each subquery is priced by the pool's cost model
plus the *actual* cold object-store latency it incurred (measured as
the delta of a caller-supplied monotonic counter, normally the
store-gateway's ``fetch_latency_ns_total``).  The query's wall-clock is
the busiest worker's timeline; the serial figure is the timeline sum —
what the monolithic path would have paid.  Bench Q1 is the ratio.

Scheduler integration: :meth:`submit_via_scheduler` pushes each
subquery through the tenancy ``QueryScheduler`` as its own ticket, so
round-robin fairness applies at fan-out granularity; :func:`collect`
merges the finished tickets.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet
from repro.common.simclock import SimClock, seconds
from repro.common.vector import Series
from repro.loki.logql.engine import LogQLEngine
from repro.loki.model import LogEntry
from repro.queryx.executor import QuerierPool, QuerierWorker
from repro.queryx.merger import merge_log_partials, merge_metric_partials
from repro.queryx.planner import QueryPlan, QueryPlanner, Subquery
from repro.queryx.sharding import ShardedSource
from repro.tempo.model import SpanStatus
from repro.tempo.tracer import Tracer

#: Default slowness threshold: accounted wall-clock above this marks the
#: query slow (feeds the SlowQueries alert via the exporter).
DEFAULT_SLOW_QUERY_NS = int(seconds(2.0))


class ShardedQueryEngine:
    """Plan → fan out over the querier pool → merge, with accounting."""

    def __init__(
        self,
        source,
        clock: SimClock,
        planner: QueryPlanner | None = None,
        pool: QuerierPool | None = None,
        tracer: Tracer | None = None,
        cold_latency_fn: Callable[[], int] | None = None,
        slow_query_threshold_ns: int = DEFAULT_SLOW_QUERY_NS,
    ) -> None:
        if slow_query_threshold_ns <= 0:
            raise ValidationError("slow-query threshold must be positive")
        self._source = source
        self._clock = clock
        self.planner = planner or QueryPlanner()
        self.pool = pool or QuerierPool()
        self.tracer = tracer
        self._cold_latency_fn = cold_latency_fn
        self.slow_query_threshold_ns = slow_query_threshold_ns
        #: One LogQLEngine per (shard, needles) slice; engines are
        #: stateless over the shared source, so caching them is free.
        self._engines: dict[tuple, LogQLEngine] = {}
        self.queries_total = 0
        self.log_queries_total = 0
        self.subqueries_total = 0
        self.slow_queries_total = 0
        self.last_wall_ns = 0
        self.last_serial_ns = 0
        self.last_cold_ns = 0
        self.wall_ns_total = 0
        self.serial_ns_total = 0
        self.cold_ns_total = 0

    # ------------------------------------------------------------------
    # Public query surface (mirrors LogQLEngine)
    # ------------------------------------------------------------------
    def query_range(
        self, query, start_ns: int, end_ns: int, step_ns: int
    ) -> list[Series]:
        plan = self.planner.plan_range(query, start_ns, end_ns, step_ns)
        partials = self._execute_plan(plan, phase=start_ns % step_ns)
        result = merge_metric_partials(plan, partials)
        self.queries_total += 1
        return result

    def query_logs(
        self, query, start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        plan = self.planner.plan_logs(query, start_ns, end_ns)
        partials = self._execute_plan(plan, phase=0)
        result = merge_log_partials(partials)
        self.queries_total += 1
        self.log_queries_total += 1
        return result

    # ------------------------------------------------------------------
    # Scheduler-granular execution
    # ------------------------------------------------------------------
    def submit_via_scheduler(
        self, scheduler, tenant: str | None, query: str,
        start_ns: int, end_ns: int, step_ns: int,
    ):
        """Submit one scheduler ticket *per subquery*; returns
        ``(plan, tickets)``.  Drive the sim clock until every ticket is
        done, then hand both to :meth:`collect` for the merged frame.
        """
        plan = self.planner.plan_range(query, start_ns, end_ns, step_ns)
        phase = start_ns % step_ns
        self.pool.reset_timelines()
        tickets = []
        for sub in plan.subqueries:
            tickets.append(
                scheduler.submit(
                    tenant,
                    query,
                    sub.start_ns,
                    sub.end_ns,
                    step_ns,
                    execute_fn=self._subquery_fn(plan, sub, phase),
                )
            )
        self.queries_total += 1
        self.subqueries_total += len(plan.subqueries)
        return plan, tickets

    def _subquery_fn(self, plan: QueryPlan, sub: Subquery, phase: int):
        # Ticket *timing* belongs to the scheduler (slot hold, queue
        # wait); the pool is not charged on this path.
        def run() -> list[Series]:
            return self._run_subquery(plan, sub, phase)

        return run

    def collect(self, plan: QueryPlan, tickets) -> list[Series]:
        """Merge finished scheduler tickets into the final frame."""
        pending = [t for t in tickets if not t.done]
        if pending:
            raise ValidationError(
                f"{len(pending)} subquery tickets still pending"
            )
        errors = [t.error for t in tickets if t.error is not None]
        if errors:
            raise errors[0]
        partials = [
            (sub, ticket.result or [])
            for sub, ticket in zip(plan.subqueries, tickets)
        ]
        return merge_metric_partials(plan, partials)

    # ------------------------------------------------------------------
    # Execution internals
    # ------------------------------------------------------------------
    def _engine_for(self, sub: Subquery, needles: Sequence[str]) -> LogQLEngine:
        if sub.shard_count == 1 and not needles:
            key = ("mono",)
            engine = self._engines.get(key)
            if engine is None:
                engine = self._engines[key] = LogQLEngine(self._source)
            return engine
        key = (sub.shard_index, sub.shard_count, tuple(needles))
        engine = self._engines.get(key)
        if engine is None:
            engine = self._engines[key] = LogQLEngine(
                ShardedSource(
                    self._source,
                    sub.shard_index,
                    sub.shard_count,
                    line_contains=needles,
                )
            )
        return engine

    def _run_subquery(self, plan: QueryPlan, sub: Subquery, phase: int):
        engine = self._engine_for(sub, plan.needles)
        if plan.is_log_query:
            return engine.query_logs(plan.expr, sub.start_ns, sub.end_ns)
        # First on-grid evaluation instant inside this inclusive window
        # (same arithmetic as the frontend's sub-query path).
        first = sub.start_ns + (phase - sub.start_ns) % sub.step_ns
        if first > sub.end_ns:
            return []
        return engine.query_range(plan.expr, first, sub.end_ns, sub.step_ns)

    def _execute_plan(self, plan: QueryPlan, phase: int):
        self.pool.reset_timelines()
        base_ns = self._clock.now_ns
        cold_deltas: dict[int, int] = {}
        attempts: list[tuple[Subquery, QuerierWorker, int, int, bool]] = []

        def execute(sub: Subquery):
            before = self._cold_latency_fn() if self._cold_latency_fn else 0
            partial = self._run_subquery(plan, sub, phase)
            after = self._cold_latency_fn() if self._cold_latency_fn else 0
            cold_deltas[sub.index] = after - before
            return partial

        def cost_of(sub: Subquery) -> int:
            return self.pool.cost_model(sub) + cold_deltas.get(sub.index, 0)

        def on_attempt(
            sub: Subquery, worker: QuerierWorker, cost: int, ok: bool
        ) -> None:
            attempts.append((sub, worker, worker.busy_ns - cost, worker.busy_ns, ok))

        results = self.pool.run(
            list(plan.subqueries), execute, cost_of, on_attempt
        )

        wall = self.pool.wall_ns()
        serial = self.pool.serial_ns()
        cold = sum(cold_deltas.values())
        self.subqueries_total += len(plan.subqueries)
        self.last_wall_ns = wall
        self.last_serial_ns = serial
        self.last_cold_ns = cold
        self.wall_ns_total += wall
        self.serial_ns_total += serial
        self.cold_ns_total += cold
        if wall > self.slow_query_threshold_ns:
            self.slow_queries_total += 1
        self._trace(plan, base_ns, wall, attempts)
        return results

    def _trace(self, plan, base_ns, wall_ns, attempts) -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        root = self.tracer.record(
            "query-frontend",
            "queryx.query",
            None,
            start_ns=base_ns,
            end_ns=base_ns + wall_ns,
            attributes={
                "query": plan.query[:80],
                "merge": plan.merge,
                "subqueries": str(len(plan.subqueries)),
                "shards": str(plan.shard_count),
                "time_splits": str(plan.time_splits),
            },
        )
        if root is None:
            return
        self.tracer.record(
            "query-frontend",
            "queryx.plan",
            root,
            start_ns=base_ns,
            end_ns=base_ns,
            attributes={"needles": ",".join(plan.needles)[:80]},
        )
        for sub, worker, start_off, end_off, ok in attempts:
            self.tracer.record(
                "querier",
                "queryx.subquery",
                root,
                start_ns=base_ns + start_off,
                end_ns=base_ns + end_off,
                attributes={
                    "worker": worker.worker_id,
                    "shard": f"{sub.shard_index}_of_{sub.shard_count}",
                    "window": f"{sub.start_ns}..{sub.end_ns}",
                },
                status=SpanStatus.OK if ok else SpanStatus.ERROR,
            )
        self.tracer.record(
            "query-frontend",
            "queryx.merge",
            root,
            start_ns=base_ns + wall_ns,
            end_ns=base_ns + wall_ns,
        )

    # ------------------------------------------------------------------
    # Accounting surface
    # ------------------------------------------------------------------
    def speedup(self) -> float:
        """Accumulated serial-vs-wall ratio (1.0 when nothing ran)."""
        if self.wall_ns_total <= 0:
            return 1.0
        return self.serial_ns_total / self.wall_ns_total

    def last_speedup(self) -> float:
        if self.last_wall_ns <= 0:
            return 1.0
        return self.last_serial_ns / self.last_wall_ns

    def stats(self) -> dict:
        return {
            "queries_total": self.queries_total,
            "log_queries_total": self.log_queries_total,
            "subqueries_total": self.subqueries_total,
            "slow_queries_total": self.slow_queries_total,
            "last_wall_ns": self.last_wall_ns,
            "last_serial_ns": self.last_serial_ns,
            "last_cold_ns": self.last_cold_ns,
            "wall_ns_total": self.wall_ns_total,
            "serial_ns_total": self.serial_ns_total,
            "cold_ns_total": self.cold_ns_total,
            "speedup": self.speedup(),
            **{f"pool_{k}": v for k, v in self.pool.counters().items()},
            "plans_built": self.planner.plans_built,
            "subqueries_planned": self.planner.subqueries_planned,
            "unsharded_plans": self.planner.unsharded_plans,
        }
