"""Bloom filter blocks: n-gram membership tests that let the read path
skip chunks which *cannot* match a line filter.

Loki 3.x builds bloom filters over the n-grams of chunk contents so a
needle-in-a-haystack query (``{job="syslog"} |= "GPU memory error"``)
fetches only the chunks that might contain the needle instead of every
chunk in the window.  This module reproduces that idea for the cold
tier: the compactor builds one :class:`BloomBlock` per (tenant, stream,
index period) from the merged entries it already holds in hand, persists
it to the object store next to the chunks, and the store-gateway
consults the block before paying a GET.

Soundness: a Bloom filter has false positives but never false
negatives, so "some n-gram of the needle is absent" proves no line in
the covered chunks contains the needle — skipping those chunks cannot
change a query answer.  A block also records exactly which chunk keys
it was built from; the gateway only skips a chunk the block *covers*,
so chunks shipped after the last compaction are always fetched.

False-positive math (classic): for ``n`` inserted tokens and a target
rate ``p``, the optimal bit count is ``m = -n·ln p / (ln 2)²`` and the
optimal hash count ``k = (m/n)·ln 2``; the expected rate is then
``(1 - e^(-kn/m))^k ≈ p``.  A false positive merely costs one avoidable
GET — correctness never depends on the rate.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.common.errors import ValidationError
from repro.common.hashing import fnv1a_64, mix64
from repro.common.jsonutil import dumps_compact, loads
from repro.objstore.index import ChunkRef, stream_fingerprint

if TYPE_CHECKING:
    from repro.common.labels import LabelSet
    from repro.loki.model import LogEntry
    from repro.objstore.objectstore import ObjectStore

#: Token length for line content.  Three is Loki's default: long enough
#: to be selective, short enough that any needle of >= 3 characters can
#: be decomposed into covered tokens.
NGRAM_LEN = 3

BLOOM_PREFIX = "blooms/"


def line_ngrams(text: str, n: int = NGRAM_LEN) -> set[str]:
    """Every length-``n`` substring of ``text`` (empty if shorter)."""
    if len(text) < n:
        return set()
    return {text[i : i + n] for i in range(len(text) - n + 1)}


class BloomFilter:
    """A classic bit-array Bloom filter over string tokens.

    Double hashing (Kirsch-Mitzenmacher): the i-th probe is
    ``h1 + i*h2 mod m`` with ``h1`` = FNV-1a and ``h2`` = its SplitMix64
    finalization forced odd, which is as good as k independent hashes.
    """

    __slots__ = ("m_bits", "k", "_bits", "inserted")

    def __init__(self, m_bits: int, k: int) -> None:
        if m_bits < 8:
            raise ValidationError("bloom filter needs at least 8 bits")
        if k < 1:
            raise ValidationError("bloom filter needs at least one hash")
        self.m_bits = m_bits
        self.k = k
        self._bits = bytearray((m_bits + 7) // 8)
        self.inserted = 0

    @classmethod
    def for_capacity(cls, n: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for ``n`` tokens at a target false-positive rate."""
        if n < 1:
            n = 1
        if not 0.0 < fp_rate < 1.0:
            raise ValidationError("fp_rate must be in (0, 1)")
        m = max(8, math.ceil(-n * math.log(fp_rate) / (math.log(2) ** 2)))
        k = max(1, round(m / n * math.log(2)))
        return cls(m, k)

    def _probes(self, token: str) -> Iterable[int]:
        h1 = fnv1a_64(token.encode())
        h2 = mix64(h1) | 1  # odd: cycles the whole bit space
        for i in range(self.k):
            yield (h1 + i * h2) % self.m_bits

    def add(self, token: str) -> None:
        for bit in self._probes(token):
            self._bits[bit >> 3] |= 1 << (bit & 7)
        self.inserted += 1

    def might_contain(self, token: str) -> bool:
        return all(
            self._bits[bit >> 3] & (1 << (bit & 7)) for bit in self._probes(token)
        )

    def fill_ratio(self) -> float:
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.m_bits

    def expected_fp_rate(self) -> float:
        """``(1 - e^(-kn/m))^k`` for the tokens actually inserted."""
        if self.inserted == 0:
            return 0.0
        return (1.0 - math.exp(-self.k * self.inserted / self.m_bits)) ** self.k

    # ------------------------------------------------------------------
    # Serialization (bit array + geometry)
    # ------------------------------------------------------------------
    def to_obj(self) -> dict:
        return {
            "m": self.m_bits,
            "k": self.k,
            "n": self.inserted,
            "bits": zlib.compress(bytes(self._bits), level=6).hex(),
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "BloomFilter":
        filt = cls(int(obj["m"]), int(obj["k"]))
        bits = zlib.decompress(bytes.fromhex(obj["bits"]))
        if len(bits) != len(filt._bits):
            raise ValidationError("bloom bit array does not match geometry")
        filt._bits = bytearray(bits)
        filt.inserted = int(obj["n"])
        return filt


@dataclass
class BloomBlock:
    """One (tenant, stream, period)'s n-gram bloom plus its coverage.

    ``chunk_keys`` pins exactly which chunk objects the filter was built
    from; a ref outside that set is never skipped on this block's word.
    """

    tenant: str
    fingerprint: int
    period: int
    filter: BloomFilter
    chunk_keys: frozenset[str] = field(default_factory=frozenset)
    lines_indexed: int = 0

    def covers(self, ref: ChunkRef) -> bool:
        return ref.key in self.chunk_keys

    def might_match_needle(self, needle: str) -> bool:
        """Whether some covered line *might* contain ``needle``.

        Every n-gram of the needle must be present; a single absent gram
        is proof of absence.  Needles shorter than the gram length are
        unverifiable and conservatively match.
        """
        grams = line_ngrams(needle)
        if not grams:
            return True
        return all(self.filter.might_contain(g) for g in grams)

    def to_obj(self) -> dict:
        return {
            "t": self.tenant,
            "f": self.fingerprint,
            "p": self.period,
            "keys": sorted(self.chunk_keys),
            "lines": self.lines_indexed,
            "filter": self.filter.to_obj(),
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "BloomBlock":
        return cls(
            tenant=obj["t"],
            fingerprint=int(obj["f"]),
            period=int(obj["p"]),
            filter=BloomFilter.from_obj(obj["filter"]),
            chunk_keys=frozenset(obj["keys"]),
            lines_indexed=int(obj["lines"]),
        )


def bloom_object_key(tenant: str, fingerprint: int, period: int) -> str:
    return f"{BLOOM_PREFIX}{tenant}/{period:012d}/{fingerprint:016x}.json.z"


class BloomStore:
    """Bloom blocks in memory, persisted to the chunk bucket.

    The compactor is the only writer (it already holds each stream's
    merged entries when it runs); the store-gateway is the reader.  Like
    the shipper index, the in-memory maps answer queries uncharged and
    :meth:`rebuild` restores them from a cold bucket.
    """

    def __init__(
        self,
        store: "ObjectStore",
        bucket: str = "loki",
        fp_rate: float = 0.01,
    ) -> None:
        if not 0.0 < fp_rate < 1.0:
            raise ValidationError("fp_rate must be in (0, 1)")
        self._store = store
        self.bucket = bucket
        self.fp_rate = fp_rate
        self._blocks: dict[tuple[str, int, int], BloomBlock] = {}
        self.blocks_built = 0
        self.blocks_persisted = 0
        self.needle_checks = 0
        self.needle_rejections = 0

    # ------------------------------------------------------------------
    # Building (compactor side)
    # ------------------------------------------------------------------
    def get(self, tenant: str, fingerprint: int, period: int) -> BloomBlock | None:
        return self._blocks.get((tenant, fingerprint, period))

    def block_for_ref(self, ref: ChunkRef) -> BloomBlock | None:
        return self.get(ref.tenant, stream_fingerprint(ref.labels), ref.period)

    def needs_build(
        self, tenant: str, labels: "LabelSet", period: int, chunk_keys: set[str]
    ) -> bool:
        """Whether the group's block is missing or stale (coverage moved)."""
        block = self.get(tenant, stream_fingerprint(labels), period)
        return block is None or block.chunk_keys != frozenset(chunk_keys)

    def build_block(
        self,
        tenant: str,
        labels: "LabelSet",
        period: int,
        entries: "list[LogEntry]",
        chunk_keys: set[str],
    ) -> BloomBlock:
        """(Re)build and persist the block for one stream-period group."""
        grams: set[str] = set()
        for entry in entries:
            grams |= line_ngrams(entry.line)
        filt = BloomFilter.for_capacity(len(grams), self.fp_rate)
        for gram in sorted(grams):  # sorted: deterministic insertion order
            filt.add(gram)
        block = BloomBlock(
            tenant=tenant,
            fingerprint=stream_fingerprint(labels),
            period=period,
            filter=filt,
            chunk_keys=frozenset(chunk_keys),
            lines_indexed=len(entries),
        )
        self._blocks[(block.tenant, block.fingerprint, block.period)] = block
        self.blocks_built += 1
        self._persist(block)
        return block

    def _persist(self, block: BloomBlock) -> None:
        key = bloom_object_key(block.tenant, block.fingerprint, block.period)
        payload = zlib.compress(dumps_compact(block.to_obj()).encode(), level=6)
        self._store.put(self.bucket, key, payload)
        self.blocks_persisted += 1

    def rebuild(self) -> int:
        """Reload every persisted block from the bucket (cold start)."""
        self._blocks.clear()
        for key in self._store.list_keys(self.bucket, BLOOM_PREFIX):
            obj = loads(zlib.decompress(self._store.get(self.bucket, key)).decode())
            block = BloomBlock.from_obj(obj)
            self._blocks[(block.tenant, block.fingerprint, block.period)] = block
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Gating (gateway side)
    # ------------------------------------------------------------------
    def can_skip(self, ref: ChunkRef, needles: Iterable[str]) -> bool:
        """True iff some needle provably cannot appear in ``ref``'s lines.

        Conservative on every doubt: no block, a block that does not
        cover the ref, or a needle too short to decompose all fetch.
        """
        block = self.block_for_ref(ref)
        if block is None or not block.covers(ref):
            return False
        for needle in needles:
            if not line_ngrams(needle):
                continue
            self.needle_checks += 1
            if not block.might_match_needle(needle):
                self.needle_rejections += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def block_count(self) -> int:
        return len(self._blocks)

    def counters(self) -> dict[str, int]:
        return {
            "blocks": len(self._blocks),
            "blocks_built": self.blocks_built,
            "blocks_persisted": self.blocks_persisted,
            "needle_checks": self.needle_checks,
            "needle_rejections": self.needle_rejections,
        }
