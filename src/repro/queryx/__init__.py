"""repro.queryx — the sharded parallel query engine.

Loki's read path at scale: a :class:`QueryPlanner` decomposes a LogQL
range query along frontend-aligned time windows and label-hash stream
shards, a :class:`QuerierPool` of simulated querier workers executes
the subqueries concurrently on the sim clock (wall-clock = the busiest
worker, not the sum) with retry on querier crashes, and the merger
recombines partials with the tiered store's max-multiplicity dedup.
:class:`ShardedQueryEngine` snaps the three behind the ordinary
``query_range`` / ``query_logs`` surface.  Alongside rides the bloom
subsystem: the compactor builds per-(stream, period) n-gram
:class:`BloomBlock`\\ s into a :class:`BloomStore` and the store-gateway
consults them to skip chunks that provably cannot match a line filter.
"""

from repro.queryx.bloom import (
    BloomBlock,
    BloomFilter,
    BloomStore,
    NGRAM_LEN,
    bloom_object_key,
    line_ngrams,
)
from repro.queryx.engine import DEFAULT_SLOW_QUERY_NS, ShardedQueryEngine
from repro.queryx.executor import (
    AllQueriersDown,
    QuerierCrash,
    QuerierPool,
    QuerierWorker,
)
from repro.queryx.merger import merge_log_partials, merge_metric_partials
from repro.queryx.planner import (
    MERGE_CONCAT,
    MERGE_MAX,
    MERGE_MIN,
    MERGE_NONE,
    MERGE_SUM,
    QueryPlan,
    QueryPlanner,
    Subquery,
    line_filter_needles,
    merge_class,
)
from repro.queryx.sharding import ShardedSource, shard_of

__all__ = [
    "AllQueriersDown",
    "BloomBlock",
    "BloomFilter",
    "BloomStore",
    "DEFAULT_SLOW_QUERY_NS",
    "MERGE_CONCAT",
    "MERGE_MAX",
    "MERGE_MIN",
    "MERGE_NONE",
    "MERGE_SUM",
    "NGRAM_LEN",
    "QuerierCrash",
    "QuerierPool",
    "QuerierWorker",
    "QueryPlan",
    "QueryPlanner",
    "ShardedQueryEngine",
    "ShardedSource",
    "Subquery",
    "bloom_object_key",
    "line_filter_needles",
    "line_ngrams",
    "merge_class",
    "merge_log_partials",
    "merge_metric_partials",
    "shard_of",
]
