"""The querier worker pool: concurrent subquery execution, simulated.

Real Loki queriers are stateless pods pulling subqueries off the
scheduler; the frontend's wall-clock for a sharded query is the longest
*worker* timeline, not the sum of subquery costs.  This pool reproduces
that accounting on the sim clock: subqueries run to completion in
process (producing exact partials), each is priced by a cost model
(base overhead + a span-proportional term + whatever cold object-store
latency it actually incurred), and costs accumulate per worker.  The
query's wall-clock is ``max(worker busy)``, the monolithic reference is
``sum`` — their ratio is the speedup Q1 prices.

Failure injection rides the same accounting: a crashed worker charges
its base overhead (the work was dispatched and lost), then the subquery
is retried on the next live worker — at-least-once execution, with
exactness preserved because partials are deterministic and the merger
only ever sees the successful attempt.  A slow worker multiplies its
costs, dragging the max and modelling the straggler problem that makes
people shard in the first place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.common.errors import ReproError, ValidationError
from repro.common.simclock import seconds

if TYPE_CHECKING:
    from repro.queryx.planner import Subquery


class QuerierCrash(ReproError):
    """A querier worker died while holding a subquery."""


class AllQueriersDown(ReproError):
    """No live worker remains to retry a subquery on."""


class QuerierWorker:
    """One simulated querier: a timeline of accounted busy time."""

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.busy_ns = 0
        self.subqueries_run = 0
        self.crashed = False
        self.slow_factor = 1.0

    def charge(self, cost_ns: int) -> int:
        cost = int(cost_ns * self.slow_factor)
        self.busy_ns += cost
        return cost


class QuerierPool:
    """Dispatches a plan's subqueries across simulated querier workers.

    Assignment is deterministic least-busy (ties broken by worker id),
    which is both reproducible under a seed and a reasonable model of a
    work-stealing scheduler: the idlest querier takes the next shard.
    """

    def __init__(
        self,
        workers: int = 4,
        exec_base_ns: int = int(seconds(0.02)),
        exec_per_hour_ns: int = int(seconds(0.1)),
        max_attempts: int = 4,
    ) -> None:
        if workers < 1:
            raise ValidationError("pool needs at least one worker")
        if max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        self.exec_base_ns = exec_base_ns
        self.exec_per_hour_ns = exec_per_hour_ns
        self.max_attempts = max_attempts
        self._workers = [QuerierWorker(f"querier-{i}") for i in range(workers)]
        self.subqueries_executed = 0
        self.retries_total = 0
        self.crashes_seen = 0

    # ------------------------------------------------------------------
    # Fault hooks (chaos)
    # ------------------------------------------------------------------
    def worker(self, worker_id: str) -> QuerierWorker:
        for w in self._workers:
            if w.worker_id == worker_id:
                return w
        raise ValidationError(f"no such querier {worker_id!r}")

    def worker_ids(self) -> list[str]:
        return [w.worker_id for w in self._workers]

    def set_crashed(self, worker_id: str, crashed: bool) -> None:
        self.worker(worker_id).crashed = crashed

    def set_slow(self, worker_id: str, factor: float) -> None:
        if factor < 1.0:
            raise ValidationError("slow factor must be >= 1.0")
        self.worker(worker_id).slow_factor = factor

    def live_workers(self) -> int:
        return sum(1 for w in self._workers if not w.crashed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def reset_timelines(self) -> None:
        """Zero per-worker busy time (each query measures its own wall)."""
        for w in self._workers:
            w.busy_ns = 0

    def run(
        self,
        subqueries: "list[Subquery]",
        execute: "Callable[[Subquery], object]",
        cost_of: "Callable[[Subquery], int] | None" = None,
        on_attempt: "Callable[[Subquery, QuerierWorker, int, bool], None] | None" = None,
    ) -> "list[tuple[Subquery, object]]":
        """Run every subquery, return (subquery, partial) pairs.

        ``execute`` does the real work (and is only called on the
        surviving attempt); ``cost_of`` prices it for the timeline —
        defaulting to the base + span model.  ``on_attempt(sub, worker,
        cost_ns, ok)`` observes every attempt, including the crashed
        ones, for tracing.
        """
        results: list[tuple[Subquery, object]] = []
        for sub in subqueries:
            results.append((sub, self._run_one(sub, execute, cost_of, on_attempt)))
        return results

    def _run_one(self, sub, execute, cost_of, on_attempt):
        last_worker: QuerierWorker | None = None
        for _attempt in range(self.max_attempts):
            if self.live_workers() == 0:
                raise AllQueriersDown(
                    f"no live querier for subquery {sub.index}"
                )
            worker = self._pick_worker(exclude=last_worker)
            if worker.crashed:
                # The dispatch itself is spent: the worker accepted the
                # subquery and died.  Charge overhead, try elsewhere.
                cost = worker.charge(self.exec_base_ns)
                self.crashes_seen += 1
                self.retries_total += 1
                if on_attempt is not None:
                    on_attempt(sub, worker, cost, False)
                last_worker = worker
                continue
            partial = execute(sub)
            base_cost = cost_of(sub) if cost_of is not None else self.cost_model(sub)
            cost = worker.charge(base_cost)
            worker.subqueries_run += 1
            self.subqueries_executed += 1
            if on_attempt is not None:
                on_attempt(sub, worker, cost, True)
            return partial
        raise QuerierCrash(
            f"subquery {sub.index} exhausted {self.max_attempts} attempts"
        )

    def _pick_worker(self, exclude: QuerierWorker | None) -> QuerierWorker:
        """Deterministic least-busy dispatch with late fault discovery.

        Crashed workers stay in the candidate set — the scheduler only
        learns a querier is dead when the dispatched subquery dies with
        it (the caller's ``worker.crashed`` check) — except the worker
        that just failed *this* subquery, which is skipped when any
        alternative exists.  The caller guards the all-down case.
        """
        candidates = [w for w in self._workers if w is not exclude]
        if not candidates:
            candidates = list(self._workers)
        return min(candidates, key=lambda w: (w.busy_ns, w.worker_id))

    def cost_model(self, sub) -> int:
        """Base dispatch overhead + a term linear in the scanned span."""
        span_hours = sub.span_ns / seconds(3600)
        return int(self.exec_base_ns + span_hours * self.exec_per_hour_ns)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def wall_ns(self) -> int:
        """Query wall-clock: the longest single worker timeline."""
        return max((w.busy_ns for w in self._workers), default=0)

    def serial_ns(self) -> int:
        """What a single querier would have paid: the timeline sum."""
        return sum(w.busy_ns for w in self._workers)

    def worker_busy(self) -> dict[str, int]:
        return {w.worker_id: w.busy_ns for w in self._workers}

    def counters(self) -> dict[str, int]:
        return {
            "workers": len(self._workers),
            "live_workers": self.live_workers(),
            "subqueries_executed": self.subqueries_executed,
            "retries_total": self.retries_total,
            "crashes_seen": self.crashes_seen,
        }
