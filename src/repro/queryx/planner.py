"""Query planning: decompose one LogQL range query into subqueries.

The planner cuts along two independent axes:

- **Time.**  A range query is a loop over evaluation instants; any
  partition of the instants is exact, so every metric query time-splits.
  The cut points are the query-frontend's aligned windows (same
  function, same boundaries) so planner subqueries and frontend cache
  entries line up.  Log queries split on the same boundaries but with
  half-open windows, matching the store's ``[start, end)`` select.
- **Stream shard.**  Only when partial results can be recombined
  exactly.  Streams partition across shards by label-hash fingerprint,
  so a per-series value computed in one shard is the whole value *if*
  the aggregation distributes over the partition.  The planner is
  deliberately conservative: anything it cannot prove decomposable runs
  shard_count=1 (time-split only) and is still exact, just less
  parallel — the same posture real Loki takes, where only provably
  shardable AST shapes are rewritten into downstream queries.

Shardability (merge class per AST shape):

======================================  ==========================
top-level expression                    merge class
======================================  ==========================
count/rate/bytes/sum_over_time          sum   (counts add)
max_over_time                           max   (max of maxes)
min_over_time                           min
avg_over_time                           unshardable (needs counts)
sum|max|min(<matching-class inner>)     inherited from inner
avg/count vector aggs, BinOp, nesting   unshardable
log pipeline                            concat (streams disjoint)
======================================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.simclock import hours
from repro.loki.frontend import aligned_windows
from repro.loki.logql.ast import (
    BinOp,
    Expr,
    LineFilter,
    LineFilterOp,
    LineFormatStage,
    LogPipeline,
    RangeAgg,
    RangeFunc,
    VectorAgg,
    VectorOp,
)
from repro.loki.logql.parser import parse
from repro.queryx.bloom import NGRAM_LEN

#: Merge classes — how shard partials recombine per (labels, instant).
MERGE_SUM = "sum"
MERGE_MAX = "max"
MERGE_MIN = "min"
MERGE_NONE = "none"  # unshardable: single shard, time-split only
MERGE_CONCAT = "concat"  # log queries: shard streams are disjoint

_SUM_CLASS_FUNCS = frozenset(
    {
        RangeFunc.COUNT_OVER_TIME,
        RangeFunc.RATE,
        RangeFunc.BYTES_OVER_TIME,
        RangeFunc.BYTES_RATE,
        RangeFunc.SUM_OVER_TIME,
    }
)

_VECTOR_OP_CLASS = {
    VectorOp.SUM: MERGE_SUM,
    VectorOp.MAX: MERGE_MAX,
    VectorOp.MIN: MERGE_MIN,
}


def merge_class(expr: Expr) -> str:
    """The exact-recombination class for ``expr`` (see module table)."""
    if isinstance(expr, LogPipeline):
        return MERGE_CONCAT
    if isinstance(expr, RangeAgg):
        if expr.func in _SUM_CLASS_FUNCS:
            return MERGE_SUM
        if expr.func is RangeFunc.MAX_OVER_TIME:
            return MERGE_MAX
        if expr.func is RangeFunc.MIN_OVER_TIME:
            return MERGE_MIN
        return MERGE_NONE  # avg_over_time: sum/count don't travel
    if isinstance(expr, VectorAgg) and isinstance(expr.expr, RangeAgg):
        inner = merge_class(expr.expr)
        outer = _VECTOR_OP_CLASS.get(expr.op)
        # The outer op must agree with the inner class: sum-of-sums,
        # max-of-maxes, min-of-mins.  sum(max_over_time) would need every
        # series' full max before summing — not decomposable per shard.
        if outer is not None and outer == inner:
            return outer
        return MERGE_NONE
    # BinOp (comparisons filter on *final* values), nested vector aggs,
    # scalars: run unsharded.
    return MERGE_NONE


def line_filter_needles(expr: Expr) -> tuple[str, ...]:
    """CONTAINS needles usable for bloom chunk gating.

    Only ``|=`` filters *before any line_format stage* see the raw
    stored line, so only those may veto a chunk.  Needles shorter than
    the bloom n-gram length carry no gating power and are dropped.
    """
    pipeline = _pipeline_of(expr)
    if pipeline is None:
        return ()
    needles = []
    for stage in pipeline.stages:
        if isinstance(stage, LineFormatStage):
            break
        if isinstance(stage, LineFilter) and stage.op is LineFilterOp.CONTAINS:
            if len(stage.needle) >= NGRAM_LEN:
                needles.append(stage.needle)
    return tuple(needles)


def _pipeline_of(expr: Expr) -> LogPipeline | None:
    if isinstance(expr, LogPipeline):
        return expr
    if isinstance(expr, RangeAgg):
        return expr.pipeline
    if isinstance(expr, VectorAgg):
        return _pipeline_of(expr.expr)
    if isinstance(expr, BinOp):
        for side in (expr.lhs, expr.rhs):
            found = _pipeline_of(side)  # type: ignore[arg-type]
            if found is not None:
                return found
    return None


@dataclass(frozen=True)
class Subquery:
    """One independently executable slice of the original query."""

    index: int
    start_ns: int
    end_ns: int
    step_ns: int  # 0 marks a log subquery (no evaluation grid)
    shard_index: int
    shard_count: int

    @property
    def span_ns(self) -> int:
        return self.end_ns - self.start_ns + (1 if self.step_ns else 0)


@dataclass(frozen=True)
class QueryPlan:
    """The full decomposition, ready for the executor pool."""

    query: str
    expr: Expr
    merge: str
    subqueries: tuple[Subquery, ...]
    time_splits: int
    shard_count: int
    needles: tuple[str, ...]

    @property
    def is_log_query(self) -> bool:
        return self.merge == MERGE_CONCAT

    @property
    def sharded(self) -> bool:
        return self.shard_count > 1


class QueryPlanner:
    """Cuts queries along aligned time windows and stream shards."""

    def __init__(self, shard_count: int = 4, split_ns: int = hours(1)) -> None:
        if shard_count < 1:
            raise ValidationError("shard_count must be >= 1")
        if split_ns <= 0:
            raise ValidationError("split interval must be positive")
        self.shard_count = shard_count
        self.split_ns = split_ns
        self.plans_built = 0
        self.subqueries_planned = 0
        self.unsharded_plans = 0

    def plan_range(
        self, query: str | Expr, start_ns: int, end_ns: int, step_ns: int
    ) -> QueryPlan:
        """Plan a metric range query over instants ``start..end`` step."""
        if step_ns <= 0:
            raise ValidationError("step must be positive")
        if end_ns < start_ns:
            raise ValidationError("end before start")
        expr = parse(query) if isinstance(query, str) else query
        if isinstance(expr, LogPipeline):
            raise ValidationError("range plan requires a metric query")
        merge = merge_class(expr)
        shards = self.shard_count if merge != MERGE_NONE else 1
        # Same guard as the frontend: splitting must not move the
        # evaluation grid, so the step has to divide the split interval.
        if self.split_ns % step_ns == 0:
            windows = list(aligned_windows(start_ns, end_ns, self.split_ns))
        else:
            windows = [(start_ns, end_ns)]
        return self._build(query, expr, merge, windows, step_ns, shards)

    def plan_logs(
        self, query: str | Expr, start_ns: int, end_ns: int
    ) -> QueryPlan:
        """Plan a log query over the half-open window ``[start, end)``."""
        if end_ns < start_ns:
            raise ValidationError("end before start")
        expr = parse(query) if isinstance(query, str) else query
        if not isinstance(expr, LogPipeline):
            raise ValidationError("log plan requires a log query")
        # Half-open windows on the same aligned boundaries: [a, b] from
        # the inclusive generator becomes [a, b+1) for the store.
        windows = [
            (sub_start, sub_end + 1)
            for sub_start, sub_end in aligned_windows(
                start_ns, max(start_ns, end_ns - 1), self.split_ns
            )
        ]
        if windows:
            windows[-1] = (windows[-1][0], end_ns)
        return self._build(query, expr, MERGE_CONCAT, windows, 0, self.shard_count)

    def _build(
        self,
        query: str | Expr,
        expr: Expr,
        merge: str,
        windows: list[tuple[int, int]],
        step_ns: int,
        shards: int,
    ) -> QueryPlan:
        subqueries = []
        for sub_start, sub_end in windows:
            for shard in range(shards):
                subqueries.append(
                    Subquery(
                        index=len(subqueries),
                        start_ns=sub_start,
                        end_ns=sub_end,
                        step_ns=step_ns,
                        shard_index=shard,
                        shard_count=shards,
                    )
                )
        self.plans_built += 1
        self.subqueries_planned += len(subqueries)
        if shards == 1 and merge != MERGE_CONCAT:
            self.unsharded_plans += 1
        return QueryPlan(
            query=query if isinstance(query, str) else "",
            expr=expr,
            merge=merge,
            subqueries=tuple(subqueries),
            time_splits=len(windows),
            shard_count=shards,
            needles=line_filter_needles(expr),
        )
