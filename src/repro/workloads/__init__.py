"""Synthetic workload generators.

Production Perlmutter produces "over 400 gigabytes of data per day"
(paper §III.C); since we have no production traces, these seeded
generators produce the same *shapes*: syslog with realistic facilities
and severity mix, JSON container logs from the k3s service pods, and
bursty event storms for the alert-grouping benches.
"""

from repro.workloads.loggen import SyslogGenerator, ContainerLogGenerator
from repro.workloads.scenarios import alert_storm, steady_state_mix

__all__ = [
    "SyslogGenerator",
    "ContainerLogGenerator",
    "alert_storm",
    "steady_state_mix",
]
