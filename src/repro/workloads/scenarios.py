"""Composite workload scenarios used by integration tests and benches."""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.common.simclock import seconds
from repro.common.xname import XName
from repro.workloads.loggen import (
    ContainerLogGenerator,
    GeneratedLog,
    SyslogGenerator,
)


def steady_state_mix(
    nodes: list[XName],
    total: int,
    start_ns: int,
    duration_ns: int,
    seed: int = 0,
    syslog_fraction: float = 0.8,
) -> list[GeneratedLog]:
    """A realistic background mix: mostly syslog, some container logs,
    interleaved over the duration in timestamp order."""
    if not 0.0 <= syslog_fraction <= 1.0:
        raise ValidationError("syslog fraction must be in [0, 1]")
    n_syslog = int(total * syslog_fraction)
    n_container = total - n_syslog
    interval_sys = duration_ns // max(n_syslog, 1)
    interval_cont = duration_ns // max(n_container, 1)
    logs = SyslogGenerator(nodes, seed=seed).generate(n_syslog, start_ns, interval_sys)
    logs += ContainerLogGenerator(seed=seed + 1).generate(
        n_container, start_ns, interval_cont
    )
    logs.sort(key=lambda g: g.timestamp_ns)
    return logs


def alert_storm(
    xnames: list[XName],
    events_per_target: int,
    start_ns: int,
    spacing_ns: int = seconds(1),
    problem: str = "fm_switch_offline",
    cluster: str = "perlmutter",
) -> list[GeneratedLog]:
    """A storm: many components fail at once, each repeating its event.

    This is the input to the Alertmanager-grouping bench (C6): the storm
    produces ``len(xnames) * events_per_target`` raw events that grouping
    must compress into a handful of notifications.
    """
    if events_per_target < 1:
        raise ValidationError("need at least one event per target")
    out = []
    for rep in range(events_per_target):
        for xname in xnames:
            ts = start_ns + rep * spacing_ns
            out.append(
                GeneratedLog(
                    timestamp_ns=ts,
                    labels={
                        "app": "fabric_manager_monitor",
                        "cluster": cluster,
                    },
                    line=(
                        f"[critical] problem:{problem}, "
                        f"xname:{xname}, state:OFFLINE"
                    ),
                )
            )
    out.sort(key=lambda g: g.timestamp_ns)
    return out
