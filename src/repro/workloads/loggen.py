"""Seeded syslog and container-log generators.

Message templates mirror what an HPC node fleet actually writes: slurmd
job lifecycle, sshd auth, kernel I/O errors, Lustre/GPFS client chatter.
Weights keep the severity mix realistic (errors are rare, info dominates)
so alerting rules see believable signal-to-noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.jsonutil import dumps_compact
from repro.common.xname import XName

#: (weight, severity, facility/program, template with {} slots)
_SYSLOG_TEMPLATES: list[tuple[float, str, str, str]] = [
    (30.0, "info", "slurmd", "launch task {job}.0 request from UID 5{n:04d}"),
    (20.0, "info", "slurmd", "task {job}.0 exited with code 0"),
    (12.0, "info", "sshd", "Accepted publickey for user{n:03d} from 10.0.{b}.{c}"),
    (8.0, "info", "systemd", "Started Session {n} of user user{n:03d}."),
    (6.0, "warning", "kernel", "CPU{c}: Core temperature above threshold"),
    (5.0, "info", "lustre", "client connected to MDS lfs-MDT0000"),
    (4.0, "warning", "sshd", "Failed password for invalid user admin from 10.9.{b}.{c}"),
    (3.0, "err", "kernel", "nvme{c}: I/O error, dev nvme{c}n1, sector {n}"),
    (2.0, "err", "slurmd", "error: Node {xname} rebooted unexpectedly"),
    (1.5, "err", "gpfs", "mmfsd: CRC error on NSD nsd{c:02d}, retrying"),
    (1.0, "crit", "kernel", "EDAC MC0: UE memory read error on DIMM_{c}"),
]

_CONTAINER_APPS = (
    "telemetry-api",
    "kafka-consumer",
    "redfish-collector",
    "vmagent",
    "loki-distributor",
)


@dataclass(frozen=True)
class GeneratedLog:
    """One generated log line with its stream labels."""

    timestamp_ns: int
    labels: dict[str, str]
    line: str


class SyslogGenerator:
    """Weighted-template syslog generator over a set of node xnames."""

    def __init__(
        self, nodes: list[XName], seed: int = 0, cluster: str = "perlmutter"
    ) -> None:
        if not nodes:
            raise ValidationError("need at least one node")
        self._nodes = [str(x) for x in nodes]
        self._rng = np.random.default_rng(seed)
        self._cluster = cluster
        weights = np.array([t[0] for t in _SYSLOG_TEMPLATES])
        self._probs = weights / weights.sum()
        self._job_counter = 100000

    def generate(self, count: int, start_ns: int, interval_ns: int) -> list[GeneratedLog]:
        """Generate ``count`` lines spaced ``interval_ns`` apart."""
        if count < 0:
            raise ValidationError("count must be non-negative")
        choices = self._rng.choice(len(_SYSLOG_TEMPLATES), size=count, p=self._probs)
        node_idx = self._rng.integers(0, len(self._nodes), size=count)
        rand_n = self._rng.integers(0, 10000, size=count)
        rand_b = self._rng.integers(0, 256, size=count)
        rand_c = self._rng.integers(0, 8, size=count)
        out = []
        for i in range(count):
            _w, severity, program, template = _SYSLOG_TEMPLATES[int(choices[i])]
            xname = self._nodes[int(node_idx[i])]
            self._job_counter += 1
            line = template.format(
                job=self._job_counter,
                n=int(rand_n[i]),
                b=int(rand_b[i]),
                c=int(rand_c[i]),
                xname=xname,
            )
            out.append(
                GeneratedLog(
                    timestamp_ns=start_ns + i * interval_ns,
                    labels={
                        "cluster": self._cluster,
                        "data_type": "syslog",
                        "hostname": xname,
                        "facility": program,
                        "severity": severity,
                    },
                    line=f"{program}[{int(rand_n[i]) + 1000}]: {line}",
                )
            )
        return out


class ContainerLogGenerator:
    """JSON-line logs from the k3s service pods (paper Fig. 1 green box)."""

    def __init__(self, seed: int = 0, cluster: str = "perlmutter") -> None:
        self._rng = np.random.default_rng(seed)
        self._cluster = cluster

    def generate(self, count: int, start_ns: int, interval_ns: int) -> list[GeneratedLog]:
        if count < 0:
            raise ValidationError("count must be non-negative")
        apps = self._rng.integers(0, len(_CONTAINER_APPS), size=count)
        levels = self._rng.choice(
            ["info", "info", "info", "warning", "error"], size=count
        )
        latencies = self._rng.gamma(2.0, 12.0, size=count)
        batches = self._rng.integers(1, 500, size=count)
        out = []
        for i in range(count):
            app = _CONTAINER_APPS[int(apps[i])]
            payload = {
                "level": str(levels[i]),
                "msg": "batch forwarded",
                "records": int(batches[i]),
                "latency_ms": round(float(latencies[i]), 2),
            }
            if levels[i] == "error":
                payload["msg"] = "send failed, will retry"
                payload["retries"] = int(self._rng.integers(1, 5))
            out.append(
                GeneratedLog(
                    timestamp_ns=start_ns + i * interval_ns,
                    labels={
                        "cluster": self._cluster,
                        "data_type": "container_log",
                        "app": app,
                        "namespace": "monitoring",
                    },
                    line=dumps_compact(payload),
                )
            )
        return out
