"""The label index: the *only* index Loki keeps.

Maps stream ids ↔ label sets and maintains an inverted index from
``(label, value)`` pairs to stream ids so equality matchers resolve by set
intersection instead of a scan.  Its measured size is the point of bench
C3: it grows with stream count (label cardinality), never with log volume.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import NotFoundError
from repro.common.labels import LabelSet, Matcher, MatchOp


class LabelIndex:
    """Bidirectional stream/label index with inverted posting lists."""

    def __init__(self) -> None:
        self._streams: dict[int, LabelSet] = {}
        self._by_labels: dict[LabelSet, int] = {}
        self._postings: dict[tuple[str, str], set[int]] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._streams)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def get_or_create(self, labels: LabelSet) -> int:
        """Return the stream id for ``labels``, creating it if new."""
        sid = self._by_labels.get(labels)
        if sid is not None:
            return sid
        sid = self._next_id
        self._next_id += 1
        self._streams[sid] = labels
        self._by_labels[labels] = sid
        for pair in labels.items_tuple():
            self._postings.setdefault(pair, set()).add(sid)
        return sid

    def labels_of(self, stream_id: int) -> LabelSet:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise NotFoundError(f"no such stream id: {stream_id}") from None

    def lookup(self, labels: LabelSet) -> int | None:
        return self._by_labels.get(labels)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, matchers: Iterable[Matcher]) -> list[int]:
        """Stream ids whose labels satisfy every matcher.

        Equality matchers narrow via posting-list intersection; the other
        operators filter the surviving candidates.
        """
        matchers = list(matchers)
        # `{foo=""}` matches streams *without* the label (Prometheus
        # semantics) and so cannot use the posting lists.
        eq = [m for m in matchers if m.op is MatchOp.EQ and m.value != ""]
        rest = [m for m in matchers if m.op is not MatchOp.EQ or m.value == ""]

        if eq:
            candidate_sets = []
            for m in eq:
                postings = self._postings.get((m.name, m.value))
                if not postings:
                    return []
                candidate_sets.append(postings)
            candidates: set[int] = set.intersection(*candidate_sets)
        else:
            candidates = set(self._streams)

        if rest:
            candidates = {
                sid
                for sid in candidates
                if all(m.matches(self._streams[sid]) for m in rest)
            }
        return sorted(candidates)

    # ------------------------------------------------------------------
    # Introspection (Grafana's label browser; bench C3 sizing)
    # ------------------------------------------------------------------
    def label_names(self) -> list[str]:
        return sorted({name for name, _ in self._postings})

    def label_values(self, name: str) -> list[str]:
        return sorted({v for (n, v) in self._postings if n == name})

    def size_bytes(self) -> int:
        """Approximate resident size of the index structures."""
        total = 0
        for labels in self._streams.values():
            for name, value in labels.items_tuple():
                total += len(name.encode()) + len(value.encode()) + 16
        for (name, value), postings in self._postings.items():
            total += len(name.encode()) + len(value.encode()) + 8 * len(postings)
        return total

    def all_stream_ids(self) -> list[int]:
        return sorted(self._streams)
