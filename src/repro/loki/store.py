"""The Loki store: ingestion, chunk lifecycle, selection, sharded cluster.

``LokiStore`` is a single ingester; ``LokiCluster`` shards streams across
several ingesters by label hash, mirroring the 8-worker deployment the
paper evaluates on (bench C8 sweeps the worker count).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.common.errors import ValidationError
from repro.common.hashing import mix64
from repro.common.labels import LabelSet, Matcher
from repro.loki.chunks import Chunk, ChunkPolicy
from repro.loki.index import LabelIndex
from repro.loki.model import LogEntry, PushRequest


@dataclass
class StoreStats:
    """Ingest/storage accounting for the benches.

    Every field must be a summable counter: :func:`aggregate_stats` folds
    stores field-by-field via :func:`dataclasses.fields`.
    """

    entries_ingested: int = 0
    bytes_ingested: int = 0
    entries_rejected: int = 0
    chunks_created: int = 0
    chunks_sealed: int = 0
    chunks_flushed: int = 0


def aggregate_stats(stores: Iterable["LokiStore"]) -> StoreStats:
    """Field-wise sum of many stores' stats — the cluster-wide totals
    benches and exporters read off a sharded or replicated deployment.

    Iterates the dataclass fields rather than hand-listing them, so a
    counter added to :class:`StoreStats` can never be silently dropped
    from cluster totals (``tests/test_aggregate_stats.py`` pins this).
    """
    total = StoreStats()
    names = [f.name for f in dataclasses.fields(StoreStats)]
    for store in stores:
        for name in names:
            setattr(total, name, getattr(total, name) + getattr(store.stats, name))
    return total


class LokiStore:
    """A single-ingester Loki.

    Per stream the store keeps an ordered list of chunks; only the last may
    be open.  Out-of-order entries (older than the stream's newest
    timestamp) are rejected, as Loki 2.4 does by default.
    """

    def __init__(
        self,
        policy: ChunkPolicy | None = None,
        reject_out_of_order: bool = True,
    ) -> None:
        self.policy = policy or ChunkPolicy()
        self.reject_out_of_order = reject_out_of_order
        self.index = LabelIndex()
        self._chunks: dict[int, list[Chunk]] = {}
        self._last_ts: dict[int, int] = {}
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, request: PushRequest) -> int:
        """Ingest a push request; returns accepted entry count."""
        accepted = 0
        for stream in request.streams:
            accepted += self.push_stream(stream.labels, stream.entries)
        return accepted

    def push_stream(
        self, labels: LabelSet | Mapping[str, str], entries: Iterable[LogEntry]
    ) -> int:
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        sid = self.index.get_or_create(labelset)
        chunks = self._chunks.setdefault(sid, [])
        accepted = 0
        for entry in entries:
            last = self._last_ts.get(sid)
            if last is not None and entry.timestamp_ns < last:
                if self.reject_out_of_order:
                    self.stats.entries_rejected += 1
                    continue
                raise ValidationError("out-of-order entry with rejection disabled")
            chunk = chunks[-1] if chunks else None
            if chunk is None or not chunk.space_for(entry):
                if chunk is not None:
                    chunk.seal()
                    self.stats.chunks_sealed += 1
                chunk = Chunk(self.policy)
                chunks.append(chunk)
                self.stats.chunks_created += 1
            chunk.append(entry)
            self._last_ts[sid] = entry.timestamp_ns
            accepted += 1
            self.stats.entries_ingested += 1
            self.stats.bytes_ingested += entry.size_bytes()
        return accepted

    def replace_stream(
        self, labels: LabelSet | Mapping[str, str], entries: Iterable[LogEntry]
    ) -> int:
        """Rebuild one stream from scratch with the given history.

        The anti-entropy repair path (repro.selfheal) needs this: a
        replica that took over a stream mid-outage holds only a *suffix*,
        and the missing older entries can never arrive through
        :meth:`push_stream` — the out-of-order watermark rejects them.
        Replacing drops the stream's resident chunks and ordering
        watermark, then re-ingests the merged history in timestamp
        order through the normal push path.  Returns entries stored.

        This is a physical rewrite: ingest counters advance for the
        re-written entries exactly as they would for fresh pushes.
        """
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        sid = self.index.get_or_create(labelset)
        self._chunks[sid] = []
        self._last_ts.pop(sid, None)
        return self.push_stream(labelset, entries)

    def flush_aged(self, now_ns: int) -> int:
        """Seal open chunks older than the policy's max age; returns count."""
        sealed = 0
        for chunks in self._chunks.values():
            if chunks and not chunks[-1].sealed:
                chunk = chunks[-1]
                if chunk.age_ns(now_ns) >= self.policy.max_age_ns:
                    chunk.seal()
                    self.stats.chunks_sealed += 1
                    sealed += 1
        return sealed

    def flush_all(self) -> int:
        """Seal every open chunk (shutdown / test determinism)."""
        sealed = 0
        for chunks in self._chunks.values():
            if chunks and not chunks[-1].sealed:
                chunks[-1].seal()
                self.stats.chunks_sealed += 1
                sealed += 1
        return sealed

    # ------------------------------------------------------------------
    # Selection (LogQL's data plane)
    # ------------------------------------------------------------------
    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Entries per matching stream with ``start <= ts < end``.

        Only chunks overlapping the window are decompressed — the chunk
        time-bounds act as a coarse secondary index.
        """
        if end_ns <= start_ns:
            raise ValidationError("empty time range")
        out = []
        for sid in self.index.select(matchers):
            entries: list[LogEntry] = []
            for chunk in self._chunks.get(sid, []):
                if chunk.overlaps(start_ns, end_ns):
                    entries.extend(chunk.entries_between(start_ns, end_ns))
            if entries:
                out.append((self.index.labels_of(sid), entries))
        return out

    def delete_before(self, cutoff_ns: int) -> int:
        """Retention: drop sealed chunks entirely before ``cutoff_ns``.

        Returns the number of chunks dropped.  Open or straddling chunks
        are kept (Loki deletes at chunk granularity).
        """
        dropped = 0
        for sid, chunks in self._chunks.items():
            keep = []
            for chunk in chunks:
                if (
                    chunk.sealed
                    and chunk.last_ts_ns is not None
                    and chunk.last_ts_ns < cutoff_ns
                ):
                    dropped += 1
                else:
                    keep.append(chunk)
            self._chunks[sid] = keep
        return dropped

    def expired_entries(
        self, cutoff_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Entries :meth:`delete_before` would drop at ``cutoff_ns``,
        grouped per stream — what a retention sweep archives first."""
        out = []
        for sid, chunks in self._chunks.items():
            doomed: list[LogEntry] = []
            for chunk in chunks:
                if (
                    chunk.sealed
                    and chunk.last_ts_ns is not None
                    and chunk.last_ts_ns < cutoff_ns
                ):
                    doomed.extend(chunk.entries())
            if doomed:
                out.append((self.index.labels_of(sid), doomed))
        return out

    # ------------------------------------------------------------------
    # Flush-to-cold support (the chunk shipper's surface)
    # ------------------------------------------------------------------
    def sealed_chunks(self) -> list[tuple[LabelSet, Chunk]]:
        """Every resident sealed chunk with its stream's labels — the
        shipper's work list.  Open chunks stay out: they are still
        accepting writes and have no immutable payload yet."""
        out: list[tuple[LabelSet, Chunk]] = []
        for sid, chunks in self._chunks.items():
            labels = self.index.labels_of(sid)
            out.extend((labels, chunk) for chunk in chunks if chunk.sealed)
        return out

    def drop_chunk(self, labels: LabelSet | Mapping[str, str], chunk: Chunk) -> bool:
        """Release one flushed chunk from resident memory (by identity).

        The stream itself — its index entry and its ``_last_ts`` ordering
        watermark — survives, so out-of-order rejection after a flush is
        exactly as it was before: flushing is a storage move, not a
        logical deletion.  Returns whether the chunk was resident.
        """
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        sid = self.index.lookup(labelset)
        if sid is None:
            return False
        chunks = self._chunks.get(sid, [])
        for i, resident in enumerate(chunks):
            if resident is chunk:
                del chunks[i]
                self.stats.chunks_flushed += 1
                return True
        return False

    def stream_labels(self) -> list[LabelSet]:
        """Label sets of every known stream (flushed-away ones included)."""
        return [
            self.index.labels_of(sid) for sid in self.index.all_stream_ids()
        ]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def chunk_count(self) -> int:
        return sum(len(c) for c in self._chunks.values())

    def stream_count(self) -> int:
        return len(self.index)

    def stored_bytes(self) -> int:
        """Resident chunk bytes (compressed where sealed)."""
        return sum(c.stored_bytes() for chunks in self._chunks.values() for c in chunks)

    def uncompressed_bytes(self) -> int:
        return sum(
            c.uncompressed_bytes() for chunks in self._chunks.values() for c in chunks
        )

    def index_bytes(self) -> int:
        return self.index.size_bytes()

    def oldest_entry_ns(self) -> int | None:
        """Timestamp of the oldest resident entry, or ``None`` if empty."""
        oldest: int | None = None
        for chunks in self._chunks.values():
            for chunk in chunks:
                if chunk.first_ts_ns is not None and (
                    oldest is None or chunk.first_ts_ns < oldest
                ):
                    oldest = chunk.first_ts_ns
        return oldest

    def compression_ratio(self) -> float:
        stored = self.stored_bytes()
        return self.uncompressed_bytes() / stored if stored else 0.0


@dataclass
class _Shard:
    store: LokiStore
    pushes: int = 0
    entries: int = 0


class LokiCluster:
    """Label-hash sharded Loki: N ingesters behind one query frontend.

    Ingest work distributes by stream-label hash (Loki's distributor ring);
    queries fan out to every shard and merge.  ``max_shard_entries`` over
    ``total_entries`` approximates the parallel-speedup the 8-worker
    deployment in the paper gets (bench C8).
    """

    def __init__(
        self, shards: int = 8, policy: ChunkPolicy | None = None
    ) -> None:
        if shards < 1:
            raise ValidationError("need at least one shard")
        self._shards = [_Shard(LokiStore(policy)) for _ in range(shards)]

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _shard_for(self, labels: LabelSet) -> _Shard:
        h = 0xCBF29CE484222325
        for name, value in labels.items_tuple():
            for byte in f"{name}={value};".encode():
                h ^= byte
                h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        # Raw FNV-1a mod a small shard count collapses structured label
        # corpora (values differing only in stride-8 characters all share
        # their low bits); the SplitMix64 finalizer restores balance —
        # same fix the ring applied to its vnode tokens.
        return self._shards[mix64(h) % len(self._shards)]

    def push(self, request: PushRequest) -> int:
        accepted = 0
        for stream in request.streams:
            shard = self._shard_for(stream.labels)
            got = shard.store.push_stream(stream.labels, stream.entries)
            shard.pushes += 1
            shard.entries += got
            accepted += got
        return accepted

    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        matchers = list(matchers)
        out: list[tuple[LabelSet, list[LogEntry]]] = []
        for shard in self._shards:
            out.extend(shard.store.select(matchers, start_ns, end_ns))
        out.sort(key=lambda pair: pair[0].items_tuple())
        return out

    def flush_all(self) -> int:
        return sum(s.store.flush_all() for s in self._shards)

    @property
    def stats(self) -> StoreStats:
        """Cluster-wide ingest/storage totals across every shard."""
        return aggregate_stats(s.store for s in self._shards)

    def shard_entry_counts(self) -> list[int]:
        return [s.entries for s in self._shards]

    def parallel_speedup(self) -> float:
        """total work / max per-shard work — ideal-parallel ingest speedup."""
        counts = self.shard_entry_counts()
        peak = max(counts)
        return (sum(counts) / peak) if peak else float(len(counts))

    def total_entries(self) -> int:
        return sum(self.shard_entry_counts())
