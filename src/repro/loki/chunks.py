"""Chunk storage: compressed buckets of one stream's log content.

Paper §IV.A: "Loki indexes the timestamp and labels only, and the log
contents are compressed and stored in chunks ... Each log stream fills a
separate chunk. So logs with the same combination of labels are stored in
the same chunk, and sorted in timestamp order. When a chunk is full, Loki
creates a new chunk. Chunks are first stored in memory, and then moved to
disk."

A chunk here accumulates entries in an in-memory *head block*; when the
head reaches the policy's target size (or the chunk's age exceeds the
policy's max age at flush time), it is *sealed*: the content is
zlib-compressed into immutable bytes.  Reads transparently decompress.
Compression statistics feed the storage-cost benches (C3/C4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.common.errors import StateError, ValidationError
from repro.loki.model import LogEntry

_SEPARATOR = "\x1e"  # record separator; never appears in log lines we accept


@dataclass(frozen=True)
class ChunkPolicy:
    """Chunk sizing policy.

    ``target_size_bytes`` bounds the uncompressed head block; Loki prefers
    "bigger but fewer chunks" so the production default is large.
    ``max_age_ns`` bounds how long a chunk may keep accumulating before the
    store seals it regardless of size (Loki's ``max_chunk_age``).
    """

    target_size_bytes: int = 256 * 1024
    max_age_ns: int = 2 * 60 * 60 * 1_000_000_000  # 2h

    def __post_init__(self) -> None:
        if self.target_size_bytes < 1:
            raise ValidationError("target size must be positive")
        if self.max_age_ns < 1:
            raise ValidationError("max age must be positive")


class Chunk:
    """One stream's bucket of time-ordered entries."""

    __slots__ = (
        "policy",
        "first_ts_ns",
        "last_ts_ns",
        "_head",
        "_head_bytes",
        "_content_bytes",
        "_sealed",
        "_compressed",
        "entry_count",
    )

    def __init__(self, policy: ChunkPolicy) -> None:
        self.policy = policy
        self.first_ts_ns: int | None = None
        self.last_ts_ns: int | None = None
        self._head: list[LogEntry] = []
        self._head_bytes = 0
        self._content_bytes = 0
        self._sealed = False
        self._compressed: bytes | None = None
        self.entry_count = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @property
    def sealed(self) -> bool:
        return self._sealed

    def space_for(self, entry: LogEntry) -> bool:
        """Whether the head block can absorb ``entry`` without exceeding
        the target size (an empty chunk always accepts one entry)."""
        if self._sealed:
            return False
        if not self._head:
            return True
        return self._head_bytes + entry.size_bytes() <= self.policy.target_size_bytes

    def append(self, entry: LogEntry) -> None:
        """Append one entry. Entries must arrive in timestamp order within
        the stream (the store enforces out-of-order rejection)."""
        if self._sealed:
            raise StateError("cannot append to a sealed chunk")
        if _SEPARATOR in entry.line:
            raise ValidationError("log line contains reserved separator byte 0x1e")
        if self.last_ts_ns is not None and entry.timestamp_ns < self.last_ts_ns:
            raise ValidationError(
                f"out-of-order entry: {entry.timestamp_ns} < {self.last_ts_ns}"
            )
        if self.first_ts_ns is None:
            self.first_ts_ns = entry.timestamp_ns
        self.last_ts_ns = entry.timestamp_ns
        self._head.append(entry)
        self._head_bytes += entry.size_bytes()
        self._content_bytes += entry.size_bytes()
        self.entry_count += 1

    def seal(self) -> None:
        """Compress the head block; the chunk becomes immutable."""
        if self._sealed:
            return
        payload = _SEPARATOR.join(
            f"{e.timestamp_ns}{_SEPARATOR}{e.line}" for e in self._head
        )
        self._compressed = zlib.compress(payload.encode(), level=6)
        self._head = []
        self._head_bytes = 0
        self._sealed = True

    # ------------------------------------------------------------------
    # Shipping (object-store flush / restore)
    # ------------------------------------------------------------------
    def payload(self) -> bytes:
        """The sealed, compressed payload — what the shipper uploads.

        Deterministic for a given entry sequence (fixed separator format,
        fixed zlib level), which is what lets identical replica chunks
        dedup to one object by content hash.
        """
        if not self._sealed:
            raise StateError("only sealed chunks have a payload")
        return self._compressed or b""

    @classmethod
    def restore(
        cls,
        policy: ChunkPolicy,
        payload: bytes,
        first_ts_ns: int | None,
        last_ts_ns: int | None,
        entry_count: int,
        content_bytes: int,
    ) -> "Chunk":
        """Rebuild a sealed chunk from a shipped payload plus the metadata
        its index ref carried — the store-gateway's read path."""
        chunk = cls(policy)
        chunk.first_ts_ns = first_ts_ns
        chunk.last_ts_ns = last_ts_ns
        chunk.entry_count = entry_count
        chunk._content_bytes = content_bytes
        chunk._compressed = payload
        chunk._sealed = True
        return chunk

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries(self) -> list[LogEntry]:
        """All entries in timestamp order (decompressing if sealed)."""
        if not self._sealed:
            return list(self._head)
        if self._compressed is None or self.entry_count == 0:
            return []
        text = zlib.decompress(self._compressed).decode()
        fields = text.split(_SEPARATOR)
        out = []
        for i in range(0, len(fields) - 1, 2):
            out.append(LogEntry(int(fields[i]), fields[i + 1]))
        return out

    def entries_between(self, start_ns: int, end_ns: int) -> list[LogEntry]:
        """Entries with ``start_ns <= ts < end_ns``."""
        if self.first_ts_ns is None:
            return []
        if self.last_ts_ns < start_ns or self.first_ts_ns >= end_ns:
            return []
        return [e for e in self.entries() if start_ns <= e.timestamp_ns < end_ns]

    def overlaps(self, start_ns: int, end_ns: int) -> bool:
        if self.first_ts_ns is None:
            return False
        return self.last_ts_ns >= start_ns and self.first_ts_ns < end_ns

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def uncompressed_bytes(self) -> int:
        """Logical (pre-compression) content size: sum of line bytes."""
        return self._content_bytes

    def stored_bytes(self) -> int:
        """Actual resident size: compressed if sealed, raw if in memory."""
        if self._sealed:
            return len(self._compressed or b"")
        return self._head_bytes

    def age_ns(self, now_ns: int) -> int:
        if self.first_ts_ns is None:
            return 0
        return max(0, now_ns - self.first_ts_ns)
