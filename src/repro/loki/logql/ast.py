"""LogQL abstract syntax tree.

Two expression families share the tree:

* **log queries** evaluate to filtered log lines (:class:`LogPipeline`);
* **metric queries** evaluate to instant vectors (:class:`RangeAgg`,
  :class:`VectorAgg`, :class:`BinOp`, :class:`Scalar`).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Union

from repro.common.errors import QueryError, ValidationError
from repro.common.labels import Matcher


class LineFilterOp(enum.Enum):
    CONTAINS = "|="
    NOT_CONTAINS = "!="
    MATCHES = "|~"
    NOT_MATCHES = "!~"


@dataclass(frozen=True)
class LineFilter:
    """A content filter stage (``|= "needle"`` and friends)."""

    op: LineFilterOp
    needle: str

    def __post_init__(self) -> None:
        if self.op in (LineFilterOp.MATCHES, LineFilterOp.NOT_MATCHES):
            try:
                object.__setattr__(self, "_regex", re.compile(self.needle))
            except re.error as exc:
                raise QueryError(f"bad line-filter regex: {exc}") from exc

    def keep(self, line: str) -> bool:
        if self.op is LineFilterOp.CONTAINS:
            return self.needle in line
        if self.op is LineFilterOp.NOT_CONTAINS:
            return self.needle not in line
        hit = self._regex.search(line) is not None  # type: ignore[attr-defined]
        return hit if self.op is LineFilterOp.MATCHES else not hit


class ParserKind(enum.Enum):
    JSON = "json"
    LOGFMT = "logfmt"
    PATTERN = "pattern"


@dataclass(frozen=True)
class ParserStage:
    """A label-extraction stage (``| json``, ``| pattern "..."``)."""

    kind: ParserKind
    arg: str | None = None

    def __post_init__(self) -> None:
        if self.kind is ParserKind.PATTERN and not self.arg:
            raise QueryError("pattern parser requires a template argument")


class CmpOp(enum.Enum):
    EQ = "=="
    NEQ = "!="
    GT = ">"
    GTE = ">="
    LT = "<"
    LTE = "<="

    def apply(self, a: float, b: float) -> bool:
        return {
            CmpOp.EQ: a == b,
            CmpOp.NEQ: a != b,
            CmpOp.GT: a > b,
            CmpOp.GTE: a >= b,
            CmpOp.LT: a < b,
            CmpOp.LTE: a <= b,
        }[self]


@dataclass(frozen=True)
class LabelFilter:
    """A post-parser filter on (stream + extracted) labels.

    Either a string matcher (``severity="Warning"``) or a numeric
    comparison (``value > 10``) — picked by whether ``number`` is set.
    """

    matcher: Matcher | None = None
    name: str | None = None
    cmp: CmpOp | None = None
    number: float | None = None

    def __post_init__(self) -> None:
        string_form = self.matcher is not None
        numeric_form = (
            self.name is not None and self.cmp is not None and self.number is not None
        )
        if string_form == numeric_form:
            raise ValidationError("label filter must be string XOR numeric")

    def keep(self, labels: dict[str, str]) -> bool:
        if self.matcher is not None:
            return self.matcher.matches(labels)
        value = labels.get(self.name or "")
        if value is None:
            return False
        try:
            num = float(value)
        except ValueError:
            return False
        assert self.cmp is not None and self.number is not None
        return self.cmp.apply(num, self.number)


@dataclass(frozen=True)
class LineFormatStage:
    """``| line_format "{{.severity}}: {{.msg}}"`` — rewrite the line from
    a Go-template subset (``{{.label}}`` substitutions; ``{{.__line__}}``
    inserts the current line)."""

    template: str

    def __post_init__(self) -> None:
        if not self.template:
            raise QueryError("line_format needs a template")


@dataclass(frozen=True)
class LabelFormatStage:
    """``| label_format dst=src`` — rename/copy a label (dst gets src's
    value; src is kept, as in real Loki)."""

    dst: str
    src: str

    def __post_init__(self) -> None:
        if not self.dst or not self.src:
            raise QueryError("label_format needs dst=src")


@dataclass(frozen=True)
class UnwrapStage:
    """``| unwrap latency_ms`` — promote a label to the sample value.

    Must be the last pipeline stage; enables the unwrapped range
    aggregations (``sum_over_time``, ``avg_over_time``, ...).  The
    unwrapped label is removed from the result labels, as in real Loki.
    """

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise QueryError("unwrap needs a label name")


PipelineStage = Union[
    LineFilter,
    ParserStage,
    LabelFilter,
    UnwrapStage,
    LineFormatStage,
    LabelFormatStage,
]


@dataclass(frozen=True)
class LogPipeline:
    """A stream selector plus its ordered pipeline stages."""

    matchers: tuple[Matcher, ...]
    stages: tuple[PipelineStage, ...] = ()

    def __post_init__(self) -> None:
        if not self.matchers:
            raise QueryError("selector needs at least one matcher")
        unwraps = [i for i, s in enumerate(self.stages)
                   if isinstance(s, UnwrapStage)]
        if len(unwraps) > 1:
            raise QueryError("at most one unwrap stage is allowed")
        if unwraps and unwraps[0] != len(self.stages) - 1:
            raise QueryError("unwrap must be the final pipeline stage")

    @property
    def unwrap_label(self) -> str | None:
        if self.stages and isinstance(self.stages[-1], UnwrapStage):
            return self.stages[-1].label
        return None


class RangeFunc(enum.Enum):
    COUNT_OVER_TIME = "count_over_time"
    RATE = "rate"
    BYTES_OVER_TIME = "bytes_over_time"
    BYTES_RATE = "bytes_rate"
    # Unwrapped aggregations (require `| unwrap <label>` in the pipeline):
    SUM_OVER_TIME = "sum_over_time"
    AVG_OVER_TIME = "avg_over_time"
    MAX_OVER_TIME = "max_over_time"
    MIN_OVER_TIME = "min_over_time"


#: Range functions operating on unwrapped numeric sample values.
UNWRAPPED_FUNCS = frozenset(
    {
        RangeFunc.SUM_OVER_TIME,
        RangeFunc.AVG_OVER_TIME,
        RangeFunc.MAX_OVER_TIME,
        RangeFunc.MIN_OVER_TIME,
    }
)


@dataclass(frozen=True)
class RangeAgg:
    """``count_over_time({...} |= "x" | json [60m])`` — log range aggregation."""

    func: RangeFunc
    pipeline: LogPipeline
    range_ns: int

    def __post_init__(self) -> None:
        if self.range_ns <= 0:
            raise QueryError("range window must be positive")
        has_unwrap = any(
            isinstance(stage, UnwrapStage) for stage in self.pipeline.stages
        )
        if self.func in UNWRAPPED_FUNCS and not has_unwrap:
            raise QueryError(
                f"{self.func.value} requires an `| unwrap <label>` stage"
            )
        if self.func not in UNWRAPPED_FUNCS and has_unwrap:
            raise QueryError(
                f"{self.func.value} cannot be applied to an unwrapped pipeline"
            )


class VectorOp(enum.Enum):
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"
    COUNT = "count"


class GroupMode(enum.Enum):
    NONE = "none"
    BY = "by"
    WITHOUT = "without"


@dataclass(frozen=True)
class VectorAgg:
    """``sum(...) by (severity, context)`` — vector aggregation."""

    op: VectorOp
    expr: "MetricExpr"
    mode: GroupMode = GroupMode.NONE
    labels: tuple[str, ...] = ()


class ArithOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"

    def apply(self, a: float, b: float) -> float:
        if self is ArithOp.ADD:
            return a + b
        if self is ArithOp.SUB:
            return a - b
        if self is ArithOp.MUL:
            return a * b
        return a / b if b != 0 else float("nan")


@dataclass(frozen=True)
class Scalar:
    value: float


@dataclass(frozen=True)
class BinOp:
    """Vector-vs-scalar binary operation.

    Comparisons *filter* the vector (PromQL semantics without ``bool``);
    arithmetic transforms sample values.  Exactly one side is a scalar.
    """

    op: CmpOp | ArithOp
    lhs: "MetricExpr | Scalar"
    rhs: "MetricExpr | Scalar"

    def __post_init__(self) -> None:
        scalar_sides = isinstance(self.lhs, Scalar) + isinstance(self.rhs, Scalar)
        if scalar_sides != 1:
            raise QueryError("binary op must combine one vector and one scalar")


MetricExpr = Union[RangeAgg, VectorAgg, BinOp]
Expr = Union[LogPipeline, RangeAgg, VectorAgg, BinOp]


@dataclass(frozen=True)
class PatternTemplate:
    """Compiled ``pattern`` template: alternating literals and captures.

    ``[<severity>] problem:<problem>, xname:<xname>, state:<state>``
    captures four fields; ``<_>`` skips anonymously.
    """

    literals: tuple[str, ...] = field(default=())
    captures: tuple[str | None, ...] = field(default=())

    @classmethod
    def compile(cls, template: str) -> "PatternTemplate":
        literals: list[str] = []
        captures: list[str | None] = []
        buf: list[str] = []
        i = 0
        while i < len(template):
            ch = template[i]
            if ch == "<":
                end = template.find(">", i)
                if end == -1:
                    raise QueryError("unterminated capture in pattern template")
                name = template[i + 1 : end]
                if name != "_" and not re.match(r"^[a-zA-Z_][a-zA-Z0-9_]*$", name):
                    raise QueryError(f"bad capture name {name!r} in pattern")
                literals.append("".join(buf))
                buf = []
                captures.append(None if name == "_" else name)
                i = end + 1
            else:
                buf.append(ch)
                i += 1
        literals.append("".join(buf))
        if not captures:
            raise QueryError("pattern template has no captures")
        for k in range(1, len(literals) - 1):
            if literals[k] == "":
                raise QueryError("pattern captures must be separated by literals")
        return cls(tuple(literals), tuple(captures))

    def match(self, line: str) -> dict[str, str] | None:
        """Extract capture values, or ``None`` if the line doesn't match."""
        pos = 0
        first = self.literals[0]
        if first:
            if not line.startswith(first):
                return None
            pos = len(first)
        out: dict[str, str] = {}
        for idx, name in enumerate(self.captures):
            nxt = self.literals[idx + 1]
            if nxt == "":
                # Final capture swallows the remainder.
                value = line[pos:]
                pos = len(line)
            else:
                end = line.find(nxt, pos)
                if end == -1:
                    return None
                value = line[pos:end]
                pos = end + len(nxt)
            if name is not None:
                out[name] = value
        # Non-greedy, whole-line semantics: anything left after the final
        # literal means the line does not fit the template.
        if pos != len(line):
            return None
        return out
