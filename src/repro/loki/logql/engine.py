"""LogQL evaluation engine.

Evaluates parsed queries against a :class:`~repro.loki.store.LokiStore`
(or sharded cluster — anything with ``select``).  The engine implements
the paper's core conversion: log lines, filtered and parsed, become
Prometheus-style instant vectors / range series that Grafana plots and
the Ruler alerts on.

Extracted labels (from ``json`` / ``pattern`` / ``logfmt`` stages) join
the stream labels for grouping, which is exactly how the paper's Figure-5
query groups by ``severity``/``message_id`` that exist only *inside* the
log line.
"""

from __future__ import annotations

import re
from typing import Iterable, Protocol

from repro.common.errors import QueryError
from repro.common.jsonutil import flatten_json
from repro.common.labels import LabelSet, Matcher, validate_label_name
from repro.common.simclock import NANOS_PER_SECOND
from repro.common.vector import Sample, Series
from repro.loki.logql.ast import (
    ArithOp,
    BinOp,
    CmpOp,
    Expr,
    GroupMode,
    LabelFilter,
    LabelFormatStage,
    LineFilter,
    LineFilterOp,
    LineFormatStage,
    LogPipeline,
    MetricExpr,
    ParserKind,
    ParserStage,
    PatternTemplate,
    RangeAgg,
    RangeFunc,
    Scalar,
    UNWRAPPED_FUNCS,
    UnwrapStage,
    VectorAgg,
    VectorOp,
)
from repro.loki.logql.parser import parse
from repro.loki.model import LogEntry

#: Label attached when a parser stage fails on a line (as real Loki does).
ERROR_LABEL = "__error__"

_LINE_FORMAT_RE = re.compile(r"\{\{\s*\.([a-zA-Z_][a-zA-Z0-9_]*)\s*\}\}")


def _render_line_format(template: str, labels: dict, line: str) -> str:
    """Render the ``{{.label}}`` Go-template subset; ``{{.__line__}}``
    expands to the current line, unknown labels to the empty string."""

    def sub(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name == "__line__":
            return line
        return labels.get(name, "")

    return _LINE_FORMAT_RE.sub(sub, template)

_LOGFMT_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)=("(?:[^"\\]|\\.)*"|\S*)')


class LogSource(Protocol):
    """What the engine needs from a store (single-node or sharded)."""

    def select(
        self, matchers: Iterable[Matcher], start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]: ...


class PatternSource(Protocol):
    """What ``detected_patterns`` needs from a pattern store."""

    def query(
        self,
        matchers: Iterable[Matcher],
        start_ns: int,
        end_ns: int,
        tenant: str | None = None,
    ) -> list: ...


class LogQLEngine:
    """Evaluates LogQL log and metric queries."""

    def __init__(
        self, source: LogSource, patterns: "PatternSource | None" = None
    ) -> None:
        self._source = source
        self._patterns = patterns
        self._pattern_cache: dict[str, PatternTemplate] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def detected_patterns(
        self,
        selector: str | LogPipeline,
        start_ns: int,
        end_ns: int,
        tenant: str | None = None,
    ):
        """Mined templates for streams matching a bare selector, busiest
        first (Loki's ``/loki/api/v1/detected_patterns``).

        Requires a pattern store wired in (``enable_pattern_mining``);
        the selector must carry no pipeline stages — patterns are mined
        from raw lines, so filters cannot apply.
        """
        if self._patterns is None:
            raise QueryError(
                "detected_patterns requires pattern mining "
                "(enable_pattern_mining / REPRO_PATTERNS=1)"
            )
        expr = parse(selector) if isinstance(selector, str) else selector
        if not isinstance(expr, LogPipeline) or expr.stages:
            raise QueryError("detected_patterns requires a bare stream selector")
        if end_ns <= start_ns:
            raise QueryError("detected_patterns requires start < end")
        return self._patterns.query(
            expr.matchers, start_ns, end_ns, tenant=tenant
        )

    def query_logs(
        self, query: str | LogPipeline, start_ns: int, end_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Run a log query; returns entries grouped by final label set,
        each group sorted by timestamp."""
        expr = parse(query) if isinstance(query, str) else query
        if not isinstance(expr, LogPipeline):
            raise QueryError("query_logs requires a log query, not a metric query")
        if expr.unwrap_label is not None:
            raise QueryError("unwrap is only valid inside a range aggregation")
        grouped = self._eval_pipeline(expr, start_ns, end_ns)
        return sorted(grouped.items(), key=lambda kv: kv[0].items_tuple())

    def query_instant(self, query: str | Expr, time_ns: int) -> list[Sample]:
        """Evaluate a metric query at one instant; returns a vector."""
        expr = parse(query) if isinstance(query, str) else query
        if isinstance(expr, LogPipeline):
            raise QueryError("instant query requires a metric query")
        samples = self._eval_metric(expr, time_ns)
        return sorted(samples, key=lambda s: s.labels.items_tuple())

    def query_range(
        self, query: str | Expr, start_ns: int, end_ns: int, step_ns: int
    ) -> list[Series]:
        """Evaluate a metric query at each step in ``[start, end]``."""
        if step_ns <= 0:
            raise QueryError("step must be positive")
        if end_ns < start_ns:
            raise QueryError("end before start")
        expr = parse(query) if isinstance(query, str) else query
        if isinstance(expr, LogPipeline):
            raise QueryError("range query requires a metric query")
        series: dict[LabelSet, list[tuple[int, float]]] = {}
        t = start_ns
        while t <= end_ns:
            for sample in self._eval_metric(expr, t):
                series.setdefault(sample.labels, []).append((t, sample.value))
            t += step_ns
        return [
            Series(labels, tuple(points))
            for labels, points in sorted(
                series.items(), key=lambda kv: kv[0].items_tuple()
            )
        ]

    # ------------------------------------------------------------------
    # Pipeline evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def _line_hints(pipeline: LogPipeline) -> tuple[str, ...]:
        """CONTAINS needles that apply to the *stored* line.

        Filters appearing after a ``line_format`` stage see rewritten
        lines and cannot gate raw chunks.  The hints are purely a
        pruning aid for stores that understand them (bloom blocks);
        every filter is still re-applied here, so a store that ignores
        or over-prunes nothing changes answers.
        """
        needles = []
        for stage in pipeline.stages:
            if isinstance(stage, LineFormatStage):
                break
            if isinstance(stage, LineFilter) and stage.op is LineFilterOp.CONTAINS:
                needles.append(stage.needle)
        return tuple(needles)

    def _eval_pipeline(
        self, pipeline: LogPipeline, start_ns: int, end_ns: int
    ) -> dict[LabelSet, list[LogEntry]]:
        if getattr(self._source, "supports_line_hints", False):
            raw = self._source.select(
                pipeline.matchers,
                start_ns,
                end_ns,
                line_contains=self._line_hints(pipeline),
            )
        else:
            raw = self._source.select(pipeline.matchers, start_ns, end_ns)
        grouped: dict[LabelSet, list[LogEntry]] = {}
        for stream_labels, entries in raw:
            base = stream_labels.to_dict()
            for entry in entries:
                final = self._apply_stages(pipeline.stages, base, entry)
                if final is None:
                    continue
                labels, line = final
                grouped.setdefault(labels, []).append(
                    entry if line == entry.line else LogEntry(entry.timestamp_ns, line)
                )
        for entries in grouped.values():
            entries.sort()
        return grouped

    def _apply_stages(
        self,
        stages: tuple,
        base_labels: dict[str, str],
        entry: LogEntry,
    ) -> tuple[LabelSet, str] | None:
        """Run one entry through the pipeline; None means dropped."""
        labels: dict[str, str] | None = None  # lazily copied
        line = entry.line
        for stage in stages:
            if isinstance(stage, LineFilter):
                if not stage.keep(line):
                    return None
            elif isinstance(stage, ParserStage):
                if labels is None:
                    labels = dict(base_labels)
                self._apply_parser(stage, labels, line)
            elif isinstance(stage, LabelFilter):
                current = labels if labels is not None else base_labels
                if not stage.keep(current):
                    return None
            elif isinstance(stage, LineFormatStage):
                current = labels if labels is not None else base_labels
                line = _render_line_format(stage.template, current, line)
            elif isinstance(stage, LabelFormatStage):
                if labels is None:
                    labels = dict(base_labels)
                if stage.src in labels:
                    labels[stage.dst] = labels[stage.src]
            elif isinstance(stage, UnwrapStage):
                # Handled by the range-aggregation path; for plain stage
                # application it is a no-op (validation prevents misuse).
                pass
            else:  # pragma: no cover - parser only emits the four kinds
                raise QueryError(f"unknown stage {stage!r}")
        final_labels = LabelSet(labels if labels is not None else base_labels)
        return final_labels, line

    def _apply_parser(
        self, stage: ParserStage, labels: dict[str, str], line: str
    ) -> None:
        if stage.kind is ParserKind.JSON:
            try:
                import json as _json

                obj = _json.loads(line)
            except (ValueError, TypeError):
                labels[ERROR_LABEL] = "JSONParserErr"
                return
            if not isinstance(obj, dict):
                labels[ERROR_LABEL] = "JSONParserErr"
                return
            for key, value in flatten_json(obj):
                self._set_extracted(labels, key, value)
        elif stage.kind is ParserKind.LOGFMT:
            for m in _LOGFMT_RE.finditer(line):
                key, value = m.group(1), m.group(2)
                if value.startswith('"') and value.endswith('"') and len(value) >= 2:
                    value = value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
                self._set_extracted(labels, key, value)
        elif stage.kind is ParserKind.PATTERN:
            assert stage.arg is not None
            template = self._pattern_cache.get(stage.arg)
            if template is None:
                template = PatternTemplate.compile(stage.arg)
                self._pattern_cache[stage.arg] = template
            extracted = template.match(line)
            if extracted is None:
                labels[ERROR_LABEL] = "PatternParserErr"
                return
            for key, value in extracted.items():
                self._set_extracted(labels, key, value)

    @staticmethod
    def _set_extracted(labels: dict[str, str], key: str, value: str) -> None:
        """Merge an extracted label; collisions with existing labels get the
        ``_extracted`` suffix, as in real Loki."""
        try:
            validate_label_name(key)
        except Exception:
            return  # unextractable key: skip silently (Loki drops them too)
        if key in labels and labels[key] != value:
            labels[f"{key}_extracted"] = value
        else:
            labels[key] = value

    # ------------------------------------------------------------------
    # Metric evaluation
    # ------------------------------------------------------------------
    def _eval_metric(self, expr: MetricExpr | Scalar, time_ns: int) -> list[Sample]:
        if isinstance(expr, RangeAgg):
            return self._eval_range_agg(expr, time_ns)
        if isinstance(expr, VectorAgg):
            return self._eval_vector_agg(expr, time_ns)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, time_ns)
        raise QueryError(f"cannot evaluate {type(expr).__name__} as a vector")

    def _eval_unwrapped(
        self, pipeline: LogPipeline, start_ns: int, end_ns: int
    ) -> dict[LabelSet, list[float]]:
        """Pipeline evaluation yielding numeric sample values per series.

        Entries whose unwrap label is missing or non-numeric are dropped
        (real Loki marks them ``__error__=SampleExtractionErr``); the
        unwrapped label itself is removed from the series labels.
        """
        label = pipeline.unwrap_label
        assert label is not None
        grouped = self._eval_pipeline(pipeline, start_ns, end_ns)
        out: dict[LabelSet, list[float]] = {}
        for labels, entries in grouped.items():
            raw = labels.get(label)
            if raw is None:
                continue
            try:
                value = float(raw)
            except ValueError:
                continue
            series = labels.without(label)
            out.setdefault(series, []).extend([value] * len(entries))
        return out

    def _eval_range_agg(self, expr: RangeAgg, time_ns: int) -> list[Sample]:
        # Window semantics: (time - range, time].
        start = time_ns - expr.range_ns + 1
        end = time_ns + 1
        range_seconds = expr.range_ns / NANOS_PER_SECOND
        if expr.func in UNWRAPPED_FUNCS:
            out = []
            for labels, values in self._eval_unwrapped(
                expr.pipeline, start, end
            ).items():
                if expr.func is RangeFunc.SUM_OVER_TIME:
                    value = sum(values)
                elif expr.func is RangeFunc.AVG_OVER_TIME:
                    value = sum(values) / len(values)
                elif expr.func is RangeFunc.MAX_OVER_TIME:
                    value = max(values)
                else:  # MIN_OVER_TIME
                    value = min(values)
                out.append(Sample(labels, value, time_ns))
            return out
        grouped = self._eval_pipeline(expr.pipeline, start, end)
        out = []
        for labels, entries in grouped.items():
            if expr.func is RangeFunc.COUNT_OVER_TIME:
                value = float(len(entries))
            elif expr.func is RangeFunc.RATE:
                value = len(entries) / range_seconds
            elif expr.func is RangeFunc.BYTES_OVER_TIME:
                value = float(sum(e.size_bytes() for e in entries))
            else:  # BYTES_RATE
                value = sum(e.size_bytes() for e in entries) / range_seconds
            out.append(Sample(labels, value, time_ns))
        return out

    def _eval_vector_agg(self, expr: VectorAgg, time_ns: int) -> list[Sample]:
        inner = self._eval_metric(expr.expr, time_ns)
        groups: dict[LabelSet, list[float]] = {}
        for sample in inner:
            if expr.mode is GroupMode.BY:
                key = sample.labels.project(expr.labels)
            elif expr.mode is GroupMode.WITHOUT:
                key = sample.labels.without(*expr.labels)
            else:
                key = LabelSet()
            groups.setdefault(key, []).append(sample.value)
        out = []
        for labels, values in groups.items():
            if expr.op is VectorOp.SUM:
                value = sum(values)
            elif expr.op is VectorOp.MIN:
                value = min(values)
            elif expr.op is VectorOp.MAX:
                value = max(values)
            elif expr.op is VectorOp.AVG:
                value = sum(values) / len(values)
            else:  # COUNT
                value = float(len(values))
            out.append(Sample(labels, value, time_ns))
        return out

    def _eval_binop(self, expr: BinOp, time_ns: int) -> list[Sample]:
        scalar_left = isinstance(expr.lhs, Scalar)
        scalar = (expr.lhs if scalar_left else expr.rhs)
        assert isinstance(scalar, Scalar)
        vector_expr = expr.rhs if scalar_left else expr.lhs
        vector = self._eval_metric(vector_expr, time_ns)  # type: ignore[arg-type]
        out = []
        for sample in vector:
            a, b = (
                (scalar.value, sample.value)
                if scalar_left
                else (sample.value, scalar.value)
            )
            if isinstance(expr.op, CmpOp):
                if expr.op.apply(a, b):
                    out.append(sample)  # comparison filters, keeps value
            else:
                assert isinstance(expr.op, ArithOp)
                out.append(sample.with_value(expr.op.apply(a, b)))
        return out
