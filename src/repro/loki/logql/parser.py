"""LogQL recursive-descent parser.

Grammar (the implemented subset)::

    expr          := metric_expr | log_pipeline
    log_pipeline  := selector stage*
    selector      := "{" matcher ("," matcher)* "}"
    matcher       := IDENT ("=" | "!=" | "=~" | "!~") STRING
    stage         := line_filter | "|" parser | "|" label_filter
    line_filter   := ("|=" | "!=" | "|~" | "!~") STRING
    parser        := "json" | "logfmt" | "pattern" STRING
    label_filter  := IDENT (("=" | "!=" | "=~" | "!~") STRING
                            | ("==" | "!=" | ">" | ">=" | "<" | "<=") NUMBER)
    metric_expr   := vector_agg | range_agg | metric_expr cmp NUMBER
                     | metric_expr arith NUMBER | NUMBER cmp/arith metric_expr
    range_agg     := FUNC "(" log_pipeline "[" DURATION "]" ")"
    vector_agg    := OP grouping? "(" metric_expr ")" grouping?
    grouping      := ("by" | "without") "(" IDENT ("," IDENT)* ")"
"""

from __future__ import annotations

from repro.common.errors import QueryError
from repro.common.durations import parse_duration_ns
from repro.common.labels import Matcher, MatchOp
from repro.loki.logql.ast import (
    ArithOp,
    BinOp,
    CmpOp,
    Expr,
    GroupMode,
    LabelFilter,
    LineFilter,
    LineFilterOp,
    LogPipeline,
    MetricExpr,
    ParserKind,
    ParserStage,
    PatternTemplate,
    LabelFormatStage,
    LineFormatStage,
    RangeAgg,
    RangeFunc,
    Scalar,
    UnwrapStage,
    VectorAgg,
    VectorOp,
)
from repro.loki.logql.lexer import Tok, Token, tokenize

_RANGE_FUNCS = {f.value: f for f in RangeFunc}
_VECTOR_OPS = {o.value: o for o in VectorOp}
_CMP_TOKENS = {
    Tok.GT: CmpOp.GT,
    Tok.GTE: CmpOp.GTE,
    Tok.LT: CmpOp.LT,
    Tok.LTE: CmpOp.LTE,
    Tok.EQL: CmpOp.EQ,
    Tok.NEQ: CmpOp.NEQ,
}
_ARITH_TOKENS = {
    Tok.ADD: ArithOp.ADD,
    Tok.SUB: ArithOp.SUB,
    Tok.MUL: ArithOp.MUL,
    Tok.DIV: ArithOp.DIV,
}
_MATCH_TOKENS = {
    Tok.EQ: MatchOp.EQ,
    Tok.NEQ: MatchOp.NEQ,
    Tok.RE: MatchOp.RE,
    Tok.NRE: MatchOp.NRE,
}
_LINE_FILTER_TOKENS = {
    Tok.PIPE_EXACT: LineFilterOp.CONTAINS,
    Tok.NEQ: LineFilterOp.NOT_CONTAINS,
    Tok.PIPE_MATCH: LineFilterOp.MATCHES,
    Tok.NRE: LineFilterOp.NOT_MATCHES,
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        idx = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not Tok.EOF:
            self._pos += 1
        return tok

    def expect(self, kind: Tok) -> Token:
        tok = self.next()
        if tok.kind is not kind:
            raise QueryError(
                f"expected {kind.value!r} but found {tok.text or 'EOF'!r} "
                f"at position {tok.pos}"
            )
        return tok

    def at(self, kind: Tok) -> bool:
        return self.peek().kind is kind

    # -- entry ------------------------------------------------------------
    def parse(self) -> Expr:
        expr = self._expr()
        tok = self.peek()
        if tok.kind is not Tok.EOF:
            raise QueryError(f"trailing input at position {tok.pos}: {tok.text!r}")
        return expr

    def _expr(self) -> Expr:
        if self.at(Tok.LBRACE):
            return self._log_pipeline()
        return self._metric_expr()

    # -- log pipelines ------------------------------------------------------
    def _log_pipeline(self) -> LogPipeline:
        matchers = self._selector()
        stages: list = []
        while True:
            tok = self.peek()
            if tok.kind in (Tok.PIPE_EXACT, Tok.PIPE_MATCH, Tok.NEQ, Tok.NRE):
                self.next()
                needle = self.expect(Tok.STRING).text
                stages.append(LineFilter(_LINE_FILTER_TOKENS[tok.kind], needle))
            elif tok.kind is Tok.PIPE:
                self.next()
                stages.append(self._pipe_stage())
            else:
                break
        return LogPipeline(tuple(matchers), tuple(stages))

    def _selector(self) -> list[Matcher]:
        self.expect(Tok.LBRACE)
        matchers = []
        while True:
            name = self.expect(Tok.IDENT).text
            op_tok = self.next()
            if op_tok.kind not in _MATCH_TOKENS:
                raise QueryError(
                    f"expected matcher operator at position {op_tok.pos}, "
                    f"found {op_tok.text!r}"
                )
            value = self.expect(Tok.STRING).text
            matchers.append(Matcher(name, _MATCH_TOKENS[op_tok.kind], value))
            if self.at(Tok.COMMA):
                self.next()
                continue
            break
        self.expect(Tok.RBRACE)
        return matchers

    def _pipe_stage(self):
        tok = self.expect(Tok.IDENT)
        word = tok.text
        if word == "json":
            return ParserStage(ParserKind.JSON)
        if word == "logfmt":
            return ParserStage(ParserKind.LOGFMT)
        if word == "pattern":
            template = self.expect(Tok.STRING).text
            PatternTemplate.compile(template)  # validate eagerly
            return ParserStage(ParserKind.PATTERN, template)
        if word == "unwrap":
            return UnwrapStage(self.expect(Tok.IDENT).text)
        if word == "line_format":
            return LineFormatStage(self.expect(Tok.STRING).text)
        if word == "label_format":
            dst = self.expect(Tok.IDENT).text
            self.expect(Tok.EQ)
            src = self.expect(Tok.IDENT).text
            return LabelFormatStage(dst, src)
        # Otherwise it is a label filter: IDENT op (STRING | NUMBER).
        op_tok = self.next()
        if op_tok.kind in _MATCH_TOKENS and self.at(Tok.STRING):
            value = self.expect(Tok.STRING).text
            return LabelFilter(matcher=Matcher(word, _MATCH_TOKENS[op_tok.kind], value))
        if op_tok.kind in _CMP_TOKENS or op_tok.kind is Tok.EQ:
            num_tok = self.next()
            if num_tok.kind not in (Tok.NUMBER, Tok.DURATION):
                raise QueryError(
                    f"expected number after comparison at position {num_tok.pos}"
                )
            cmp = _CMP_TOKENS.get(op_tok.kind, CmpOp.EQ)
            return LabelFilter(name=word, cmp=cmp, number=float(num_tok.text))
        raise QueryError(
            f"cannot parse pipeline stage near position {op_tok.pos} "
            f"({word!r} {op_tok.text!r})"
        )

    # -- metric expressions -------------------------------------------------
    def _metric_expr(self) -> MetricExpr:
        lhs = self._metric_atom()
        # Left-associative chain of scalar binary ops.
        while True:
            tok = self.peek()
            if tok.kind in _CMP_TOKENS:
                self.next()
                rhs = self._scalar_or_atom()
                lhs = BinOp(_CMP_TOKENS[tok.kind], lhs, rhs)
            elif tok.kind in _ARITH_TOKENS:
                self.next()
                rhs = self._scalar_or_atom()
                lhs = BinOp(_ARITH_TOKENS[tok.kind], lhs, rhs)
            else:
                return lhs

    def _scalar_or_atom(self):
        if self.at(Tok.NUMBER):
            return Scalar(float(self.next().text))
        return self._metric_atom()

    def _metric_atom(self) -> MetricExpr:
        tok = self.peek()
        if tok.kind is Tok.NUMBER:
            # Scalar on the left of a binop, e.g. "2 * rate(...)".
            scalar = Scalar(float(self.next().text))
            op_tok = self.next()
            if op_tok.kind in _CMP_TOKENS:
                return BinOp(_CMP_TOKENS[op_tok.kind], scalar, self._metric_atom())
            if op_tok.kind in _ARITH_TOKENS:
                return BinOp(_ARITH_TOKENS[op_tok.kind], scalar, self._metric_atom())
            raise QueryError(f"bare scalar is not a metric query (pos {tok.pos})")
        if tok.kind is Tok.LPAREN:
            self.next()
            inner = self._metric_expr()
            self.expect(Tok.RPAREN)
            return inner
        if tok.kind is not Tok.IDENT:
            raise QueryError(
                f"expected a function or aggregation at position {tok.pos}, "
                f"found {tok.text or 'EOF'!r}"
            )
        word = tok.text
        if word in _VECTOR_OPS:
            return self._vector_agg()
        if word in _RANGE_FUNCS:
            return self._range_agg()
        raise QueryError(f"unknown function {word!r} at position {tok.pos}")

    def _range_agg(self) -> RangeAgg:
        func = _RANGE_FUNCS[self.expect(Tok.IDENT).text]
        self.expect(Tok.LPAREN)
        pipeline = self._log_pipeline()
        self.expect(Tok.LBRACKET)
        dur = self.expect(Tok.DURATION).text
        range_ns = parse_duration_ns(dur)
        self.expect(Tok.RBRACKET)
        self.expect(Tok.RPAREN)
        return RangeAgg(func, pipeline, range_ns)

    def _vector_agg(self) -> VectorAgg:
        op = _VECTOR_OPS[self.expect(Tok.IDENT).text]
        mode, labels = GroupMode.NONE, ()
        if self.at(Tok.IDENT) and self.peek().text in ("by", "without"):
            mode, labels = self._grouping()
        self.expect(Tok.LPAREN)
        inner = self._metric_expr()
        self.expect(Tok.RPAREN)
        if (
            mode is GroupMode.NONE
            and self.at(Tok.IDENT)
            and self.peek().text in ("by", "without")
        ):
            mode, labels = self._grouping()
        return VectorAgg(op, inner, mode, tuple(labels))

    def _grouping(self) -> tuple[GroupMode, list[str]]:
        word = self.expect(Tok.IDENT).text
        mode = GroupMode.BY if word == "by" else GroupMode.WITHOUT
        self.expect(Tok.LPAREN)
        labels = []
        if not self.at(Tok.RPAREN):
            while True:
                labels.append(self.expect(Tok.IDENT).text)
                if self.at(Tok.COMMA):
                    self.next()
                    continue
                break
        self.expect(Tok.RPAREN)
        return mode, labels


def parse(query: str) -> Expr:
    """Parse a LogQL query into its AST. Raises :class:`QueryError`."""
    if not query or not query.strip():
        raise QueryError("empty query")
    return _Parser(tokenize(query)).parse()
