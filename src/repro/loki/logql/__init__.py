"""LogQL: Grafana Loki's PromQL-inspired query language.

Implemented subset (everything the paper's queries use, plus the common
neighbours):

* stream selectors — ``{cluster="perlmutter", data_type=~"redfish.*"}``
* line filters — ``|= "needle"``, ``!= "needle"``, ``|~ "regex"``, ``!~ "regex"``
* parser stages — ``| json``, ``| logfmt``,
  ``| pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>"``
* label filters after a parser — ``| severity="Warning"``, ``| value > 10``
* line format is *not* implemented (the paper does not use it)
* range aggregations — ``count_over_time``, ``rate``, ``bytes_over_time``,
  ``bytes_rate`` over ``[5m]``-style windows
* vector aggregation — ``sum/min/max/avg/count`` with ``by``/``without``,
  in both ``sum by (a) (x)`` and ``sum(x) by (a)`` forms
* scalar binary ops — comparisons (``> 0`` filters, as in the Ruler rules)
  and arithmetic (``* 2``)

Entry points: :func:`parse` and :class:`LogQLEngine`.
"""

from repro.loki.logql.parser import parse
from repro.loki.logql.engine import LogQLEngine

__all__ = ["parse", "LogQLEngine"]
