"""LogCLI: Loki's command-line query client.

Paper §III.A: "The queries can be executed and visualized using Grafana
or a command line interface, LogCLI."  This module is that interface for
the in-process store: log queries print lines (optionally JSONL), metric
queries print instant vectors or step series, and ``labels`` /
``series`` subcommands browse the index.

Programmatic use::

    from repro.loki.logcli import run_logcli
    output = run_logcli(store, ["query", '{app="fm"} |= "offline"',
                                "--from", "0", "--to", "3600000000000"])
"""

from __future__ import annotations

import argparse
import json

from repro.common.errors import QueryError, ValidationError
from repro.common.jsonutil import ns_to_iso8601
from repro.loki.logql.ast import LogPipeline
from repro.loki.logql.engine import LogQLEngine
from repro.loki.logql.parser import parse
from repro.loki.store import LokiStore


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="logcli", description="Query the Loki store from the command line."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="run a LogQL log or metric query")
    query.add_argument("logql", help="the LogQL expression")
    query.add_argument("--from", dest="from_ns", type=int, required=True,
                       help="window start, ns epoch (inclusive)")
    query.add_argument("--to", dest="to_ns", type=int, required=True,
                       help="window end, ns epoch (exclusive; metric "
                            "queries evaluate at this instant)")
    query.add_argument("--limit", type=int, default=100,
                       help="max log lines printed (default 100)")
    query.add_argument("--step", type=int, default=None,
                       help="step in ns: evaluate a metric range query "
                            "instead of an instant query")
    query.add_argument("--output", choices=("default", "jsonl", "raw"),
                       default="default")
    query.add_argument("--patterns", action="store_true",
                       help="show mined log templates for a bare selector "
                            "(Loki's detected_patterns) instead of lines")

    sub.add_parser("labels", help="list label names in the index")

    values = sub.add_parser("label-values", help="list values of one label")
    values.add_argument("label")

    series = sub.add_parser("series", help="list streams matching a selector")
    series.add_argument("selector")

    slo = sub.add_parser(
        "slo", help="service-level objective status (budget, burn, state)"
    )
    slo.add_argument("--output", choices=("default", "jsonl"),
                     default="default")
    return parser


def run_logcli(store: LokiStore, argv: list[str], patterns=None, slo=None) -> str:
    """Execute one LogCLI invocation against ``store``; returns the output.

    ``patterns`` is an optional pattern store enabling ``query
    --patterns`` (``detected_patterns``); ``slo`` is an optional
    :class:`~repro.slo.manager.SloManager` enabling the ``slo``
    status-table subcommand."""
    args = _build_parser().parse_args(argv)
    if args.command == "slo":
        return _run_slo(slo, args)
    engine = LogQLEngine(store, patterns=patterns)
    if args.command == "labels":
        return "\n".join(store.index.label_names())
    if args.command == "label-values":
        return "\n".join(store.index.label_values(args.label))
    if args.command == "series":
        expr = parse(args.selector)
        if not isinstance(expr, LogPipeline) or expr.stages:
            raise QueryError("series takes a bare stream selector")
        sids = store.index.select(expr.matchers)
        return "\n".join(str(store.index.labels_of(sid)) for sid in sids)
    return _run_query(store, engine, args)


def _run_query(store: LokiStore, engine: LogQLEngine, args) -> str:
    if args.to_ns <= args.from_ns:
        raise ValidationError("--to must be after --from")
    if args.patterns:
        return _run_patterns(engine, args)
    expr = parse(args.logql)
    if isinstance(expr, LogPipeline):
        results = engine.query_logs(expr, args.from_ns, args.to_ns)
        rows = []
        for labels, entries in results:
            for entry in entries:
                rows.append((entry.timestamp_ns, labels, entry.line))
        rows.sort(key=lambda r: r[0])
        rows = rows[-args.limit:]  # newest lines win, as in logcli
        out = []
        for ts, labels, line in rows:
            if args.output == "jsonl":
                out.append(json.dumps(
                    {"ts": ts, "labels": labels.to_dict(), "line": line}
                ))
            elif args.output == "raw":
                out.append(line)
            else:
                out.append(f"{ns_to_iso8601(ts)} {labels} {line}")
        return "\n".join(out)
    if args.step is not None:
        series = engine.query_range(expr, args.from_ns, args.to_ns, args.step)
        out = []
        for s in series:
            points = " ".join(f"{ts}:{value:g}" for ts, value in s.points)
            out.append(f"{s.labels} {points}")
        return "\n".join(out)
    samples = engine.query_instant(expr, args.to_ns)
    return "\n".join(f"{s.labels} => {s.value:g}" for s in samples)


def _run_patterns(engine: LogQLEngine, args) -> str:
    """Render ``detected_patterns`` as a table (or JSONL), busiest first."""
    rows = engine.detected_patterns(args.logql, args.from_ns, args.to_ns)
    rows = rows[: args.limit]
    if args.output == "jsonl":
        return "\n".join(
            json.dumps(
                {
                    "pattern_id": r.pattern_id,
                    "template": r.template,
                    "count": r.count,
                    "streams": r.streams,
                    "first_ts": r.first_ts_ns,
                    "last_ts": r.last_ts_ns,
                }
            )
            for r in rows
        )
    header = ("COUNT", "STREAMS", "PATTERN_ID", "TEMPLATE")
    table = [header] + [
        (str(r.count), str(r.streams), r.pattern_id, r.template) for r in rows
    ]
    widths = [max(len(row[i]) for row in table) for i in range(3)]
    out = []
    for count, streams, pid, template in table:
        out.append(
            f"{count:>{widths[0]}}  {streams:>{widths[1]}}  "
            f"{pid:<{widths[2]}}  {template}"
        )
    return "\n".join(out)


def _run_slo(manager, args) -> str:
    """Render the SLO status table (or JSONL), like ``--patterns``."""
    if manager is None:
        raise ValidationError(
            "the slo subcommand needs an SLO manager (enable the SLO plane)"
        )
    rows = manager.status()
    if args.output == "jsonl":
        return "\n".join(
            json.dumps(
                {
                    "slo": r["slo"],
                    "objective": r["objective"],
                    "window": r["window"],
                    "budget_remaining": r["budget_remaining"],
                    "fast_burn": r["fast_burn"],
                    "slow_burn": r["slow_burn"],
                    "state": r["state"],
                }
            )
            for r in rows
        )
    header = ("SLO", "OBJECTIVE", "BUDGET_LEFT", "FAST_BURN", "SLOW_BURN",
              "STATE")
    table = [header] + [
        (
            str(r["slo"]),
            f"{float(r['objective']) * 100:g}%",
            f"{float(r['budget_remaining']) * 100:.1f}%",
            f"{float(r['fast_burn']):.2f}x",
            f"{float(r['slow_burn']):.2f}x",
            str(r["state"]),
        )
        for r in rows
    ]
    widths = [max(len(row[i]) for row in table) for i in range(5)]
    out = []
    for name, objective, budget, fast, slow, state in table:
        out.append(
            f"{name:<{widths[0]}}  {objective:>{widths[1]}}  "
            f"{budget:>{widths[2]}}  {fast:>{widths[3]}}  "
            f"{slow:>{widths[4]}}  {state}"
        )
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin shell
    """OS entry point querying an empty store (demonstration only)."""
    print(run_logcli(LokiStore(), argv or []))
    return 0
