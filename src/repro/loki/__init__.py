"""Grafana-Loki-like log aggregation store.

This is a faithful, from-scratch reimplementation of the Loki mechanisms
the paper's design leans on (§III.A, §IV.A):

* every log line has a **timestamp** (ns epoch), a **label set** and
  **content**; a unique label combination identifies a **stream**;
* only timestamps and labels are indexed (:mod:`repro.loki.index`);
  content is compressed into **chunks** (:mod:`repro.loki.chunks`) —
  "a small index and compressed chunks significantly reduce the costs
  for storage and the log query times";
* each stream fills its own chunk, so label overuse creates "a huge
  amount of small chunks" — measurable here (bench C4);
* **LogQL** (:mod:`repro.loki.logql`) filters streams by label, greps
  content, parses lines (``json``, ``pattern``, ``logfmt``) and converts
  logs into Prometheus-style metrics (``count_over_time`` + ``sum by``);
* the **Ruler** (:mod:`repro.loki.ruler`) continually evaluates alerting
  rules and pushes events to Alertmanager.
"""

from repro.loki.model import LogEntry, PushRequest, PushStream
from repro.loki.chunks import Chunk, ChunkPolicy
from repro.loki.store import LokiStore, LokiCluster, StoreStats, aggregate_stats
from repro.loki.ruler import Ruler, AlertingRule

__all__ = [
    "LogEntry",
    "PushRequest",
    "PushStream",
    "Chunk",
    "ChunkPolicy",
    "LokiStore",
    "LokiCluster",
    "StoreStats",
    "aggregate_stats",
    "Ruler",
    "AlertingRule",
]
