"""Loki data model: entries, push payloads.

The push format mirrors the paper's Figure 3 / the Loki HTTP push API:

.. code-block:: json

    {"streams": [{
        "stream": {"Context": "x1102c4s0b0", "cluster": "perlmutter",
                   "data_type": "redfish_event"},
        "values": [["1646272077000000000", "{\"Severity\":\"Warning\",...}"]]
    }]}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet


@dataclass(frozen=True, order=True)
class LogEntry:
    """One log line: nanosecond timestamp + content string."""

    timestamp_ns: int
    line: str

    def size_bytes(self) -> int:
        return len(self.line.encode())


@dataclass(frozen=True)
class PushStream:
    """One stream's worth of entries in a push request."""

    labels: LabelSet
    entries: tuple[LogEntry, ...]

    def __post_init__(self) -> None:
        if len(self.labels) == 0:
            raise ValidationError("a log stream needs at least one label")
        if not self.entries:
            raise ValidationError("push stream has no entries")


@dataclass(frozen=True)
class PushRequest:
    """A batch of streams, as accepted by the push API."""

    streams: tuple[PushStream, ...]

    @classmethod
    def single(
        cls,
        labels: Mapping[str, str] | LabelSet,
        entries: Iterable[tuple[int, str]],
    ) -> "PushRequest":
        """Build a one-stream request from ``(timestamp_ns, line)`` pairs."""
        labelset = labels if isinstance(labels, LabelSet) else LabelSet(labels)
        return cls(
            streams=(
                PushStream(
                    labels=labelset,
                    entries=tuple(LogEntry(ts, line) for ts, line in entries),
                ),
            )
        )

    @classmethod
    def from_json_obj(cls, obj: Any) -> "PushRequest":
        """Parse the Figure-3 wire format, validating shape strictly."""
        if not isinstance(obj, dict) or "streams" not in obj:
            raise ValidationError("push payload must be an object with 'streams'")
        streams = []
        for raw in obj["streams"]:
            if not isinstance(raw, dict):
                raise ValidationError("each stream must be an object")
            try:
                stream_labels = raw["stream"]
                values = raw["values"]
            except KeyError as exc:
                raise ValidationError(f"stream missing key {exc}") from None
            entries = []
            for pair in values:
                if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                    raise ValidationError("each value must be [ts, line]")
                ts_raw, line = pair
                try:
                    ts = int(ts_raw)
                except (TypeError, ValueError):
                    raise ValidationError(
                        f"timestamp must be integer nanoseconds, got {ts_raw!r}"
                    ) from None
                if not isinstance(line, str):
                    raise ValidationError("log line must be a string")
                entries.append(LogEntry(ts, line))
            streams.append(
                PushStream(labels=LabelSet(stream_labels), entries=tuple(entries))
            )
        return cls(streams=tuple(streams))

    def to_json_obj(self) -> dict[str, Any]:
        """Serialise back to the Figure-3 wire format."""
        return {
            "streams": [
                {
                    "stream": s.labels.to_dict(),
                    "values": [[str(e.timestamp_ns), e.line] for e in s.entries],
                }
                for s in self.streams
            ]
        }

    def total_entries(self) -> int:
        return sum(len(s.entries) for s in self.streams)
