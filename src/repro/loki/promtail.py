"""Promtail: Loki's log collector.

Paper §III.A: "Loki provides a log collector, PromTail, that aids to
label, transform and filter logs."  This module implements the scrape-
pipeline subset that sentence covers: static labels, regex-based
relabeling, line filtering, template-based line rewriting, and batched
pushes to a Loki store.

A :class:`Promtail` instance owns scrape configs; callers feed raw
``(timestamp_ns, line)`` records per source (a tailed file, journald,
the container runtime) and Promtail applies the pipeline and ships the
results.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet, validate_label_name
from repro.loki.model import LogEntry, PushRequest, PushStream
from repro.loki.store import LokiStore


@dataclass(frozen=True)
class RegexStage:
    """Extract labels from the line via named regex groups."""

    pattern: str

    def __post_init__(self) -> None:
        try:
            compiled = re.compile(self.pattern)
        except re.error as exc:
            raise ValidationError(f"bad promtail regex: {exc}") from exc
        if not compiled.groupindex:
            raise ValidationError("regex stage needs named groups")
        object.__setattr__(self, "_compiled", compiled)

    def apply(self, labels: dict[str, str], line: str) -> str | None:
        m = self._compiled.search(line)  # type: ignore[attr-defined]
        if m:
            for name, value in m.groupdict().items():
                if value is not None:
                    labels[name] = value
        return line


@dataclass(frozen=True)
class MatchStage:
    """Keep only lines containing (or matching) the needle."""

    needle: str
    regex: bool = False
    invert: bool = False

    def __post_init__(self) -> None:
        if self.regex:
            try:
                object.__setattr__(self, "_compiled", re.compile(self.needle))
            except re.error as exc:
                raise ValidationError(f"bad match regex: {exc}") from exc

    def apply(self, labels: dict[str, str], line: str) -> str | None:
        if self.regex:
            hit = self._compiled.search(line) is not None  # type: ignore[attr-defined]
        else:
            hit = self.needle in line
        return None if hit == self.invert else line


@dataclass(frozen=True)
class TemplateStage:
    """Rewrite the line from a ``{label}``-style template."""

    template: str

    def apply(self, labels: dict[str, str], line: str) -> str | None:
        try:
            return self.template.format(line=line, **labels)
        except (KeyError, IndexError):
            return line  # unresolvable templates leave the line untouched


@dataclass
class ScrapeConfig:
    """One source: static labels + ordered pipeline stages."""

    job: str
    static_labels: dict[str, str] = field(default_factory=dict)
    stages: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.job:
            raise ValidationError("scrape config needs a job name")
        for name in self.static_labels:
            validate_label_name(name)


class Promtail:
    """Applies scrape pipelines and pushes batches to Loki."""

    def __init__(self, store: LokiStore, batch_size: int = 1024) -> None:
        if batch_size < 1:
            raise ValidationError("batch size must be positive")
        self._store = store
        self._batch_size = batch_size
        self._configs: dict[str, ScrapeConfig] = {}
        self.lines_read = 0
        self.lines_shipped = 0
        self.lines_dropped = 0

    def add_scrape_config(self, config: ScrapeConfig) -> None:
        if config.job in self._configs:
            raise ValidationError(f"duplicate scrape job: {config.job}")
        self._configs[config.job] = config

    def collect(self, job: str, records: Iterable[tuple[int, str]]) -> int:
        """Run ``records`` through ``job``'s pipeline; returns lines shipped."""
        try:
            config = self._configs[job]
        except KeyError:
            raise ValidationError(f"no scrape config for job {job!r}") from None
        pending: dict[LabelSet, list[LogEntry]] = {}
        shipped = 0
        for ts, line in records:
            self.lines_read += 1
            labels = {"job": config.job, **config.static_labels}
            out_line: str | None = line
            for stage in config.stages:
                out_line = stage.apply(labels, out_line)
                if out_line is None:
                    break
            if out_line is None:
                self.lines_dropped += 1
                continue
            pending.setdefault(LabelSet(labels), []).append(LogEntry(ts, out_line))
            shipped += 1
            if sum(len(v) for v in pending.values()) >= self._batch_size:
                self._flush(pending)
                pending = {}
        if pending:
            self._flush(pending)
        self.lines_shipped += shipped
        return shipped

    def _flush(self, pending: dict[LabelSet, list[LogEntry]]) -> None:
        streams = tuple(
            PushStream(labels, tuple(entries)) for labels, entries in pending.items()
        )
        self._store.push(PushRequest(streams=streams))
