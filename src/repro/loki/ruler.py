"""The Loki Ruler: continuous evaluation of LogQL alerting rules.

Paper §III.A / §IV.A: "Loki includes a component called the Ruler which
is responsible for continually evaluating a set of configurable queries
and performing an action based on the result ... Loki Ruler alerting
rules share the same format as Prometheus alerting rules. If the return
value is greater than zero and it lasts more than one minute, an alert
will be generated."

The pending→firing→resolved state machine lives in
:class:`repro.alerting.rules.RuleEvaluator`; this subclass binds it to a
LogQL engine and validates that rule expressions are metric queries.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import QueryError
from repro.common.simclock import SimClock
from repro.common.vector import Sample
from repro.alerting.events import AlertEvent
from repro.alerting.rules import RuleEvaluator, RuleSpec
from repro.loki.logql.ast import LogPipeline
from repro.loki.logql.engine import LogQLEngine
from repro.loki.logql.parser import parse

#: Loki rule files use the Prometheus rule format; alias for clarity.
AlertingRule = RuleSpec


class Ruler(RuleEvaluator):
    """Evaluates LogQL alerting rules against a Loki store."""

    def __init__(
        self,
        engine: LogQLEngine,
        clock: SimClock,
        notifier: Callable[[AlertEvent], None],
        generator: str = "loki-ruler",
    ) -> None:
        super().__init__(clock, notifier, generator)
        self._engine = engine

    def _validate_expr(self, expr: str) -> None:
        ast = parse(expr)
        if isinstance(ast, LogPipeline):
            raise QueryError(
                "alerting rules need a metric query, not a log query"
            )

    def _query(self, expr: str, time_ns: int) -> list[Sample]:
        return self._engine.query_instant(expr, time_ns)
