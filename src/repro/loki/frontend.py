"""The Loki query frontend: range-query splitting and results caching.

Production Loki puts a *query-frontend* in front of the queriers: long
range queries are split into aligned sub-windows executed independently,
and completed sub-windows are cached so the next dashboard refresh only
computes the tip.  That is what makes a Grafana dashboard polling a 6-hour
window every 30 seconds affordable.

This module implements both behaviours for the in-process engines (it
works over any object exposing ``query_range``).  Cache entries are keyed
by (query, aligned window, step); only windows that end in the past are
cached, because the tip is still accumulating data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet
from repro.common.simclock import NANOS_PER_DAY, SimClock, hours
from repro.common.vector import Series


class RangeQueryable(Protocol):
    def query_range(
        self, query: str, start_ns: int, end_ns: int, step_ns: int
    ) -> list[Series]: ...


class PatternQueryable(Protocol):
    def detected_patterns(
        self,
        selector: str,
        start_ns: int,
        end_ns: int,
        tenant: str | None = None,
    ) -> list: ...


def aligned_windows(start_ns: int, end_ns: int, split_ns: int):
    """Yield [start, end] sub-windows aligned to the split interval.

    Each sub-window covers evaluation instants in [sub_start, sub_end]
    inclusive; consecutive windows abut without repeating an instant.
    Shared by the frontend cache and the queryx planner so both cut a
    range at identical boundaries.
    """
    if split_ns <= 0:
        raise ValidationError("split interval must be positive")
    cursor = start_ns
    while cursor <= end_ns:
        boundary = (cursor // split_ns + 1) * split_ns
        sub_end = min(end_ns, boundary - 1)
        yield cursor, sub_end
        cursor = sub_end + 1


@dataclass(frozen=True)
class _CacheKey:
    query: str
    start_ns: int
    end_ns: int
    step_ns: int
    #: Cache entries are tenant-scoped: identical LogQL submitted by two
    #: tenants must never share results (their visible streams differ).
    tenant: str | None = None
    #: The split interval the window was cut with.  A sub-window is only
    #: reusable under the *same* split size: after a resize the aligned
    #: boundaries move, and a stale differently-split window must miss
    #: rather than alias a new one that happens to share its endpoints.
    split_ns: int = 0


class QueryFrontend:
    """Splits + caches range queries in front of a query engine."""

    def __init__(
        self,
        engine: RangeQueryable,
        clock: SimClock,
        split_ns: int = hours(1),
        max_entries: int = 1024,
        pattern_source: PatternQueryable | None = None,
        pattern_split_ns: int = NANOS_PER_DAY,
    ) -> None:
        if split_ns <= 0:
            raise ValidationError("split interval must be positive")
        if max_entries < 1:
            raise ValidationError("cache needs at least one entry")
        if pattern_split_ns <= 0:
            raise ValidationError("pattern split interval must be positive")
        self._engine = engine
        self._clock = clock
        self._split_ns = split_ns
        self._max_entries = max_entries
        #: Engine exposing ``detected_patterns`` (the LogQL engine when
        #: pattern mining is on); pattern windows split on the *store's*
        #: period so each pattern record lands in exactly one sub-window
        #: and the merged counts equal the direct call.
        self._pattern_source = pattern_source
        self._pattern_split_ns = pattern_split_ns
        # True LRU: ordered oldest-access-first; hits refresh recency.
        # Values are lists of Series (range queries) or DetectedPattern
        # rows (pattern queries) — the key's query string disambiguates.
        self._cache: OrderedDict[_CacheKey, list] = OrderedDict()
        self.splits_executed = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query_range(
        self,
        query: str,
        start_ns: int,
        end_ns: int,
        step_ns: int,
        tenant: str | None = None,
    ) -> list[Series]:
        """Split-aligned, cached evaluation; results equal the direct call.

        Sub-windows are aligned to multiples of the split interval so the
        same dashboard refresh always hits the same cache keys.  Steps
        must divide the split interval for alignment to preserve the
        exact evaluation instants.  ``tenant`` scopes the cache: two
        tenants issuing the same LogQL never share cached sub-results.
        """
        if step_ns <= 0:
            raise ValidationError("step must be positive")
        if end_ns < start_ns:
            raise ValidationError("end before start")
        if self._split_ns % step_ns != 0:
            # Cannot split without changing evaluation instants: fall
            # through to the engine unsplit (still correct, just uncached).
            self.cache_misses += 1
            return self._engine.query_range(query, start_ns, end_ns, step_ns)

        phase = start_ns % step_ns
        merged: dict[LabelSet, list[tuple[int, float]]] = {}
        for sub_start, sub_end in self._aligned_windows(start_ns, end_ns):
            for series in self._sub_query(
                query, sub_start, sub_end, step_ns, phase, tenant
            ):
                merged.setdefault(series.labels, []).extend(series.points)
        out = []
        for labels, points in merged.items():
            points.sort(key=lambda p: p[0])
            out.append(Series(labels, tuple(points)))
        out.sort(key=lambda s: s.labels.items_tuple())
        return out

    def detected_patterns(
        self,
        selector: str,
        start_ns: int,
        end_ns: int,
        tenant: str | None = None,
    ) -> list:
        """Split + cached ``detected_patterns``, merged across windows.

        Windows are aligned to the pattern store's index period, so each
        period-partitioned pattern record falls in exactly one window
        and summing counts across windows reproduces the direct answer.
        Completed windows are cached under a ``patterns:``-prefixed key
        (step 0 — patterns have no evaluation grid).
        """
        if self._pattern_source is None:
            raise ValidationError("no pattern source wired into the frontend")
        if end_ns <= start_ns:
            raise ValidationError("detected_patterns requires start < end")
        merged: dict[str, dict] = {}
        for sub_start, sub_end in aligned_windows(
            start_ns, end_ns - 1, self._pattern_split_ns
        ):
            rows = self._pattern_sub_query(
                selector, sub_start, sub_end + 1, tenant
            )
            for row in rows:
                have = merged.get(row.pattern_id)
                if have is None:
                    merged[row.pattern_id] = {
                        "template": row.template,
                        "count": row.count,
                        "first": row.first_ts_ns,
                        "last": row.last_ts_ns,
                        "exemplar": row.exemplar,
                        "streams": row.streams,
                    }
                    continue
                have["count"] += row.count
                if row.first_ts_ns < have["first"]:
                    have["first"] = row.first_ts_ns
                    have["exemplar"] = row.exemplar
                have["last"] = max(have["last"], row.last_ts_ns)
                have["streams"] = max(have["streams"], row.streams)
        from repro.patterns.store import DetectedPattern

        out = [
            DetectedPattern(
                pattern_id=pid,
                template=row["template"],
                count=row["count"],
                first_ts_ns=row["first"],
                last_ts_ns=row["last"],
                exemplar=row["exemplar"],
                streams=row["streams"],
            )
            for pid, row in merged.items()
        ]
        out.sort(key=lambda r: (-r.count, r.pattern_id))
        return out

    def invalidate(self) -> None:
        """Drop every cached sub-result (config or data rewrite)."""
        self._cache.clear()

    @property
    def split_ns(self) -> int:
        return self._split_ns

    def set_split_ns(self, split_ns: int) -> None:
        """Change the split interval.

        Old entries stay resident but can no longer be hit (the key
        carries the split they were cut with), so they age out of the
        LRU naturally instead of poisoning the new alignment.
        """
        if split_ns <= 0:
            raise ValidationError("split interval must be positive")
        self._split_ns = split_ns

    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _aligned_windows(self, start_ns: int, end_ns: int):
        return aligned_windows(start_ns, end_ns, self._split_ns)

    def _sub_query(
        self,
        query: str,
        start_ns: int,
        end_ns: int,
        step_ns: int,
        phase: int,
        tenant: str | None,
    ) -> list[Series]:
        # The phase keys the evaluation grid (instants are phase + k*step),
        # so differently-phased dashboards never share cache entries.
        key = _CacheKey(
            query, start_ns - phase, end_ns - phase, step_ns, tenant, self._split_ns
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(key)  # LRU: a hit refreshes recency
            return cached
        self.cache_misses += 1
        # First on-grid instant inside this sub-window.
        first = start_ns + (phase - start_ns) % step_ns
        if first > end_ns:
            result: list[Series] = []
        else:
            result = self._engine.query_range(query, first, end_ns, step_ns)
        self.splits_executed += 1
        if end_ns < self._clock.now_ns:  # complete, immutable window
            if len(self._cache) >= self._max_entries:
                self._cache.popitem(last=False)  # evict least recently used
            self._cache[key] = result
        return result

    def _pattern_sub_query(
        self,
        selector: str,
        start_ns: int,
        end_ns: int,
        tenant: str | None,
    ) -> list:
        key = _CacheKey(
            "patterns:" + selector,
            start_ns,
            end_ns,
            0,
            tenant,
            self._pattern_split_ns,
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.cache_misses += 1
        assert self._pattern_source is not None
        result = self._pattern_source.detected_patterns(
            selector, start_ns, end_ns, tenant=tenant
        )
        self.splits_executed += 1
        if end_ns <= self._clock.now_ns:  # window entirely in the past
            if len(self._cache) >= self._max_entries:
                self._cache.popitem(last=False)
            self._cache[key] = result
        return result
