"""Strict JSON helpers for telemetry payloads.

The Telemetry API publishes Redfish events as nested JSON (paper Fig. 2);
the transformation in §IV.A flattens that into Loki's push format (Fig. 3).
These helpers centralise the fiddly parts: compact canonical encoding,
nested-path extraction for the LogQL ``json`` parser, and ISO-8601 ↔
nanosecond-epoch conversion.
"""

from __future__ import annotations

import datetime as _dt
import json
from typing import Any, Iterator

from repro.common.errors import ValidationError
from repro.common.simclock import NANOS_PER_SECOND


def dumps_compact(obj: Any) -> str:
    """Canonical compact JSON (no spaces, sorted keys) for stable payloads."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True)


def loads(text: str) -> Any:
    """Parse JSON, converting failures into :class:`ValidationError`."""
    try:
        return json.loads(text)
    except (json.JSONDecodeError, TypeError) as exc:
        raise ValidationError(f"invalid JSON: {exc}") from exc


def iso8601_to_ns(text: str) -> int:
    """Convert an ISO-8601 timestamp (e.g. ``2022-03-03T01:47:57+00:00``)
    to integer nanoseconds since the Unix epoch.

    Redfish event timestamps arrive in this format; Loki wants nanoseconds.
    """
    try:
        dt = _dt.datetime.fromisoformat(text)
    except ValueError as exc:
        raise ValidationError(f"invalid ISO-8601 timestamp: {text!r}") from exc
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=_dt.timezone.utc)
    return int(dt.timestamp() * NANOS_PER_SECOND)


def ns_to_iso8601(ts_ns: int) -> str:
    """Inverse of :func:`iso8601_to_ns` (UTC, second precision)."""
    dt = _dt.datetime.fromtimestamp(ts_ns / NANOS_PER_SECOND, tz=_dt.timezone.utc)
    return dt.isoformat(timespec="seconds")


def flatten_json(obj: Any, prefix: str = "") -> Iterator[tuple[str, str]]:
    """Yield ``(flattened_key, string_value)`` pairs from nested JSON.

    This implements the extraction semantics of LogQL's ``| json`` stage:
    nested keys are joined with ``_``, array indices with ``_<i>_``-style
    suffixes, and scalar values are stringified.  Keys are sanitised to be
    legal label names (non-alphanumerics become ``_``).
    """
    if isinstance(obj, dict):
        for key, value in obj.items():
            clean = _sanitize_key(key)
            new_prefix = f"{prefix}_{clean}" if prefix else clean
            yield from flatten_json(value, new_prefix)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            new_prefix = f"{prefix}_{i}" if prefix else str(i)
            yield from flatten_json(value, new_prefix)
    else:
        if isinstance(obj, bool):
            yield prefix, "true" if obj else "false"
        elif obj is None:
            yield prefix, ""
        elif isinstance(obj, float) and obj.is_integer():
            yield prefix, str(int(obj))
        else:
            yield prefix, str(obj)


def _sanitize_key(key: str) -> str:
    out = []
    for ch in key:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    clean = "".join(out)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean or "_"
