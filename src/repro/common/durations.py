"""Prometheus-style duration strings (``5m``, ``1h30m``, ``90s``...).

LogQL range selectors (``[60m]``), rule ``for:`` clauses and Alertmanager
``group_wait``/``repeat_interval`` settings all use this format.
"""

from __future__ import annotations

import re

from repro.common.errors import ValidationError
from repro.common.simclock import (
    NANOS_PER_DAY,
    NANOS_PER_HOUR,
    NANOS_PER_MINUTE,
    NANOS_PER_SECOND,
)

_UNIT_NS = {
    "ms": NANOS_PER_SECOND // 1000,
    "s": NANOS_PER_SECOND,
    "m": NANOS_PER_MINUTE,
    "h": NANOS_PER_HOUR,
    "d": NANOS_PER_DAY,
    "w": 7 * NANOS_PER_DAY,
    "y": 365 * NANOS_PER_DAY,
}

_TOKEN_RE = re.compile(r"(\d+)(ms|s|m|h|d|w|y)")


def parse_duration_ns(text: str) -> int:
    """Parse ``"1h30m"`` → nanoseconds. Raises on empty/garbage input."""
    if not text:
        raise ValidationError("empty duration")
    pos = 0
    total = 0
    for m in _TOKEN_RE.finditer(text):
        if m.start() != pos:
            raise ValidationError(f"invalid duration: {text!r}")
        total += int(m.group(1)) * _UNIT_NS[m.group(2)]
        pos = m.end()
    if pos != len(text):
        raise ValidationError(f"invalid duration: {text!r}")
    return total


def format_duration_ns(ns: int) -> str:
    """Format nanoseconds as the shortest Prometheus duration string."""
    if ns < 0:
        raise ValidationError("negative duration")
    if ns == 0:
        return "0s"
    parts = []
    for unit in ("y", "w", "d", "h", "m", "s", "ms"):
        size = _UNIT_NS[unit]
        if ns >= size:
            count, ns = divmod(ns, size)
            parts.append(f"{count}{unit}")
    return "".join(parts) if parts else "0s"
