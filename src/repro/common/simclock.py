"""Deterministic simulated clock.

The paper's pipeline is full of wall-clock behaviour: Ruler evaluates rules
every interval, alerts must be "pending" for one minute before firing,
Alertmanager batches groups with ``group_wait``, OMNI retains two years of
data.  Reproducing any of that against a real clock would be untestable, so
every component takes a :class:`SimClock` and never calls ``time.time()``.

Timestamps are **nanoseconds since the Unix epoch** throughout the stack —
the same convention Loki uses on its push API.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

NANOS_PER_SECOND = 1_000_000_000
NANOS_PER_MINUTE = 60 * NANOS_PER_SECOND
NANOS_PER_HOUR = 60 * NANOS_PER_MINUTE
NANOS_PER_DAY = 24 * NANOS_PER_HOUR

#: 2022-03-03T01:47:57+00:00 — the leak-event timestamp from the paper's
#: Figure 2, used as the default simulation epoch so regenerated artifacts
#: carry the paper's own timestamps.
PAPER_EPOCH_NS = 1_646_272_077 * NANOS_PER_SECOND


def seconds(n: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(n * NANOS_PER_SECOND)


def minutes(n: float) -> int:
    """Convert minutes to integer nanoseconds."""
    return int(n * NANOS_PER_MINUTE)


def hours(n: float) -> int:
    """Convert hours to integer nanoseconds."""
    return int(n * NANOS_PER_HOUR)


def days(n: float) -> int:
    """Convert days to integer nanoseconds."""
    return int(n * NANOS_PER_DAY)


@dataclass(order=True)
class _ScheduledEvent:
    when_ns: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def when_ns(self) -> int:
        return self._event.when_ns

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self._event.cancelled = True


class SimClock:
    """Discrete-event simulated clock.

    The clock holds the current simulated time in nanoseconds and a heap of
    scheduled callbacks.  Advancing the clock runs every callback whose due
    time falls inside the advanced window, in timestamp order (FIFO among
    equal timestamps).  Components use :meth:`every` to model periodic work
    such as rule-evaluation loops and scrape intervals.
    """

    def __init__(self, start_ns: int = PAPER_EPOCH_NS) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now_ns = start_ns
        self._heap: list[_ScheduledEvent] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Reading time
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds since the epoch."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current simulated time in float seconds since the epoch."""
        return self._now_ns / NANOS_PER_SECOND

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, when_ns: int, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run when the clock reaches ``when_ns``.

        Scheduling in the past raises ``ValueError`` — a simulated pipeline
        that back-schedules is always a bug.
        """
        if when_ns < self._now_ns:
            raise ValueError(
                f"cannot schedule at {when_ns} before current time {self._now_ns}"
            )
        event = _ScheduledEvent(when_ns, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return Timer(event)

    def call_later(self, delay_ns: int, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` ``delay_ns`` nanoseconds from now."""
        if delay_ns < 0:
            raise ValueError("delay must be non-negative")
        return self.call_at(self._now_ns + delay_ns, callback)

    def every(self, interval_ns: int, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` every ``interval_ns``, starting one interval from now.

        Returns the :class:`Timer` for the *next* occurrence; cancelling it
        stops the whole periodic chain.
        """
        if interval_ns <= 0:
            raise ValueError("interval must be positive")

        timer_box: list[Timer] = []

        def tick() -> None:
            callback()
            if not timer_box[0].cancelled:
                inner = self.call_later(interval_ns, tick)
                # Re-point the shared handle at the fresh event so a later
                # cancel() stops the chain.
                timer_box[0]._event = inner._event

        first = self.call_later(interval_ns, tick)
        timer_box.append(first)
        return first

    # ------------------------------------------------------------------
    # Advancing
    # ------------------------------------------------------------------
    def advance(self, delta_ns: int) -> None:
        """Advance simulated time by ``delta_ns``, running due callbacks."""
        if delta_ns < 0:
            raise ValueError("cannot advance backwards")
        self.advance_to(self._now_ns + delta_ns)

    def advance_to(self, target_ns: int) -> None:
        """Advance simulated time to ``target_ns``, running due callbacks.

        Callbacks observe ``now_ns`` equal to their scheduled time, and may
        schedule further work inside the window (it runs in the same pass).
        """
        if target_ns < self._now_ns:
            raise ValueError("cannot advance backwards")
        while self._heap and self._heap[0].when_ns <= target_ns:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_ns = event.when_ns
            event.callback()
        self._now_ns = target_ns

    def pending(self) -> int:
        """Number of scheduled, non-cancelled callbacks."""
        return sum(1 for e in self._heap if not e.cancelled)
