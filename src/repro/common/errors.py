"""Exception hierarchy for the reproduction stack.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch stack-wide failures with a single ``except`` clause while still
discriminating on the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError):
    """Input failed structural or semantic validation."""


class QueryError(ReproError):
    """A LogQL/PromQL query could not be parsed or evaluated."""


class AuthError(ReproError):
    """Telemetry API authentication or authorization failure."""


class NotFoundError(ReproError):
    """A named entity (topic, stream, CI, dashboard, ...) does not exist."""


class RetentionError(ReproError):
    """Requested data falls outside the retention window and is not archived."""


class CapacityError(ReproError):
    """A bounded component (chunk, partition, queue) refused more data."""


class StateError(ReproError):
    """Operation is invalid for the component's current lifecycle state."""


class DeliveryError(ReproError):
    """A receiver could not deliver a notification (outage, timeout...).

    Raising this from :meth:`Receiver.notify` is the contract that lets
    the resilience layer distinguish a retryable delivery failure from a
    programming error.
    """
