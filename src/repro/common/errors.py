"""Exception hierarchy for the reproduction stack.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch stack-wide failures with a single ``except`` clause while still
discriminating on the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError):
    """Input failed structural or semantic validation."""


class QueryError(ReproError):
    """A LogQL/PromQL query could not be parsed or evaluated."""


class AuthError(ReproError):
    """Telemetry API authentication or authorization failure."""


class NotFoundError(ReproError):
    """A named entity (topic, stream, CI, dashboard, ...) does not exist."""


class RetentionError(ReproError):
    """Requested data falls outside the retention window and is not archived."""


class CapacityError(ReproError):
    """A bounded component (chunk, partition, queue) refused more data."""


class StateError(ReproError):
    """Operation is invalid for the component's current lifecycle state."""


class RateLimitedError(CapacityError):
    """A tenant exceeded its ingestion rate limit (HTTP 429 analogue).

    Raised by the admission layer when a push would overdraw the
    tenant's token bucket; the whole push is rejected and counted as a
    discard, exactly as Loki's distributor answers 429.
    """

    def __init__(self, tenant: str, message: str) -> None:
        super().__init__(message)
        self.tenant = tenant


class StreamLimitError(CapacityError):
    """A tenant tried to create more active streams than its limit allows.

    The 429-style rejection Loki returns for
    ``max_global_streams_per_user``; carries the tenant so callers can
    attribute the discard without parsing the message.
    """

    def __init__(self, tenant: str, message: str) -> None:
        super().__init__(message)
        self.tenant = tenant


class QueryLimitError(CapacityError):
    """A tenant's query exceeded its limits (range too wide, too many
    series, queue full) and was refused by the scheduler."""

    def __init__(self, tenant: str, message: str) -> None:
        super().__init__(message)
        self.tenant = tenant


class DeliveryError(ReproError):
    """A receiver could not deliver a notification (outage, timeout...).

    Raising this from :meth:`Receiver.notify` is the contract that lets
    the resilience layer distinguish a retryable delivery failure from a
    programming error.
    """
