"""HPE Shasta component naming ("xnames").

Shasta addresses every physical component with a hierarchical *xname*:

``x1203c1b0``  → cabinet 1203, chassis 1, BMC 0 (a chassis controller)
``x1102c4s0b0`` → cabinet 1102, chassis 4, slot 0, BMC 0 (a node controller)
``x1002c1r7b0`` → cabinet 1002, chassis 1, Rosetta switch 7, BMC 0

The paper's Figures 2, 3 and 7 use exactly these three forms, so the
topology model generates and parses them faithfully.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.errors import ValidationError

_XNAME_RE = re.compile(
    r"^x(?P<cabinet>\d+)"
    r"(?:c(?P<chassis>\d+)"
    r"(?:s(?P<slot>\d+)|r(?P<switch>\d+))?"
    r"(?:b(?P<bmc>\d+)"
    r"(?:n(?P<node>\d+))?)?)?$"
)


@dataclass(frozen=True)
class XName:
    """Parsed xname. ``None`` fields mean the level is absent.

    ``slot`` and ``switch`` are mutually exclusive: compute blades sit in
    slots (``s``) while Rosetta switch blades use ``r``.
    """

    cabinet: int
    chassis: int | None = None
    slot: int | None = None
    switch: int | None = None
    bmc: int | None = None
    node: int | None = None

    def __post_init__(self) -> None:
        if self.slot is not None and self.switch is not None:
            raise ValidationError("xname cannot have both a slot and a switch")
        if (self.slot is not None or self.switch is not None or self.bmc is not None) \
                and self.chassis is None:
            raise ValidationError("slot/switch/bmc require a chassis level")
        if self.node is not None and self.bmc is None:
            raise ValidationError("a node requires a BMC level")

    def _sort_key(self) -> tuple[int, ...]:
        """Total order across mixed depths: absent levels sort first."""
        def k(v: int | None) -> int:
            return -1 if v is None else v

        return (
            self.cabinet,
            k(self.chassis),
            0 if self.switch is None else 1,  # slots before switches
            k(self.slot if self.switch is None else self.switch),
            k(self.bmc),
            k(self.node),
        )

    def __lt__(self, other: "XName") -> bool:
        if not isinstance(other, XName):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "XName") -> bool:
        if not isinstance(other, XName):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "XName") -> bool:
        if not isinstance(other, XName):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "XName") -> bool:
        if not isinstance(other, XName):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    @classmethod
    def parse(cls, text: str) -> "XName":
        """Parse an xname string such as ``x1102c4s0b0``."""
        m = _XNAME_RE.match(text)
        if not m:
            raise ValidationError(f"invalid xname: {text!r}")
        g = {k: (int(v) if v is not None else None) for k, v in m.groupdict().items()}
        return cls(**g)

    def __str__(self) -> str:
        out = f"x{self.cabinet}"
        if self.chassis is not None:
            out += f"c{self.chassis}"
        if self.slot is not None:
            out += f"s{self.slot}"
        elif self.switch is not None:
            out += f"r{self.switch}"
        if self.bmc is not None:
            out += f"b{self.bmc}"
        if self.node is not None:
            out += f"n{self.node}"
        return out

    # -- hierarchy helpers -------------------------------------------------
    @property
    def is_cabinet(self) -> bool:
        return self.chassis is None

    @property
    def is_chassis(self) -> bool:
        return (
            self.chassis is not None
            and self.slot is None
            and self.switch is None
            and self.bmc is None
        )

    @property
    def is_switch(self) -> bool:
        return self.switch is not None and self.node is None

    @property
    def is_node(self) -> bool:
        return self.node is not None

    @property
    def is_controller(self) -> bool:
        """Whether this names a BMC (board management controller)."""
        return self.bmc is not None and self.node is None

    def parent(self) -> "XName | None":
        """The enclosing component, or ``None`` for a cabinet."""
        if self.node is not None:
            return XName(self.cabinet, self.chassis, self.slot, self.switch, self.bmc)
        if self.bmc is not None:
            return XName(self.cabinet, self.chassis, self.slot, self.switch)
        if self.slot is not None or self.switch is not None:
            return XName(self.cabinet, self.chassis)
        if self.chassis is not None:
            return XName(self.cabinet)
        return None

    def contains(self, other: "XName") -> bool:
        """Whether ``other`` is this component or nested inside it."""
        if other.cabinet != self.cabinet:
            return False
        for mine, theirs in (
            (self.chassis, other.chassis),
            (self.slot, other.slot),
            (self.switch, other.switch),
            (self.bmc, other.bmc),
            (self.node, other.node),
        ):
            if mine is not None and mine != theirs:
                return False
        return True

    def cabinet_xname(self) -> "XName":
        return XName(self.cabinet)

    def chassis_xname(self) -> "XName":
        if self.chassis is None:
            raise ValidationError(f"{self} has no chassis level")
        return XName(self.cabinet, self.chassis)
