"""Shared stable hashing: 64-bit FNV-1a and the SplitMix64 finalizer.

Both the ring (vnode tokens, stream keys) and the sharded Loki cluster
(label-hash shard placement) need a hash that is stable across runs —
the builtin ``hash`` is salted per process — and, where the hash feeds a
small modulus, *finalized*: FNV-1a alone has weak avalanche on short
suffixes, so structured inputs (sequential member names, label values
over a stride-aligned alphabet) land in micro-clusters instead of
spreading.  ``mix64`` restores full avalanche.

This module is the single home for both primitives; ``repro.ring.hashring``
re-exports them for backwards compatibility.  It lives under ``common``
because ``loki`` cannot import from ``ring`` (the ring packages import
``loki`` at definition time) and the object-store shipper needs the same
fingerprints as the ring.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a — stable across runs (unlike builtin ``hash``)."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h


def mix64(h: int) -> int:
    """SplitMix64 finalizer: full-avalanche scrambling of a 64-bit value.

    FNV-1a has weak avalanche on short suffixes: inputs differing only in
    the final byte produce hashes differing by ``delta * prime``, so
    structured corpora collapse onto few residues of a small modulus.
    Two independent call sites depend on this finalizer:

    * ring vnode tokens ``member#0 … member#63`` would land in a handful
      of micro-clusters instead of spreading over the circle — breaking
      the bounded-movement guarantee in practice (a joining member could
      capture half the key space);
    * ``LokiCluster`` shard placement ``fnv % shards`` maps every label
      set whose values differ only in characters a multiple of 8 apart
      (e.g. ``'0'`` vs ``'8'``, one ASCII bit) onto a *single* shard,
      because each per-byte delta times the odd FNV prime preserves the
      low three bits.

    Running the finalizer over the raw hash restores uniformity without
    changing the underlying key hash (pinned by regression tests).
    """
    h &= _MASK
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _MASK
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _MASK
    h ^= h >> 31
    return h
