"""Shared instant-vector / range-series result types.

Both query engines — LogQL (:mod:`repro.loki.logql`) and the PromQL subset
(:mod:`repro.tsdb.promql`) — produce the same result shapes, which is what
lets Grafana and the alert rulers treat "logs turned into metrics" exactly
like native metrics (the paper's central trick).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.labels import LabelSet


@dataclass(frozen=True)
class Sample:
    """One (labels, value) pair of an instant vector at an evaluation time."""

    labels: LabelSet
    value: float
    timestamp_ns: int

    def with_value(self, value: float) -> "Sample":
        return Sample(self.labels, value, self.timestamp_ns)


@dataclass(frozen=True)
class Series:
    """One labelled series of a range query: ``[(ts_ns, value), ...]``."""

    labels: LabelSet
    points: tuple[tuple[int, float], ...]

    def values(self) -> list[float]:
        return [v for _, v in self.points]

    def timestamps(self) -> list[int]:
        return [t for t, _ in self.points]
