"""Label sets and label matchers — the Prometheus/Loki data model core.

A *label set* is an immutable mapping of label name → value.  In Loki a
unique combination of labels identifies a **log stream**; in the TSDB a
metric name plus labels identifies a **time series**.  Both subsystems
share this implementation so the "logs become metrics" conversion the
paper leans on (LogQL ``count_over_time`` + ``sum by``) is a natural
operation rather than a format shim.

Label *matchers* implement the four Prometheus selector operators
(``=``, ``!=``, ``=~``, ``!~``) used by both query languages.
"""

from __future__ import annotations

import enum
import re
from typing import Iterable, Iterator, Mapping

from repro.common.errors import ValidationError

_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Reserved label carrying the metric name in the TSDB, as in Prometheus.
METRIC_NAME_LABEL = "__name__"


def validate_label_name(name: str) -> str:
    """Return ``name`` if it is a legal label name, else raise."""
    if not _LABEL_NAME_RE.match(name):
        raise ValidationError(f"invalid label name: {name!r}")
    return name


class LabelSet(Mapping[str, str]):
    """Immutable, hashable set of ``name=value`` labels.

    Instances are canonicalised (sorted by name) so that equal mappings
    always hash equally — the property stream identity depends on.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, labels: Mapping[str, str] | Iterable[tuple[str, str]] = ()):
        if isinstance(labels, Mapping):
            pairs = list(labels.items())
        else:
            pairs = list(labels)
        for name, value in pairs:
            validate_label_name(name)
            if not isinstance(value, str):
                raise ValidationError(
                    f"label {name!r} value must be str, got {type(value).__name__}"
                )
        items = tuple(sorted(pairs))
        names = [n for n, _ in items]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate label names in {names}")
        self._items: tuple[tuple[str, str], ...] = items
        self._hash = hash(items)

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, key: str) -> str:
        for name, value in self._items:
            if name == key:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LabelSet):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f'{n}="{v}"' for n, v in self._items)
        return "{" + inner + "}"

    # -- Operations ------------------------------------------------------
    def with_labels(self, **extra: str) -> "LabelSet":
        """Return a new set with ``extra`` labels added/overridden."""
        merged = dict(self._items)
        merged.update(extra)
        return LabelSet(merged)

    def without(self, *names: str) -> "LabelSet":
        """Return a new set dropping the given label names."""
        drop = set(names)
        return LabelSet({n: v for n, v in self._items if n not in drop})

    def project(self, names: Iterable[str]) -> "LabelSet":
        """Return a new set keeping only the given label names (``by`` clause)."""
        keep = set(names)
        return LabelSet({n: v for n, v in self._items if n in keep})

    def items_tuple(self) -> tuple[tuple[str, str], ...]:
        """The canonical sorted ``(name, value)`` tuple (cheap identity key)."""
        return self._items

    def to_dict(self) -> dict[str, str]:
        return dict(self._items)


EMPTY_LABELS = LabelSet()


class MatchOp(enum.Enum):
    """The four Prometheus/Loki label-matching operators."""

    EQ = "="
    NEQ = "!="
    RE = "=~"
    NRE = "!~"


class Matcher:
    """A single label matcher, e.g. ``cluster=~"perl.*"``."""

    __slots__ = ("name", "op", "value", "_regex")

    def __init__(self, name: str, op: MatchOp, value: str) -> None:
        validate_label_name(name)
        self.name = name
        self.op = op
        self.value = value
        if op in (MatchOp.RE, MatchOp.NRE):
            try:
                # Prometheus fully anchors selector regexes.
                self._regex = re.compile(r"(?:" + value + r")\Z")
            except re.error as exc:
                raise ValidationError(f"bad regex in matcher {name}: {exc}") from exc
        else:
            self._regex = None

    def matches(self, labels: Mapping[str, str]) -> bool:
        """Whether ``labels`` satisfies this matcher.

        As in Prometheus, a missing label is treated as the empty string, so
        ``foo!="bar"`` matches series without a ``foo`` label.
        """
        actual = labels.get(self.name, "")
        if self.op is MatchOp.EQ:
            return actual == self.value
        if self.op is MatchOp.NEQ:
            return actual != self.value
        assert self._regex is not None
        hit = self._regex.match(actual) is not None
        return hit if self.op is MatchOp.RE else not hit

    def __repr__(self) -> str:
        return f'{self.name}{self.op.value}"{self.value}"'

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matcher):
            return NotImplemented
        return (self.name, self.op, self.value) == (other.name, other.op, other.value)

    def __hash__(self) -> int:
        return hash((self.name, self.op, self.value))


def label_matcher(name: str, op: str, value: str) -> Matcher:
    """Convenience constructor taking the operator as its literal string."""
    return Matcher(name, MatchOp(op), value)


def matches_all(labels: Mapping[str, str], matchers: Iterable[Matcher]) -> bool:
    """Whether ``labels`` satisfies every matcher in ``matchers``."""
    return all(m.matches(labels) for m in matchers)
