"""Shared primitives used by every subsystem.

This package holds the small, dependency-free building blocks the rest of
the stack is built on:

* :mod:`repro.common.simclock` — a deterministic simulated clock so a
  "one minute sustained alert" costs microseconds of wall time.
* :mod:`repro.common.labels` — immutable label sets (the Prometheus/Loki
  data model's key abstraction).
* :mod:`repro.common.xname` — HPE Shasta component naming (``x1203c1b0``).
* :mod:`repro.common.errors` — the exception hierarchy.
* :mod:`repro.common.jsonutil` — strict helpers for the nested-JSON
  telemetry payloads.
"""

from repro.common.errors import (
    ReproError,
    ValidationError,
    QueryError,
    AuthError,
    NotFoundError,
    RetentionError,
)
from repro.common.labels import LabelSet, label_matcher, Matcher, MatchOp
from repro.common.simclock import SimClock, Timer
from repro.common.xname import XName

__all__ = [
    "ReproError",
    "ValidationError",
    "QueryError",
    "AuthError",
    "NotFoundError",
    "RetentionError",
    "LabelSet",
    "Matcher",
    "MatchOp",
    "label_matcher",
    "SimClock",
    "Timer",
    "XName",
]
