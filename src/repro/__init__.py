"""repro — reproduction of "Shasta Log Aggregation, Monitoring and
Alerting in HPC Environments with Grafana Loki and ServiceNow"
(Bautista, Sukhija, Deng — IEEE CLUSTER 2022).

The top-level convenience import gives you the assembled pipeline::

    from repro import MonitoringFramework
    fw = MonitoringFramework()
    fw.start()

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured results.
"""

from repro.core.framework import FrameworkConfig, MonitoringFramework

__version__ = "1.0.0"

__all__ = ["FrameworkConfig", "MonitoringFramework", "__version__"]
