"""aruba-exporter equivalent: the custom exporter NERSC wrote.

Models a management-network Aruba switch fleet with per-port status and
traffic counters.  Port flaps are seeded-random but deterministic, so
rules that alert on ``aruba_port_up == 0`` are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.exporters.textformat import MetricFamily, render_exposition


class ArubaExporter:
    """Exports ``aruba_port_up`` and ``aruba_port_rx_bytes_total``."""

    def __init__(
        self,
        switches: int = 4,
        ports_per_switch: int = 48,
        seed: int = 0,
        flap_probability: float = 0.001,
    ) -> None:
        if switches < 1 or ports_per_switch < 1:
            raise ValidationError("need at least one switch and port")
        if not 0.0 <= flap_probability <= 1.0:
            raise ValidationError("flap probability must be in [0, 1]")
        self._rng = np.random.default_rng(seed)
        self._switches = switches
        self._ports = ports_per_switch
        self._flap_p = flap_probability
        self._up = np.ones((switches, ports_per_switch), dtype=bool)
        self._rx = np.zeros((switches, ports_per_switch), dtype=np.float64)
        self.scrapes_served = 0

    def step(self) -> None:
        """Advance the fleet: accumulate traffic, maybe flap ports."""
        traffic = self._rng.gamma(2.0, 5.0e6, size=self._rx.shape)
        self._rx += traffic * self._up  # down ports move no bytes
        flips = self._rng.random(self._up.shape) < self._flap_p
        self._up ^= flips

    def force_port(self, switch: int, port: int, up: bool) -> None:
        """Deterministically set one port's state (fault injection)."""
        self._up[switch, port] = up

    def scrape(self) -> str:
        up = MetricFamily("aruba_port_up", "Aruba switch port status.", "gauge")
        rx = MetricFamily(
            "aruba_port_rx_bytes_total", "Received bytes.", "counter"
        )
        for s in range(self._switches):
            for p in range(self._ports):
                labels = {"switch": f"aruba-{s}", "port": str(p)}
                up.add(1.0 if self._up[s, p] else 0.0, **labels)
                rx.add(float(self._rx[s, p]), **labels)
        self.scrapes_served += 1
        return render_exposition([up, rx])

    def down_ports(self) -> list[tuple[int, int]]:
        rows, cols = np.nonzero(~self._up)
        return list(zip(rows.tolist(), cols.tolist()))
