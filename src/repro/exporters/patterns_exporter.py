"""Pattern-mining exporter: template mining and burst signals for vmagent.

The headline gauge is ``patterns_compression_ratio`` — raw lines per
distinct template — which quantifies the triage leverage the miner buys
(the paper's firehose problem).  ``patterns_bursts_active`` is the live
alert signal: it rises while a template floods and self-resolves with
the storm, mirroring the ``PatternBurst`` rule.  The per-template
``patterns_template_lines_total`` counter (top ten by volume, labelled
by ``pattern_id``) feeds the dashboard's busiest-templates panel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exporters.textformat import MetricFamily, render_exposition

if TYPE_CHECKING:
    from repro.patterns.ingester import PatternIngester
    from repro.patterns.ruler import PatternRuler
    from repro.patterns.store import PatternStore

#: How many per-template series to expose; one series per template
#: would defeat the cardinality story patterns exist to fix.
TOP_TEMPLATES = 10


class PatternsExporter:
    """Exports miner, store and pattern-ruler counters."""

    def __init__(
        self,
        ingester: "PatternIngester",
        store: "PatternStore",
        ruler: "PatternRuler | None" = None,
    ) -> None:
        self._ingester = ingester
        self._store = store
        self._ruler = ruler
        self.scrapes_served = 0

    def scrape(self) -> str:
        ingester = self._ingester
        store = self._store
        families = []

        lines = MetricFamily(
            "patterns_lines_mined_total",
            "Log lines consumed by the template miners.",
            "counter",
        )
        lines.add(float(ingester.lines_observed))
        families.append(lines)

        templates = MetricFamily(
            "patterns_templates",
            "Distinct templates currently known across all blocks.",
            "gauge",
        )
        templates.add(float(store.pattern_count()))
        families.append(templates)

        ratio = MetricFamily(
            "patterns_compression_ratio",
            "Raw lines per distinct template (triage leverage).",
            "gauge",
        )
        ratio.add(float(ingester.compression_ratio()))
        families.append(ratio)

        miners = MetricFamily(
            "patterns_miners",
            "Live (tenant, stream) miner instances.",
            "gauge",
        )
        miners.add(float(ingester.miner_count))
        families.append(miners)

        top = MetricFamily(
            "patterns_template_lines_total",
            "Lines absorbed by the busiest templates.",
            "counter",
        )
        counts = store.counts_by_pattern()
        busiest = sorted(
            counts.items(), key=lambda kv: (-kv[1][0], kv[0])
        )[:TOP_TEMPLATES]
        for (tenant, pattern_id), (count, _template) in busiest:
            top.add(float(count), tenant=tenant, pattern_id=pattern_id)
        families.append(top)

        novel = MetricFamily(
            "patterns_novel_error_templates_total",
            "Never-before-seen error-class templates detected.",
            "counter",
        )
        novel.add(float(ingester.novel_error_templates))
        families.append(novel)

        blocks = MetricFamily(
            "patterns_store_blocks",
            "Pattern blocks resident in the store.",
            "gauge",
        )
        blocks.add(float(store.block_count))
        families.append(blocks)

        persisted = MetricFamily(
            "patterns_blocks_persisted_total",
            "Pattern blocks flushed to the object store.",
            "counter",
        )
        persisted.add(float(store.blocks_persisted_total))
        families.append(persisted)

        rebuilt = MetricFamily(
            "patterns_blocks_rebuilt_total",
            "Pattern blocks re-mined from chunks by the compactor.",
            "counter",
        )
        rebuilt.add(float(store.blocks_rebuilt_total))
        families.append(rebuilt)

        if self._ruler is not None:
            active = MetricFamily(
                "patterns_bursts_active",
                "Templates currently bursting above baseline.",
                "gauge",
            )
            active.add(float(self._ruler.active_bursts))
            families.append(active)

            bursts = MetricFamily(
                "patterns_bursts_detected_total",
                "Burst episodes detected (rising edges).",
                "counter",
            )
            bursts.add(float(self._ruler.bursts_detected))
            families.append(bursts)

            detections = MetricFamily(
                "patterns_novel_detections_total",
                "Novel error templates surfaced by the ruler.",
                "counter",
            )
            detections.add(float(self._ruler.novel_detected))
            families.append(detections)

        self.scrapes_served += 1
        return render_exposition(families)
