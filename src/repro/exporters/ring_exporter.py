"""loki-ring exporter: ingest-ring health as Prometheus metrics.

What Loki serves from ``/metrics`` and ``/ring``, condensed: per-member
liveness and store/WAL gauges plus the distributor's write-path
counters.  These drive the "Ingest Ring" Grafana dashboard and the
``IngesterDown`` alerting rule — the monitoring stack watching its own
ingest tier, exactly as the kafka/blackbox exporters watch the bus.
"""

from __future__ import annotations

from repro.exporters.textformat import MetricFamily, render_exposition
from repro.ring.cluster import RingLokiCluster


class RingExporter:
    """Exports ring membership, per-ingester health and WAL state."""

    def __init__(self, ring: RingLokiCluster) -> None:
        self._ring = ring
        self.scrapes_served = 0

    def scrape(self) -> str:
        members = MetricFamily(
            "loki_ring_members", "Ingesters registered in the ring.", "gauge"
        )
        up = MetricFamily(
            "loki_ring_ingester_up",
            "Whether the ingester is serving (1) or crashed (0).",
            "gauge",
        )
        entries = MetricFamily(
            "loki_ring_ingester_entries_total",
            "Entries resident in the ingester's store.",
            "counter",
        )
        chunks = MetricFamily(
            "loki_ring_ingester_chunks",
            "Chunks held by the ingester.",
            "gauge",
        )
        wal_segments = MetricFamily(
            "loki_ring_wal_segments",
            "Live WAL segments awaiting checkpoint.",
            "gauge",
        )
        wal_bytes = MetricFamily(
            "loki_ring_wal_bytes",
            "Bytes held by the WAL (segments + checkpoint).",
            "gauge",
        )
        wal_records = MetricFamily(
            "loki_ring_wal_records_total",
            "Records ever appended to the WAL.",
            "counter",
        )
        crashes = MetricFamily(
            "loki_ring_ingester_crashes_total",
            "Times the ingester process died.",
            "counter",
        )
        member_state = MetricFamily(
            "ring_member_state",
            "One-hot lifecycle state per ring member: the series with "
            "value 1 names the member's current state (active/suspect/"
            "dead/forgotten — process state when no detector attached).",
            "gauge",
        )
        heartbeat_age = MetricFamily(
            "ring_member_heartbeat_age_seconds",
            "Seconds since the member's last heartbeat (failure "
            "detector attached only).",
            "gauge",
        )
        replayed = MetricFamily(
            "loki_ring_wal_replayed_records_total",
            "Records recovered via WAL replay across restarts.",
            "counter",
        )
        distributor = self._ring.distributor
        pushes = MetricFamily(
            "loki_distributor_pushes_total",
            "Push requests handled by the distributor.",
            "counter",
        )
        accepted = MetricFamily(
            "loki_distributor_entries_accepted_total",
            "Entries acknowledged at write quorum.",
            "counter",
        )
        replica_failures = MetricFamily(
            "loki_distributor_replica_writes_failed_total",
            "Per-replica write attempts refused by a down ingester.",
            "counter",
        )
        quorum_failures = MetricFamily(
            "loki_distributor_quorum_failures_total",
            "Streams that could not reach a write quorum.",
            "counter",
        )
        members.add(float(len(self._ring.ring)))
        for ingester_id, health in self._ring.ring_health().items():
            up.add(health["up"], ingester=ingester_id)
            entries.add(health["entries"], ingester=ingester_id)
            chunks.add(health["chunks"], ingester=ingester_id)
            wal_segments.add(health["wal_segments"], ingester=ingester_id)
            wal_bytes.add(health["wal_bytes"], ingester=ingester_id)
            wal_records.add(health["wal_records"], ingester=ingester_id)
            crashes.add(health["crashes"], ingester=ingester_id)
            replayed.add(health["replayed"], ingester=ingester_id)
            current = str(health["state"])
            zone = str(health.get("zone", ""))
            for state in ("active", "suspect", "dead", "forgotten", "crashed"):
                if state != current and state == "crashed":
                    continue  # plain process-state rows only when current
                member_state.add(
                    1.0 if state == current else 0.0,
                    ingester=ingester_id,
                    state=state,
                    zone=zone,
                )
            if "heartbeat_age_seconds" in health:
                heartbeat_age.add(
                    float(health["heartbeat_age_seconds"]),
                    ingester=ingester_id,
                    zone=zone,
                )
        pushes.add(float(distributor.pushes))
        accepted.add(float(distributor.entries_accepted))
        replica_failures.add(float(distributor.replica_writes_failed))
        quorum_failures.add(float(distributor.quorum_failures))
        self.scrapes_served += 1
        return render_exposition(
            [
                members,
                up,
                entries,
                chunks,
                wal_segments,
                wal_bytes,
                wal_records,
                crashes,
                member_state,
                heartbeat_age,
                replayed,
                pushes,
                accepted,
                replica_failures,
                quorum_failures,
            ]
        )
