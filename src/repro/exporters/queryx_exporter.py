"""Query-engine exporter: the sharded read path's health for vmagent.

The headline alert signal is ``queryx_slow_queries_recent``: queries
whose accounted wall-clock crossed the slowness threshold since the
last scrape.  As a since-last-scrape delta it self-resolves — one bad
dashboard refresh fires ``SlowQueries`` once and the gauge falls back
to zero on the next quiet scrape — matching how the tenancy exporter
surfaces admission rejections.

Alongside: fan-out volume (subqueries per query), the wall-vs-serial
latency pair whose ratio is the realized speedup, per-worker busy
timelines (a straggler shows up as one tall bar), retry/crash counters
from the chaos faults, and the bloom story — chunks considered vs
fetched vs skipped at the store-gateway, plus resident block counts.
"""

from __future__ import annotations

from repro.common.simclock import NANOS_PER_SECOND
from repro.exporters.deltas import RecentDelta
from repro.exporters.textformat import MetricFamily, render_exposition
from repro.objstore.gateway import StoreGateway
from repro.queryx.bloom import BloomStore
from repro.queryx.engine import ShardedQueryEngine


class QueryxExporter:
    """Exports planner, pool, merger and bloom-gate counters."""

    def __init__(
        self,
        engine: ShardedQueryEngine,
        gateway: StoreGateway | None = None,
        blooms: BloomStore | None = None,
    ) -> None:
        self._engine = engine
        self._gateway = gateway
        self._blooms = blooms
        self.scrapes_served = 0
        self._recent_slow = RecentDelta()

    def scrape(self) -> str:
        engine = self._engine
        families = []

        queries = MetricFamily(
            "queryx_queries_total",
            "Queries planned and executed by the sharded engine, by kind.",
            "counter",
        )
        queries.add(
            float(engine.queries_total - engine.log_queries_total), kind="metric"
        )
        queries.add(float(engine.log_queries_total), kind="log")
        families.append(queries)

        subqueries = MetricFamily(
            "queryx_subqueries_total",
            "Subqueries fanned out across the querier pool.",
            "counter",
        )
        subqueries.add(float(engine.subqueries_total))
        families.append(subqueries)

        unsharded = MetricFamily(
            "queryx_unsharded_plans_total",
            "Plans the planner refused to shard (time-split only).",
            "counter",
        )
        unsharded.add(float(engine.planner.unsharded_plans))
        families.append(unsharded)

        pool = engine.pool.counters()
        workers = MetricFamily(
            "queryx_querier_workers",
            "Querier workers in the pool, by liveness.",
            "gauge",
        )
        workers.add(float(pool["live_workers"]), state="live")
        workers.add(
            float(pool["workers"] - pool["live_workers"]), state="crashed"
        )
        families.append(workers)

        retries = MetricFamily(
            "queryx_subquery_retries_total",
            "Subquery attempts lost to querier crashes and retried.",
            "counter",
        )
        retries.add(float(pool["retries_total"]))
        families.append(retries)

        busy = MetricFamily(
            "queryx_worker_busy_seconds",
            "Accounted busy time per worker for the last query "
            "(stragglers show as one tall bar).",
            "gauge",
        )
        for worker_id, busy_ns in sorted(engine.pool.worker_busy().items()):
            busy.add(busy_ns / NANOS_PER_SECOND, worker=worker_id)
        families.append(busy)

        latency = MetricFamily(
            "queryx_last_query_seconds",
            "Accounted latency of the last query: parallel wall-clock vs "
            "the serial single-querier equivalent.",
            "gauge",
        )
        latency.add(engine.last_wall_ns / NANOS_PER_SECOND, mode="wall")
        latency.add(engine.last_serial_ns / NANOS_PER_SECOND, mode="serial")
        families.append(latency)

        speedup = MetricFamily(
            "queryx_speedup",
            "Cumulative serial/wall ratio — the realized parallelism.",
            "gauge",
        )
        speedup.add(engine.speedup())
        families.append(speedup)

        slow_total = MetricFamily(
            "queryx_slow_queries_total",
            "Queries whose wall-clock crossed the slowness threshold.",
            "counter",
        )
        slow_total.add(float(engine.slow_queries_total))
        families.append(slow_total)

        slow_recent = MetricFamily(
            "queryx_slow_queries_recent",
            "Slow queries since the last scrape (alert signal; "
            "self-resolves on the next quiet scrape).",
            "gauge",
        )
        slow_recent.add(self._recent_slow.observe_scalar(engine.slow_queries_total))
        families.append(slow_recent)

        if self._gateway is not None:
            gw = self._gateway.counters()
            pruning = MetricFamily(
                "queryx_gateway_chunks_total",
                "Cold chunks considered vs fetched vs bloom-skipped.",
                "counter",
            )
            pruning.add(float(gw["chunks_considered"]), disposition="considered")
            pruning.add(float(gw["chunks_fetched"]), disposition="fetched")
            pruning.add(float(gw["chunks_skipped"]), disposition="skipped")
            families.append(pruning)

            skip_ratio = MetricFamily(
                "queryx_bloom_skip_ratio",
                "Fraction of considered chunks the blooms let us skip.",
                "gauge",
            )
            skip_ratio.add(self._gateway.skip_ratio())
            families.append(skip_ratio)

        if self._blooms is not None:
            bl = self._blooms.counters()
            blocks = MetricFamily(
                "queryx_bloom_blocks",
                "Bloom blocks resident in the store.",
                "gauge",
            )
            blocks.add(float(bl["blocks"]))
            families.append(blocks)
            built = MetricFamily(
                "queryx_bloom_blocks_built_total",
                "Bloom blocks (re)built by the compactor.",
                "counter",
            )
            built.add(float(bl["blocks_built"]))
            families.append(built)
            checks = MetricFamily(
                "queryx_bloom_needle_checks_total",
                "Needle membership tests against bloom blocks, by verdict.",
                "counter",
            )
            checks.add(
                float(bl["needle_checks"] - bl["needle_rejections"]),
                verdict="maybe",
            )
            checks.add(float(bl["needle_rejections"]), verdict="absent")
            families.append(checks)

        self.scrapes_served += 1
        return render_exposition(families)
