"""blackbox-exporter equivalent: endpoint probing.

The community exporter NERSC installs to check that services respond.
Probes are callables returning ``(success, latency_seconds)`` so any
in-process service (Telemetry API, broker, Loki gateway) can be probed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ValidationError
from repro.exporters.textformat import MetricFamily, render_exposition


@dataclass(frozen=True)
class ProbeTarget:
    """One probed endpoint."""

    name: str
    probe: Callable[[], tuple[bool, float]]
    module: str = "http_2xx"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("probe target needs a name")


class BlackboxExporter:
    """Exports ``probe_success`` and ``probe_duration_seconds``."""

    def __init__(self, targets: list[ProbeTarget]) -> None:
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate probe target names")
        self._targets = list(targets)
        self.scrapes_served = 0

    def add_target(self, target: ProbeTarget) -> None:
        if any(t.name == target.name for t in self._targets):
            raise ValidationError(f"duplicate probe target: {target.name}")
        self._targets.append(target)

    def scrape(self) -> str:
        success = MetricFamily(
            "probe_success", "Whether the probe succeeded.", "gauge"
        )
        duration = MetricFamily(
            "probe_duration_seconds", "Probe round-trip time.", "gauge"
        )
        for target in self._targets:
            try:
                ok, latency = target.probe()
            except Exception:
                ok, latency = False, 0.0
            success.add(1.0 if ok else 0.0, target=target.name, module=target.module)
            duration.add(latency, target=target.name, module=target.module)
        self.scrapes_served += 1
        return render_exposition([success, duration])
