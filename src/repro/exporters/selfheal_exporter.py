"""Self-healing exporter: the detect → restart → repair loop for vmagent.

Two signals carry the alerting story.  Per-member lifecycle lives on the
ring exporter (``ring_member_state`` one-hot gauge, which the
``IngesterSuspect`` rule watches); this exporter adds the fleet-level
counts plus the repair plane: ``selfheal_under_replicated_streams`` is a
*live placement diff* — streams whose desired replicas are missing
resident entries right now — so the ``UnderReplicatedStreams`` alert
fires while redundancy is genuinely lost and self-resolves the scrape
after the repairer (or a supervisor restart + WAL replay) closes the
gap.

Alongside: heartbeat/transition counters from the memberlist, repair
volume (members retired, streams re-replicated, entries copied), and
the supervisor's restart/replay/skip accounting.
"""

from __future__ import annotations

from repro.exporters.textformat import MetricFamily, render_exposition
from repro.selfheal.manager import SelfHealManager


class SelfHealExporter:
    """Exports memberlist, detector, repairer and supervisor counters."""

    def __init__(self, manager: SelfHealManager) -> None:
        self._manager = manager
        self.scrapes_served = 0

    def scrape(self) -> str:
        manager = self._manager
        memberlist = manager.memberlist
        repairer = manager.repairer
        supervisor = manager.supervisor
        families = []

        members = MetricFamily(
            "selfheal_members",
            "Ring members by lifecycle state.",
            "gauge",
        )
        for state, count in manager.counts_by_state().items():
            members.add(float(count), state=state)
        families.append(members)

        heartbeats = MetricFamily(
            "selfheal_heartbeats_total",
            "Heartbeats stamped into the memberlist.",
            "counter",
        )
        heartbeats.add(float(memberlist.heartbeats_total))
        families.append(heartbeats)

        transitions = MetricFamily(
            "selfheal_transitions_total",
            "Lifecycle transitions by kind (suspect/dead/recovered/"
            "forgotten).",
            "counter",
        )
        transitions.add(float(memberlist.suspects_total), kind="suspect")
        transitions.add(float(memberlist.deaths_total), kind="dead")
        transitions.add(float(memberlist.recoveries_total), kind="recovered")
        transitions.add(float(memberlist.forgotten_total), kind="forgotten")
        families.append(transitions)

        read_suspects = MetricFamily(
            "selfheal_read_triggered_suspects_total",
            "Members suspected because a read fan-out found them refusing "
            "before the sweep noticed the stale heartbeat.",
            "counter",
        )
        read_suspects.add(float(memberlist.read_triggered_suspects))
        families.append(read_suspects)

        under = MetricFamily(
            "selfheal_under_replicated_streams",
            "Streams whose desired replicas are missing resident entries "
            "(live placement diff; self-resolves once repaired).",
            "gauge",
        )
        under.add(float(repairer.under_replicated_streams()))
        families.append(under)

        repaired_members = MetricFamily(
            "selfheal_members_repaired_total",
            "DEAD members retired by anti-entropy repair.",
            "counter",
        )
        repaired_members.add(float(repairer.members_repaired_total))
        families.append(repaired_members)

        heals = MetricFamily(
            "selfheal_heal_passes_total",
            "Anti-entropy heal passes that closed a placement gap with "
            "no member to retire (scale-out newcomers, voluntary "
            "leaves).",
            "counter",
        )
        heals.add(float(repairer.heals_total))
        families.append(heals)

        repaired_streams = MetricFamily(
            "selfheal_streams_repaired_total",
            "Streams re-replicated onto new ring owners.",
            "counter",
        )
        repaired_streams.add(float(repairer.streams_repaired_total))
        families.append(repaired_streams)

        copied = MetricFamily(
            "selfheal_entries_copied_total",
            "Entries grafted onto repair targets.",
            "counter",
        )
        copied.add(float(repairer.entries_copied_total))
        families.append(copied)

        restarts = MetricFamily(
            "selfheal_supervisor_restarts_total",
            "Crashed ingesters the supervisor restarted.",
            "counter",
        )
        restarts.add(float(supervisor.restarts_total))
        families.append(restarts)

        replayed = MetricFamily(
            "selfheal_supervisor_replayed_records_total",
            "WAL records replayed by supervised restarts.",
            "counter",
        )
        replayed.add(float(supervisor.records_replayed_total))
        families.append(replayed)

        skipped = MetricFamily(
            "selfheal_supervisor_skips_total",
            "Restart candidates skipped, by reason.",
            "counter",
        )
        skipped.add(float(supervisor.skipped_unrecoverable), reason="unrecoverable")
        skipped.add(float(supervisor.skipped_zone_down), reason="zone_down")
        skipped.add(float(supervisor.skipped_backoff), reason="backoff")
        families.append(skipped)

        degraded_reads = MetricFamily(
            "selfheal_reads_degraded_total",
            "Reads that failed because fewer than a quorum of replicas "
            "answered.",
            "counter",
        )
        degraded_reads.add(float(manager.cluster.distributor.reads_degraded))
        families.append(degraded_reads)

        skipped_writes = MetricFamily(
            "selfheal_replicas_skipped_unhealthy_total",
            "Desired write replicas skipped because the detector held "
            "them SUSPECT or DEAD.",
            "counter",
        )
        skipped_writes.add(
            float(manager.cluster.distributor.replicas_skipped_unhealthy)
        )
        families.append(skipped_writes)

        self.scrapes_served += 1
        return render_exposition(families)
