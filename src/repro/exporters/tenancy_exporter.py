"""Tenancy exporter: per-tenant ingest/discard/queue health for vmagent.

Isolation only works if someone can see it working: this exporter feeds
per-tenant acceptance, discards (by reason), active streams, queue depth
and wait times to the metrics plane, where the ``TenantRateLimited``
rule and the "Tenants" Grafana dashboard consume them.

``tenant_ingest_discarded_recent`` is the alerting signal: discards
since the *previous* scrape, computed from a snapshot the exporter
keeps.  A tenant being throttled right now shows a positive value; once
its producer backs off the value returns to zero and the alert
auto-resolves — no rate() support needed in the PromQL engine.

When handed the broker, the exporter also ships the per-topic
produce/consume/reject counters — the bus-level context for "is this
tenant's pipeline actually draining".
"""

from __future__ import annotations

from repro.bus.broker import Broker
from repro.common.simclock import NANOS_PER_SECOND
from repro.exporters.deltas import RecentDelta
from repro.exporters.textformat import MetricFamily, render_exposition
from repro.tenancy.admission import AdmissionController
from repro.tenancy.scheduler import QueryScheduler


class TenancyExporter:
    """Exports admission, scheduler and (optionally) bus counters."""

    def __init__(
        self,
        admission: AdmissionController,
        scheduler: QueryScheduler | None = None,
        broker: Broker | None = None,
    ) -> None:
        self._admission = admission
        self._scheduler = scheduler
        self._broker = broker
        #: tenant -> entries_discarded at the previous scrape.
        self._recent_discards = RecentDelta()
        self.scrapes_served = 0

    def scrape(self) -> str:
        accepted = MetricFamily(
            "tenant_ingest_entries_total",
            "Log lines accepted from the tenant.",
            "counter",
        )
        discarded = MetricFamily(
            "tenant_ingest_discarded_total",
            "Log lines rejected, by 429 reason.",
            "counter",
        )
        recent = MetricFamily(
            "tenant_ingest_discarded_recent",
            "Lines discarded since the previous scrape (alert signal).",
            "gauge",
        )
        streams = MetricFamily(
            "tenant_active_streams",
            "Distinct active streams held by the tenant.",
            "gauge",
        )
        rejected_pushes = MetricFamily(
            "tenant_pushes_rejected_total",
            "Whole pushes refused with a typed 429.",
            "counter",
        )
        for tenant in self._admission.tenants():
            counters = self._admission.counters[tenant]
            accepted.add(float(counters.entries_accepted), tenant=tenant)
            for reason, count in sorted(counters.discarded.items()):
                discarded.add(float(count), tenant=tenant, reason=reason)
            recent.add(
                self._recent_discards.observe(tenant, counters.entries_discarded),
                tenant=tenant,
            )
            streams.add(
                float(self._admission.active_streams(tenant)), tenant=tenant
            )
            rejected_pushes.add(float(counters.pushes_rejected), tenant=tenant)
        families = [accepted, discarded, recent, streams, rejected_pushes]
        if self._scheduler is not None:
            depth = MetricFamily(
                "tenant_query_queue_depth",
                "Queries waiting in the tenant's scheduler queue.",
                "gauge",
            )
            running = MetricFamily(
                "tenant_queries_running",
                "Tenant queries currently holding querier slots.",
                "gauge",
            )
            completed = MetricFamily(
                "tenant_queries_completed_total",
                "Tenant queries finished successfully.",
                "counter",
            )
            q_rejected = MetricFamily(
                "tenant_queries_rejected_total",
                "Tenant queries refused by limits (range/series).",
                "counter",
            )
            wait_p95 = MetricFamily(
                "tenant_query_wait_p95_seconds",
                "95th percentile queue wait for the tenant's queries.",
                "gauge",
            )
            wait_mean = MetricFamily(
                "tenant_query_wait_mean_seconds",
                "Mean queue wait for the tenant's queries.",
                "gauge",
            )
            for tenant in self._scheduler.tenants():
                stats = self._scheduler.stats.get(tenant)
                depth.add(
                    float(self._scheduler.queue_depth(tenant)), tenant=tenant
                )
                running.add(
                    float(self._scheduler.running(tenant)), tenant=tenant
                )
                if stats is None:
                    continue
                completed.add(float(stats.completed), tenant=tenant)
                q_rejected.add(
                    float(stats.rejected + stats.failed), tenant=tenant
                )
                wait_p95.add(
                    self._scheduler.wait_percentile_ns(tenant, 95.0)
                    / NANOS_PER_SECOND,
                    tenant=tenant,
                )
                wait_mean.add(
                    stats.mean_wait_ns / NANOS_PER_SECOND, tenant=tenant
                )
            families += [
                depth, running, completed, q_rejected, wait_p95, wait_mean,
            ]
        if self._broker is not None:
            produced = MetricFamily(
                "bus_topic_produced_total",
                "Records produced to the topic.",
                "counter",
            )
            consumed = MetricFamily(
                "bus_topic_consumed_total",
                "Records delivered to consumers from the topic.",
                "counter",
            )
            rejected = MetricFamily(
                "bus_topic_rejected_total",
                "Produce attempts refused by backpressure.",
                "counter",
            )
            for topic in self._broker.topics():
                stats = self._broker.topic_stats(topic)
                produced.add(float(stats["total_produced"]), topic=topic)
                consumed.add(float(stats["total_consumed"]), topic=topic)
                rejected.add(
                    float(stats["backpressure_rejections"]), topic=topic
                )
            families += [produced, consumed, rejected]
        self.scrapes_served += 1
        return render_exposition(families)
