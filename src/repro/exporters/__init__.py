"""Prometheus-style exporters (paper Figure 1, top row).

Three provenances, as the paper lists them:

* installed by HPE — :class:`~repro.exporters.node.NodeExporter`;
* community, installed by NERSC — :class:`~repro.exporters.blackbox.BlackboxExporter`,
  :class:`~repro.exporters.kafka_exporter.KafkaExporter`;
* written by NERSC — :class:`~repro.exporters.aruba.ArubaExporter`.

Every exporter exposes ``scrape() -> str`` returning the Prometheus text
exposition format; :mod:`repro.exporters.textformat` renders and parses it,
so vmagent exercises the real wire format.
"""

from repro.exporters.textformat import (
    MetricFamily,
    MetricPoint,
    render_exposition,
    parse_exposition,
)
from repro.exporters.node import NodeExporter
from repro.exporters.blackbox import BlackboxExporter, ProbeTarget
from repro.exporters.kafka_exporter import KafkaExporter
from repro.exporters.aruba import ArubaExporter
from repro.exporters.ring_exporter import RingExporter

__all__ = [
    "MetricFamily",
    "MetricPoint",
    "render_exposition",
    "parse_exposition",
    "NodeExporter",
    "BlackboxExporter",
    "ProbeTarget",
    "KafkaExporter",
    "ArubaExporter",
    "RingExporter",
]
