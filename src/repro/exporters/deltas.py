"""Self-resolving "since last scrape" deltas over monotonic counters.

Several exporters surface alert signals as the *delta* of a counter
between two scrapes: the tenancy exporter's per-tenant discard burst,
the query engine's slow-query burst, the SLO exporter's bad-event
burst.  The gauge is positive while the underlying condition is live
and falls back to zero on the next quiet scrape, so threshold rules on
it self-resolve without any ``rate()`` support in the PromQL engine.

The snapshot bookkeeping was copy-pasted per exporter; this helper owns
it once, including the reset case: when the source process restarts
its counter drops below the snapshot, and the honest reading is that
the new counter's entire value accumulated since the last scrape (the
same convention Prometheus uses for counter resets).  A delta is never
negative.
"""

from __future__ import annotations

__all__ = ["RecentDelta"]

#: Key used for the un-keyed (single counter) convenience form.
_SCALAR_KEY = ()


class RecentDelta:
    """Tracks per-key counter snapshots and yields since-last deltas.

    Keys are arbitrary hashables — a tenant name, a (tenant, reason)
    tuple, or nothing at all for a single global counter.  The first
    observation of a key baselines against zero, matching the
    historical exporter behaviour: everything counted before the first
    scrape reads as "recent" once.
    """

    def __init__(self) -> None:
        self._last: dict[object, float] = {}

    def observe(self, key: object, total: float) -> float:
        """Return the delta for ``key`` since its previous observation
        and advance the snapshot.  Counter resets (``total`` below the
        snapshot) yield ``total`` itself, never a negative."""
        last = self._last.get(key, 0.0)
        self._last[key] = float(total)
        if total < last:  # counter reset: source restarted
            return float(total)
        return float(total - last)

    def observe_scalar(self, total: float) -> float:
        """Single-counter convenience form of :meth:`observe`."""
        return self.observe(_SCALAR_KEY, total)

    def peek(self, key: object = _SCALAR_KEY) -> float:
        """The snapshot currently held for ``key`` (0 if never seen)."""
        return self._last.get(key, 0.0)

    def forget(self, key: object) -> None:
        """Drop the snapshot for ``key`` (e.g. a deleted tenant)."""
        self._last.pop(key, None)
