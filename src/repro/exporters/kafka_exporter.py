"""kafka-exporter equivalent: broker/topic/consumer-group metrics.

The community exporter NERSC installs to watch the telemetry bus itself —
"monitoring the monitoring", which is how a stuck consumer (growing lag)
becomes an alert before data is lost.
"""

from __future__ import annotations

from repro.bus.broker import Broker
from repro.exporters.textformat import MetricFamily, render_exposition


class KafkaExporter:
    """Exports per-topic message counters and per-group lag."""

    def __init__(self, broker: Broker) -> None:
        self._broker = broker
        self.scrapes_served = 0

    def scrape(self) -> str:
        messages = MetricFamily(
            "kafka_topic_messages_total",
            "Messages produced to the topic since broker start.",
            "counter",
        )
        bytes_total = MetricFamily(
            "kafka_topic_bytes_total", "Bytes produced to the topic.", "counter"
        )
        retained = MetricFamily(
            "kafka_topic_retained_records",
            "Records currently retained across partitions.",
            "gauge",
        )
        partitions = MetricFamily(
            "kafka_topic_partitions", "Partition count.", "gauge"
        )
        lag = MetricFamily(
            "kafka_consumergroup_lag",
            "Records not yet consumed by the group.",
            "gauge",
        )
        for topic in self._broker.topics():
            stats = self._broker.topic_stats(topic)
            messages.add(float(stats["total_produced"]), topic=topic)
            bytes_total.add(float(stats["total_bytes"]), topic=topic)
            retained.add(float(stats["retained_records"]), topic=topic)
            partitions.add(float(stats["partitions"]), topic=topic)
        for group_id, topic in self._broker.group_ids():
            lag.add(
                float(self._broker.lag(group_id, topic)),
                consumergroup=group_id,
                topic=topic,
            )
        self.scrapes_served += 1
        return render_exposition([messages, bytes_total, retained, partitions, lag])
