"""Alert-delivery exporter: the notification path's own health metrics.

The resilience layer guarantees at-least-once delivery, but "eventually"
is an operational quantity someone must watch: pending journal depth,
retry volume, breaker state and dead-letter counts.  This exporter feeds
them to vmagent so the ``NotificationFailures`` rule and the "Alert
Delivery" Grafana dashboard close the loop — the monitoring plane
monitoring its own alert tail.
"""

from __future__ import annotations

from typing import Iterable

from repro.bus.broker import Broker, DLQ_SUFFIX
from repro.exporters.textformat import MetricFamily, render_exposition
from repro.resilience.circuit import CircuitState
from repro.resilience.journal import NotificationJournal
from repro.resilience.receivers import RetryingReceiver

#: Numeric encoding of breaker state for the gauge.
_BREAKER_STATE = {
    CircuitState.CLOSED: 0.0,
    CircuitState.HALF_OPEN: 1.0,
    CircuitState.OPEN: 2.0,
}


class DeliveryExporter:
    """Exports journal, retry, breaker and DLQ state per receiver."""

    def __init__(
        self,
        journal: NotificationJournal,
        receivers: Iterable[RetryingReceiver],
        broker: Broker | None = None,
    ) -> None:
        self._journal = journal
        self._receivers = list(receivers)
        self._broker = broker
        self.scrapes_served = 0

    def scrape(self) -> str:
        enqueued = MetricFamily(
            "alert_delivery_enqueued_total",
            "Notifications journaled for delivery.",
            "counter",
        )
        delivered = MetricFamily(
            "alert_delivery_delivered_total",
            "Notifications delivered at least once.",
            "counter",
        )
        pending = MetricFamily(
            "alert_delivery_pending",
            "Journaled notifications not yet delivered.",
            "gauge",
        )
        dead = MetricFamily(
            "alert_delivery_dead_lettered_total",
            "Notifications abandoned after exhausting the retry budget.",
            "counter",
        )
        attempts = MetricFamily(
            "alert_delivery_attempts_total",
            "Delivery attempts made against the receiver.",
            "counter",
        )
        retries = MetricFamily(
            "alert_delivery_retries_total",
            "Retry timers scheduled (backoff + breaker deferrals).",
            "counter",
        )
        breaker_state = MetricFamily(
            "alert_delivery_breaker_state",
            "Circuit state: 0 closed, 1 half-open, 2 open.",
            "gauge",
        )
        breaker_opens = MetricFamily(
            "alert_delivery_breaker_opens_total",
            "Times the receiver's circuit opened.",
            "counter",
        )
        for receiver in self._receivers:
            name = receiver.name
            stats = self._journal.stats(name)
            enqueued.add(float(stats["enqueued"]), receiver=name)
            delivered.add(float(stats["delivered"]), receiver=name)
            pending.add(float(stats["pending"]), receiver=name)
            dead.add(float(stats["failed"]), receiver=name)
            attempts.add(float(receiver.attempts_total), receiver=name)
            retries.add(float(receiver.retries_scheduled), receiver=name)
            if receiver.breaker is not None:
                breaker_state.add(
                    _BREAKER_STATE[receiver.breaker.state], receiver=name
                )
                breaker_opens.add(
                    float(receiver.breaker.times_opened), receiver=name
                )
        families = [
            enqueued,
            delivered,
            pending,
            dead,
            attempts,
            retries,
            breaker_state,
            breaker_opens,
        ]
        if self._broker is not None:
            dlq = MetricFamily(
                "kafka_dlq_records",
                "Poison records quarantined per source topic.",
                "gauge",
            )
            for topic in self._broker.topics():
                if topic.endswith(DLQ_SUFFIX):
                    continue
                depth = self._broker.dlq_depth(topic)
                if depth:
                    dlq.add(float(depth), topic=topic)
            dlq.add(float(self._broker.records_dead_lettered), topic="__total__")
            families.append(dlq)
        self.scrapes_served += 1
        return render_exposition(families)
