"""Prometheus text exposition format: render and parse.

The format every exporter speaks::

    # HELP node_temp_celsius Node temperature.
    # TYPE node_temp_celsius gauge
    node_temp_celsius{xname="x1000c0s0b0n0"} 34.72

vmagent parses this back into samples, so the scrape path exercises the
real wire format instead of passing Python objects around.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.common.errors import ValidationError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_PREFIX_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"((?:[^"\\]|\\.)*)"\s*')


@dataclass(frozen=True)
class MetricPoint:
    """One sample line."""

    name: str
    labels: dict[str, str]
    value: float
    timestamp_ms: int | None = None


@dataclass
class MetricFamily:
    """A named family: HELP/TYPE header plus its points."""

    name: str
    help: str = ""
    type: str = "gauge"  # gauge | counter | untyped
    points: list[MetricPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValidationError(f"invalid metric name: {self.name!r}")
        if self.type not in ("gauge", "counter", "untyped"):
            raise ValidationError(f"invalid metric type: {self.type!r}")

    def add(self, value: float, **labels: str) -> None:
        self.points.append(MetricPoint(self.name, labels, value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def render_exposition(families: list[MetricFamily]) -> str:
    """Render families to exposition text."""
    lines: list[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for point in family.points:
            if point.name != family.name:
                raise ValidationError(
                    f"point {point.name!r} inside family {family.name!r}"
                )
            if point.labels:
                label_text = ",".join(
                    f'{k}="{_escape(v)}"' for k, v in sorted(point.labels.items())
                )
                head = f"{point.name}{{{label_text}}}"
            else:
                head = point.name
            line = f"{head} {_format_value(point.value)}"
            if point.timestamp_ms is not None:
                line += f" {point.timestamp_ms}"
            lines.append(line)
    return "\n".join(lines) + ("\n" if lines else "")


def parse_exposition(text: str) -> list[MetricPoint]:
    """Parse exposition text into points (HELP/TYPE lines are skipped)."""
    points: list[MetricPoint] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        points.append(_parse_sample_line(line, lineno))
    return points


def _parse_sample_line(line: str, lineno: int) -> MetricPoint:
    name_match = _NAME_PREFIX_RE.match(line)
    if not name_match:
        raise ValidationError(f"bad exposition line {lineno}: {line!r}")
    name = name_match.group()
    pos = name_match.end()
    labels: dict[str, str] = {}
    if pos < len(line) and line[pos] == "{":
        pos += 1
        while pos < len(line) and line[pos] != "}":
            lm = _LABEL_RE.match(line, pos)
            if not lm:
                raise ValidationError(
                    f"bad label pair on exposition line {lineno}: {line!r}"
                )
            labels[lm.group(1)] = _unescape(lm.group(2))
            pos = lm.end()
            if pos < len(line) and line[pos] == ",":
                pos += 1
        if pos >= len(line) or line[pos] != "}":
            raise ValidationError(f"unterminated labels on line {lineno}: {line!r}")
        pos += 1
    rest = line[pos:].split()
    if not rest or len(rest) > 2:
        raise ValidationError(f"bad exposition line {lineno}: {line!r}")
    value_text = rest[0]
    try:
        if value_text == "NaN":
            value = float("nan")
        elif value_text in ("+Inf", "Inf"):
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
    except ValueError:
        raise ValidationError(
            f"bad value on exposition line {lineno}: {value_text!r}"
        ) from None
    ts: int | None = None
    if len(rest) == 2:
        try:
            ts = int(rest[1])
        except ValueError:
            raise ValidationError(
                f"bad timestamp on exposition line {lineno}: {rest[1]!r}"
            ) from None
    return MetricPoint(name, labels, value, ts)
