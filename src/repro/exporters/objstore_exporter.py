"""Object-storage exporter: the cold tier's health for vmagent.

A tiered store only earns its keep if flushes keep happening — resident
memory stays bounded *because* sealed chunks leave it — so the headline
signal here is ``objstore_flush_failures_consecutive``: failed flush
cycles since the last success.  Unlike a since-last-scrape delta (which
would blink back to zero between flush intervals and never sustain the
rule's ``for_`` window, since flushes run less often than scrapes), a
consecutive-failure gauge stays positive for the whole of an outage and
drops to zero the moment a flush lands, so ``ObjstoreFlushStalled``
fires for real stalls and auto-resolves on recovery.

Alongside the alert signal: bucket inventory (objects, bytes, index
files), shipper throughput and dedup ratio, compaction effectiveness,
and gateway cold-read latency for the "Object Storage" dashboard.
"""

from __future__ import annotations

from repro.common.simclock import NANOS_PER_SECOND
from repro.exporters.textformat import MetricFamily, render_exposition
from repro.objstore.compactor import Compactor
from repro.objstore.gateway import StoreGateway
from repro.objstore.index import INDEX_PREFIX, ShipperIndex
from repro.objstore.objectstore import ObjectStore
from repro.objstore.shipper import ChunkShipper


class ObjstoreExporter:
    """Exports object-store, shipper, compactor and gateway counters."""

    def __init__(
        self,
        store: ObjectStore,
        index: ShipperIndex,
        shipper: ChunkShipper,
        compactor: Compactor | None = None,
        gateway: StoreGateway | None = None,
    ) -> None:
        self._store = store
        self._index = index
        self._shipper = shipper
        self._compactor = compactor
        self._gateway = gateway
        self.scrapes_served = 0

    def scrape(self) -> str:
        bucket = self._index.bucket
        families = []

        objects = MetricFamily(
            "objstore_objects",
            "Objects resident in the bucket, by kind.",
            "gauge",
        )
        chunk_count = self._store.object_count(bucket, prefix="chunks/")
        index_count = self._store.object_count(bucket, prefix=INDEX_PREFIX)
        objects.add(float(chunk_count), bucket=bucket, kind="chunk")
        objects.add(float(index_count), bucket=bucket, kind="index")
        families.append(objects)

        stored = MetricFamily(
            "objstore_bytes",
            "Bytes resident in the bucket, by kind.",
            "gauge",
        )
        stored.add(
            float(self._store.stored_bytes(bucket, prefix="chunks/")),
            bucket=bucket, kind="chunk",
        )
        stored.add(
            float(self._store.stored_bytes(bucket, prefix=INDEX_PREFIX)),
            bucket=bucket, kind="index",
        )
        families.append(stored)

        ops = MetricFamily(
            "objstore_requests_total",
            "Backend requests, by operation.",
            "counter",
        )
        counters = self._store.counters()
        for op in ("puts", "gets", "deletes", "lists"):
            ops.add(float(counters[op]), op=op.rstrip("s"))
        families.append(ops)

        transferred = MetricFamily(
            "objstore_transferred_bytes_total",
            "Bytes moved to/from the backend.",
            "counter",
        )
        transferred.add(float(counters["bytes_in"]), direction="in")
        transferred.add(float(counters["bytes_out"]), direction="out")
        families.append(transferred)

        outage = MetricFamily(
            "objstore_backend_down",
            "Whether the backend is currently refusing requests.",
            "gauge",
        )
        outage.add(1.0 if self._store.outage else 0.0, bucket=bucket)
        families.append(outage)

        rejections = MetricFamily(
            "objstore_outage_rejections_total",
            "Requests refused while the backend was down.",
            "counter",
        )
        rejections.add(float(counters["outage_rejections"]))
        families.append(rejections)

        # --- shipper ----------------------------------------------------
        ship = self._shipper.counters()
        flushes = MetricFamily(
            "objstore_flushes_total",
            "Flush cycles attempted, by outcome.",
            "counter",
        )
        flushes.add(
            float(ship["flushes"] - ship["flush_failures"]), outcome="ok"
        )
        flushes.add(float(ship["flush_failures"]), outcome="failed")
        families.append(flushes)

        stalled = MetricFamily(
            "objstore_flush_failures_consecutive",
            "Failed flush cycles since the last success (alert signal).",
            "gauge",
        )
        stalled.add(float(ship["consecutive_failures"]))
        families.append(stalled)

        shipped = MetricFamily(
            "objstore_chunks_flushed_total",
            "Chunks leaving ingester memory, by disposition.",
            "counter",
        )
        shipped.add(float(ship["chunks_shipped"]), disposition="shipped")
        shipped.add(float(ship["chunks_deduped"]), disposition="deduped")
        families.append(shipped)

        freed = MetricFamily(
            "objstore_flush_bytes_total",
            "Bytes uploaded vs. resident bytes freed by flushes.",
            "counter",
        )
        freed.add(float(ship["bytes_shipped"]), kind="shipped")
        freed.add(float(ship["bytes_freed"]), kind="freed")
        families.append(freed)

        dedup = MetricFamily(
            "objstore_dedup_ratio",
            "Fraction of flushed chunks deduplicated (≈ (RF-1)/RF when "
            "the ring is healthy).",
            "gauge",
        )
        dedup.add(self._shipper.dedup_ratio())
        families.append(dedup)

        refs = MetricFamily(
            "objstore_index_chunk_refs",
            "Chunk refs held by the shipper index.",
            "gauge",
        )
        refs.add(float(self._index.ref_count()))
        families.append(refs)

        # --- compactor --------------------------------------------------
        if self._compactor is not None:
            comp = self._compactor.counters()
            compactions = MetricFamily(
                "objstore_compaction_runs_total",
                "Compaction runs, by outcome.",
                "counter",
            )
            compactions.add(
                float(comp["runs"] - comp["run_failures"]), outcome="ok"
            )
            compactions.add(float(comp["run_failures"]), outcome="failed")
            families.append(compactions)
            merged = MetricFamily(
                "objstore_compaction_chunks_total",
                "Chunk objects consumed and produced by compaction.",
                "counter",
            )
            merged.add(float(comp["chunks_merged"]), direction="in")
            merged.add(float(comp["chunks_written"]), direction="out")
            families.append(merged)
            dropped = MetricFamily(
                "objstore_compaction_duplicates_dropped_total",
                "Duplicate entries removed while merging chunks.",
                "counter",
            )
            dropped.add(float(comp["duplicates_dropped"]))
            families.append(dropped)
            expired = MetricFamily(
                "objstore_retention_chunks_deleted_total",
                "Cold chunks deleted by retention and delete requests.",
                "counter",
            )
            expired.add(float(comp["retention_deleted"]), reason="retention")
            expired.add(float(comp["delete_requests"]), reason="request")
            families.append(expired)

        # --- gateway ----------------------------------------------------
        if self._gateway is not None:
            gw = self._gateway.counters()
            queries = MetricFamily(
                "objstore_gateway_queries_total",
                "Cold selects served by the store-gateway.",
                "counter",
            )
            queries.add(float(gw["queries"]))
            families.append(queries)
            fetched = MetricFamily(
                "objstore_gateway_chunks_fetched_total",
                "Chunk objects fetched for cold selects.",
                "counter",
            )
            fetched.add(float(gw["chunks_fetched"]))
            families.append(fetched)
            latency = MetricFamily(
                "objstore_gateway_last_query_seconds",
                "Accounted object-store latency of the last cold select.",
                "gauge",
            )
            latency.add(
                self._gateway.last_query_latency_ns / NANOS_PER_SECOND
            )
            families.append(latency)

        self.scrapes_served += 1
        return render_exposition(families)
