"""node-exporter equivalent: per-node health metrics.

Installed by HPE on the real system; here it reads the synthetic cluster
and sensor bank.  One exporter instance can cover any subset of nodes
(per-cabinet sharding is the default wiring in the framework).
"""

from __future__ import annotations

from typing import Iterable

from repro.common.xname import XName
from repro.cluster.sensors import SensorBank, SensorId, SensorKind
from repro.cluster.topology import Cluster, NodeState
from repro.exporters.textformat import MetricFamily, render_exposition


class NodeExporter:
    """Exports ``node_up``, ``node_temp_celsius`` and ``node_power_watts``."""

    def __init__(
        self,
        cluster: Cluster,
        sensors: SensorBank,
        nodes: Iterable[XName] | None = None,
        instance: str = "node-exporter",
    ) -> None:
        self._cluster = cluster
        self._sensors = sensors
        self._nodes = sorted(nodes) if nodes is not None else sorted(cluster.nodes)
        self.instance = instance
        self.scrapes_served = 0

    def scrape(self) -> str:
        up = MetricFamily("node_up", "Whether the node is up.", "gauge")
        temp = MetricFamily(
            "node_temp_celsius", "Node temperature in Celsius.", "gauge"
        )
        power = MetricFamily("node_power_watts", "Node power draw in Watts.", "gauge")
        for xname in self._nodes:
            node = self._cluster.nodes[xname]
            name = str(xname)
            up.add(1.0 if node.state is NodeState.UP else 0.0, xname=name)
            temp.add(
                self._sensors.read(SensorId(xname, SensorKind.TEMPERATURE_C)),
                xname=name,
            )
            power.add(
                self._sensors.read(SensorId(xname, SensorKind.POWER_W)), xname=name
            )
        self.scrapes_served += 1
        return render_exposition([up, temp, power])
