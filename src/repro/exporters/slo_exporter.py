"""SLO exporter: SLI counters and budget gauges for vmagent.

This exporter closes the SLO plane's metric loop: the manager's SLI
collectors are published as cumulative ``slo_sli_good_total`` /
``slo_sli_total`` counters, vmagent scrapes them into the TSDB, the
recording engine derives per-window burn rates from them, and vmalert
pages on the derived series.  Budget gauges ride along for dashboards
and ``logcli slo``.

``slo_bad_events_recent`` is the since-last-scrape bad-event burst via
the shared :class:`~repro.exporters.deltas.RecentDelta` helper — the
same self-resolving alert-signal convention the tenancy and queryx
exporters use.
"""

from __future__ import annotations

from repro.exporters.deltas import RecentDelta
from repro.exporters.textformat import MetricFamily, render_exposition
from repro.slo.manager import SloManager
from repro.slo.model import SLO_LABEL


class SloExporter:
    """Exports per-SLO SLI counters and error-budget gauges."""

    def __init__(self, manager: SloManager) -> None:
        self._manager = manager
        self.scrapes_served = 0
        self._recent_bad = RecentDelta()

    def scrape(self) -> str:
        good = MetricFamily(
            "slo_sli_good_total",
            "Cumulative good events per SLO (SLI numerator).",
            "counter",
        )
        total = MetricFamily(
            "slo_sli_total",
            "Cumulative total events per SLO (SLI denominator).",
            "counter",
        )
        objective = MetricFamily(
            "slo_objective",
            "Configured objective per SLO (fraction, e.g. 0.999).",
            "gauge",
        )
        remaining = MetricFamily(
            "slo_budget_remaining_ratio",
            "Error budget left over the SLO window (1 untouched, "
            "0 exhausted, negative when overspent).",
            "gauge",
        )
        exhausted = MetricFamily(
            "slo_budget_exhausted",
            "1 while the SLO's error budget is spent, else 0.",
            "gauge",
        )
        recent_bad = MetricFamily(
            "slo_bad_events_recent",
            "Bad events since the last scrape (alert signal; "
            "self-resolves on the next quiet scrape).",
            "gauge",
        )

        for slo in self._manager.slos():
            labels = {SLO_LABEL: slo.name}
            snap = self._manager.collector(slo.name).snapshot()
            budget = self._manager.budget(slo.name)
            good.add(snap.good, **labels)
            total.add(snap.total, **labels)
            objective.add(slo.objective, **labels)
            remaining.add(budget.remaining_ratio(), **labels)
            exhausted.add(1.0 if budget.exhausted else 0.0, **labels)
            recent_bad.add(
                self._recent_bad.observe(slo.name, snap.bad), **labels
            )

        self.scrapes_served += 1
        return render_exposition(
            [good, total, objective, remaining, exhausted, recent_bad]
        )
