"""repro.patterns — online log-template mining and pattern-aware alerting.

Reproduces Loki's pattern ingester / ``detected_patterns`` capability:
a Drain-style online miner clusters the ingest stream into templates
(``repro.patterns.miner``), a period-partitioned store persists the
per-stream pattern blocks beside the cold chunks
(``repro.patterns.store``), and a pattern-aware ruler turns template
rates into ``PatternBurst`` / ``NovelErrorPattern`` alerts whose
``pattern_id`` label lets Alertmanager collapse an alert storm into a
single grouped incident (``repro.patterns.ruler``).
"""
