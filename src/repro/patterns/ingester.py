"""Pattern ingester: tees the ingest stream into per-stream miners.

Loki's pattern ingester receives a copy of every push from the
distributor *before* the write path fans out; here the
:class:`~repro.omni.warehouse.OmniWarehouse` calls :meth:`observe` with
each accepted stream.  One :class:`~repro.patterns.miner.DrainMiner` is
kept per (tenant, stream) — templates never bleed across label sets or
tenants — and every mined line is recorded into the
:class:`~repro.patterns.store.PatternStore`.

The ingester is also the novelty detector: the first time a tenant
produces a given ``pattern_id`` it emits a :class:`NovelPattern` event,
flagged ``is_error`` when the seed line carries an error-class token
(token-level match, so ``error`` fires but ``terrorist`` does not).
The pattern ruler drains these events into ``NovelErrorPattern``
alerts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.patterns.miner import DrainConfig, DrainMiner
from repro.patterns.store import PatternStore

if TYPE_CHECKING:
    from repro.common.labels import LabelSet
    from repro.common.simclock import SimClock
    from repro.loki.model import LogEntry
    from repro.tempo.tracer import Tracer

#: Tokens (normalized: lowercased, stripped of punctuation) that mark a
#: template as error-class for NovelErrorPattern purposes.
ERROR_TOKENS = frozenset(
    {
        "error",
        "err",
        "fail",
        "failed",
        "failing",
        "failure",
        "fatal",
        "panic",
        "critical",
        "crit",
        "oom",
        "offline",
        "denied",
        "timeout",
        "exception",
        "unhealthy",
    }
)

_STRIP_CHARS = ".,:;!?()[]{}<>\"'"


def is_error_line(line: str) -> bool:
    """Token-level error classification of a raw log line."""
    for token in line.split():
        if token.strip(_STRIP_CHARS).lower() in ERROR_TOKENS:
            return True
    return False


@dataclass(frozen=True)
class NovelPattern:
    """A pattern id seen for the first time within a tenant."""

    tenant: str
    pattern_id: str
    template: str
    first_seen_ns: int
    exemplar: str
    labels: "LabelSet"
    is_error: bool


class PatternIngester:
    """Per-(tenant, stream) online miners over the ingest stream."""

    def __init__(
        self,
        clock: "SimClock",
        store: PatternStore,
        config: DrainConfig | None = None,
        tracer: "Tracer | None" = None,
        default_tenant: str = "ops",
    ) -> None:
        self._clock = clock
        self._store = store
        self._config = config or DrainConfig()
        self._tracer = tracer
        self._default_tenant = default_tenant
        self._miners: dict[tuple[str, "LabelSet"], DrainMiner] = {}
        self._seen: dict[str, set[str]] = {}
        #: Append-only novelty feed; the ruler consumes it by cursor.
        self.novel_events: list[NovelPattern] = []
        self.lines_observed = 0
        self.templates_created = 0
        self.novel_error_templates = 0

    @property
    def store(self) -> PatternStore:
        return self._store

    def observe(
        self,
        labels: "LabelSet",
        entries: "Iterable[LogEntry]",
        tenant: str | None = None,
    ) -> int:
        """Mine one accepted stream push; returns lines mined."""
        tenant = tenant or labels.get("tenant", "") or self._default_tenant
        miner = self._miners.get((tenant, labels))
        if miner is None:
            miner = DrainMiner(self._config)
            self._miners[(tenant, labels)] = miner
        seen = self._seen.setdefault(tenant, set())
        mined = 0
        started_ns = self._clock.now_ns
        for entry in entries:
            result = miner.add_line(entry.line, entry.timestamp_ns)
            if result is None:
                continue
            cluster, created = result
            mined += 1
            self._store.observe(
                tenant,
                labels,
                cluster.pattern_id,
                cluster.template,
                entry.timestamp_ns,
                entry.line,
            )
            if created:
                self.templates_created += 1
            if cluster.pattern_id not in seen:
                seen.add(cluster.pattern_id)
                is_error = is_error_line(entry.line)
                if is_error:
                    self.novel_error_templates += 1
                self.novel_events.append(
                    NovelPattern(
                        tenant=tenant,
                        pattern_id=cluster.pattern_id,
                        template=cluster.template,
                        first_seen_ns=entry.timestamp_ns,
                        exemplar=entry.line,
                        labels=labels,
                        is_error=is_error,
                    )
                )
        self.lines_observed += mined
        if mined and self._tracer is not None and self._tracer.enabled:
            self._tracer.record(
                "patterns",
                "miner.observe",
                None,
                start_ns=started_ns,
                end_ns=self._clock.now_ns,
                attributes={
                    "tenant": tenant,
                    "lines": str(mined),
                },
            )
        return mined

    def compression_ratio(self) -> float:
        """Raw lines per distinct template — the triage leverage."""
        distinct = self._store.pattern_count()
        if distinct == 0:
            return 0.0
        return self.lines_observed / distinct

    @property
    def miner_count(self) -> int:
        return len(self._miners)

    def counters(self) -> dict[str, int]:
        return {
            "miners": len(self._miners),
            "lines_observed": self.lines_observed,
            "templates_created": self.templates_created,
            "novel_events": len(self.novel_events),
            "novel_error_templates": self.novel_error_templates,
        }
