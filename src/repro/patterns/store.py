"""Period-partitioned pattern blocks persisted beside the chunks.

Mirrors the bloom-block layout (:mod:`repro.queryx.bloom`): one
:class:`_PatternBlock` per (tenant, stream, index period), keyed in the
object store as ``patterns/{tenant}/{period:012d}/{fp:016x}.json.z``.
Blocks come from two producers:

* the **live** path — the pattern ingester calls :meth:`observe` per
  mined line, and the framework flushes dirty blocks on the shipper
  cadence; a live block is authoritative for its period and is never
  rebuilt;
* the **compactor** — for periods with no live block (a querier that
  restarted cold, or blocks lost with the process) it re-mines the
  merged chunk entries it already holds and persists the result, so the
  store-gateway can answer ``detected_patterns`` from object storage
  alone.

A compacted block records exactly which chunk keys it was mined from;
``needs_build`` requests a rebuild only when that coverage changed —
the same idempotence contract the bloom store uses.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.common.errors import ValidationError
from repro.common.jsonutil import dumps_compact, loads
from repro.common.labels import LabelSet, Matcher, matches_all
from repro.common.simclock import NANOS_PER_DAY
from repro.objstore.index import stream_fingerprint
from repro.objstore.objectstore import ObjectStoreUnavailable
from repro.patterns.miner import DrainConfig, DrainMiner

if TYPE_CHECKING:
    from repro.loki.model import LogEntry
    from repro.objstore.objectstore import ObjectStore
    from repro.tempo.tracer import Tracer

PATTERN_PREFIX = "patterns/"


def pattern_object_key(tenant: str, fingerprint: int, period: int) -> str:
    return f"{PATTERN_PREFIX}{tenant}/{period:012d}/{fingerprint:016x}.json.z"


@dataclass
class PatternRecord:
    """One template's aggregates within a single block."""

    pattern_id: str
    template: str
    count: int
    first_ts_ns: int
    last_ts_ns: int
    exemplar: str

    def to_obj(self) -> dict:
        return {
            "id": self.pattern_id,
            "tpl": self.template,
            "n": self.count,
            "first": self.first_ts_ns,
            "last": self.last_ts_ns,
            "ex": self.exemplar,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "PatternRecord":
        return cls(
            pattern_id=obj["id"],
            template=obj["tpl"],
            count=int(obj["n"]),
            first_ts_ns=int(obj["first"]),
            last_ts_ns=int(obj["last"]),
            exemplar=obj["ex"],
        )


@dataclass(frozen=True)
class DetectedPattern:
    """One row of a ``detected_patterns`` answer (merged across blocks)."""

    pattern_id: str
    template: str
    count: int
    first_ts_ns: int
    last_ts_ns: int
    exemplar: str
    streams: int


@dataclass
class _PatternBlock:
    tenant: str
    fingerprint: int
    labels: LabelSet
    period: int
    origin: str  # "live" | "compacted"
    chunk_keys: frozenset[str] | None = None
    records: dict[str, PatternRecord] = field(default_factory=dict)

    def to_obj(self) -> dict:
        records = [
            self.records[pid].to_obj() for pid in sorted(self.records)
        ]
        return {
            "tenant": self.tenant,
            "fp": self.fingerprint,
            "labels": self.labels.to_dict(),
            "period": self.period,
            "origin": self.origin,
            "keys": sorted(self.chunk_keys) if self.chunk_keys is not None else None,
            "records": records,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "_PatternBlock":
        keys = obj.get("keys")
        block = cls(
            tenant=obj["tenant"],
            fingerprint=int(obj["fp"]),
            labels=LabelSet(obj["labels"]),
            period=int(obj["period"]),
            origin=obj["origin"],
            chunk_keys=frozenset(keys) if keys is not None else None,
        )
        for rec_obj in obj["records"]:
            rec = PatternRecord.from_obj(rec_obj)
            block.records[rec.pattern_id] = rec
        return block


class PatternStore:
    """Pattern blocks: live mining sink, object-store persistence, and
    the ``detected_patterns`` query surface."""

    def __init__(
        self,
        store: "ObjectStore | None" = None,
        bucket: str = "loki",
        period_ns: int = NANOS_PER_DAY,
        config: DrainConfig | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if period_ns <= 0:
            raise ValidationError("period_ns must be positive")
        self._store = store
        self._bucket = bucket
        self._period_ns = period_ns
        self._config = config or DrainConfig()
        self._tracer = tracer
        self._blocks: dict[tuple[str, int, int], _PatternBlock] = {}
        self._dirty: set[tuple[str, int, int]] = set()
        self.lines_recorded = 0
        self.blocks_persisted_total = 0
        self.persist_failures = 0
        self.blocks_rebuilt_total = 0
        self.queries_served = 0

    # ------------------------------------------------------------------
    # Live path
    # ------------------------------------------------------------------

    def observe(
        self,
        tenant: str,
        labels: LabelSet,
        pattern_id: str,
        template: str,
        timestamp_ns: int,
        line: str,
    ) -> None:
        """Record one mined line into the live block for its period."""
        period = timestamp_ns // self._period_ns
        fp = stream_fingerprint(labels)
        key = (tenant, fp, period)
        block = self._blocks.get(key)
        if block is None or block.origin != "live":
            # Live data supersedes anything the compactor reconstructed.
            block = _PatternBlock(
                tenant=tenant,
                fingerprint=fp,
                labels=labels,
                period=period,
                origin="live",
            )
            self._blocks[key] = block
        record = block.records.get(pattern_id)
        if record is None:
            record = PatternRecord(
                pattern_id=pattern_id,
                template=template,
                count=0,
                first_ts_ns=timestamp_ns,
                last_ts_ns=timestamp_ns,
                exemplar=line,
            )
            block.records[pattern_id] = record
        record.count += 1
        record.template = template  # templates only widen over time
        record.first_ts_ns = min(record.first_ts_ns, timestamp_ns)
        record.last_ts_ns = max(record.last_ts_ns, timestamp_ns)
        self._dirty.add(key)
        self.lines_recorded += 1

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def query(
        self,
        matchers: Sequence[Matcher],
        start_ns: int,
        end_ns: int,
        tenant: str | None = None,
    ) -> list[DetectedPattern]:
        """Merged templates for streams matching ``matchers`` whose
        activity overlaps ``[start_ns, end_ns)``, busiest first."""
        if end_ns <= start_ns:
            raise ValidationError("query range must satisfy start < end")
        first_period = start_ns // self._period_ns
        last_period = (end_ns - 1) // self._period_ns
        merged: dict[str, dict] = {}
        for (blk_tenant, _fp, period), block in self._blocks.items():
            if tenant is not None and blk_tenant != tenant:
                continue
            if not first_period <= period <= last_period:
                continue
            if not matches_all(block.labels, matchers):
                continue
            for record in block.records.values():
                if record.last_ts_ns < start_ns or record.first_ts_ns >= end_ns:
                    continue
                row = merged.get(record.pattern_id)
                if row is None:
                    merged[record.pattern_id] = {
                        "template": record.template,
                        "count": record.count,
                        "first": record.first_ts_ns,
                        "last": record.last_ts_ns,
                        "exemplar": record.exemplar,
                        "streams": 1,
                    }
                    continue
                row["count"] += record.count
                if record.first_ts_ns < row["first"]:
                    row["first"] = record.first_ts_ns
                    row["exemplar"] = record.exemplar
                row["last"] = max(row["last"], record.last_ts_ns)
                row["streams"] += 1
        rows = [
            DetectedPattern(
                pattern_id=pid,
                template=row["template"],
                count=row["count"],
                first_ts_ns=row["first"],
                last_ts_ns=row["last"],
                exemplar=row["exemplar"],
                streams=row["streams"],
            )
            for pid, row in merged.items()
        ]
        rows.sort(key=lambda r: (-r.count, r.pattern_id))
        self.queries_served += 1
        if self._tracer is not None and self._tracer.enabled:
            now = self._tracer.now_ns
            self._tracer.record(
                "patterns",
                "patterns.query",
                None,
                start_ns=now,
                end_ns=now,
                attributes={
                    "matchers": str(len(matchers)),
                    "rows": str(len(rows)),
                },
            )
        return rows

    def counts_by_pattern(
        self, tenant: str | None = None
    ) -> dict[tuple[str, str], tuple[int, str]]:
        """Total count and current template per (tenant, pattern_id) —
        the ruler's rate source."""
        totals: dict[tuple[str, str], tuple[int, str]] = {}
        for (blk_tenant, _fp, _period), block in self._blocks.items():
            if tenant is not None and blk_tenant != tenant:
                continue
            for record in block.records.values():
                key = (blk_tenant, record.pattern_id)
                prev = totals.get(key)
                count = record.count + (prev[0] if prev else 0)
                totals[key] = (count, record.template)
        return totals

    def pattern_count(self, tenant: str | None = None) -> int:
        """Distinct pattern ids across all blocks."""
        seen: set[str] = set()
        for (blk_tenant, _fp, _period), block in self._blocks.items():
            if tenant is not None and blk_tenant != tenant:
                continue
            seen.update(block.records)
        return len(seen)

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def persist_dirty(self) -> int:
        """Flush dirty live blocks to the object store; returns blocks
        written.  Failed writes stay dirty and retry next flush."""
        if self._store is None:
            self._dirty.clear()
            return 0
        written = 0
        for key in sorted(self._dirty):
            try:
                self._persist(self._blocks[key])
            except ObjectStoreUnavailable:
                self.persist_failures += 1
                continue
            self._dirty.discard(key)
            written += 1
        return written

    def _persist(self, block: _PatternBlock) -> None:
        assert self._store is not None
        payload = zlib.compress(
            dumps_compact(block.to_obj()).encode(), level=6
        )
        self._store.put(
            self._bucket,
            pattern_object_key(block.tenant, block.fingerprint, block.period),
            payload,
        )
        self.blocks_persisted_total += 1

    def rebuild(self) -> int:
        """Cold start: repopulate every block from the object store."""
        if self._store is None:
            return 0
        self._blocks.clear()
        self._dirty.clear()
        loaded = 0
        for key in sorted(self._store.list_keys(self._bucket, PATTERN_PREFIX)):
            payload = self._store.get(self._bucket, key)
            block = _PatternBlock.from_obj(
                loads(zlib.decompress(payload).decode())
            )
            self._blocks[(block.tenant, block.fingerprint, block.period)] = block
            loaded += 1
        return loaded

    # ------------------------------------------------------------------
    # Compactor hooks (duck-typed like BloomStore)
    # ------------------------------------------------------------------

    def needs_build(
        self,
        tenant: str,
        labels: LabelSet,
        period: int,
        chunk_keys: Iterable[str],
    ) -> bool:
        block = self._blocks.get((tenant, stream_fingerprint(labels), period))
        if block is None:
            return True
        if block.origin == "live":
            # The live miner saw every line pre-flush; chunk coverage is
            # irrelevant to it.
            return False
        return block.chunk_keys != frozenset(chunk_keys)

    def build_block(
        self,
        tenant: str,
        labels: LabelSet,
        period: int,
        entries: "Sequence[LogEntry]",
        chunk_keys: Iterable[str],
    ) -> int:
        """Re-mine ``entries`` (the compactor's merged chunk contents)
        into a compacted block; returns the template count."""
        miner = DrainMiner(self._config)
        for entry in entries:
            miner.add_line(entry.line, entry.timestamp_ns)
        block = _PatternBlock(
            tenant=tenant,
            fingerprint=stream_fingerprint(labels),
            labels=labels,
            period=period,
            origin="compacted",
            chunk_keys=frozenset(chunk_keys),
        )
        for cluster in miner.clusters():
            block.records[cluster.pattern_id] = PatternRecord(
                pattern_id=cluster.pattern_id,
                template=cluster.template,
                count=cluster.count,
                first_ts_ns=cluster.first_seen_ns,
                last_ts_ns=cluster.last_seen_ns,
                exemplar=cluster.exemplar,
            )
        self._blocks[(block.tenant, block.fingerprint, block.period)] = block
        if self._store is not None:
            self._persist(block)
        self.blocks_rebuilt_total += 1
        return len(block.records)

    def counters(self) -> dict[str, int]:
        return {
            "blocks": len(self._blocks),
            "dirty": len(self._dirty),
            "lines_recorded": self.lines_recorded,
            "blocks_persisted_total": self.blocks_persisted_total,
            "persist_failures": self.persist_failures,
            "blocks_rebuilt_total": self.blocks_rebuilt_total,
            "queries_served": self.queries_served,
        }
