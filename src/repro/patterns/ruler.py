"""Pattern-aware ruler: EWMA burst baselines and novelty alerts.

A :class:`~repro.alerting.rules.RuleEvaluator` whose query language is
two pseudo-expressions over the pattern store:

* ``pattern_burst`` — one sample per (tenant, pattern_id) whose current
  line rate is bursting: above the absolute storm floor
  (``min_burst_rate`` lines/s), or — once the baseline has warmed up —
  above ``burst_factor ×`` its EWMA rate.  The EWMA is frozen while a
  pattern bursts so the baseline cannot chase the storm and mask it.
* ``novel_error_pattern`` — one sample per never-before-seen error-class
  template, held active for ``novel_active_ns`` so the alert is visible
  and then self-resolves when the series disappears.  Templates first
  sighted within ``novel_bootstrap_ns`` of the ruler's birth are corpus
  cold-start, not novelty — with an empty template store *everything*
  is "never before seen".

Every emitted sample carries ``pattern_id``, which is the whole point:
Alertmanager groups on it, so a storm of thousands of identical lines —
across streams and ingesters — collapses into one incident with one
ServiceNow ticket, instead of one notification per line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.alerting.events import AlertEvent
from repro.alerting.rules import RuleEvaluator
from repro.common.errors import ValidationError
from repro.common.labels import LabelSet
from repro.common.simclock import NANOS_PER_SECOND, minutes
from repro.common.vector import Sample

if TYPE_CHECKING:
    from repro.common.simclock import SimClock
    from repro.patterns.ingester import NovelPattern, PatternIngester
    from repro.patterns.store import PatternStore
    from repro.tempo.tracer import Tracer

BURST_EXPR = "pattern_burst"
NOVEL_EXPR = "novel_error_pattern"

#: How much of a template to put in the ``pattern`` label — enough to
#: read in Slack, bounded so labels stay sane.
_TEMPLATE_LABEL_LEN = 96


@dataclass
class _Baseline:
    ewma: float | None = None
    last_count: int = 0
    last_eval_ns: int = 0
    evals: int = 0


@dataclass
class NovelDetection:
    """Ground truth for the bench: when a novel error template appeared
    and when the ruler noticed it."""

    pattern_id: str
    first_seen_ns: int
    detected_ns: int

    @property
    def latency_ns(self) -> int:
        return self.detected_ns - self.first_seen_ns


class PatternRuler(RuleEvaluator):
    """Evaluates pattern-rate rules against the store and ingester."""

    def __init__(
        self,
        clock: "SimClock",
        notifier: Callable[[AlertEvent], None],
        ingester: "PatternIngester",
        store: "PatternStore",
        cluster: str = "",
        ewma_alpha: float = 0.3,
        burst_factor: float = 8.0,
        min_burst_rate: float = 50.0,
        warmup_evals: int = 3,
        novel_active_ns: int = minutes(10),
        novel_bootstrap_ns: int = 0,
        tracer: "Tracer | None" = None,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValidationError("ewma_alpha must be in (0, 1]")
        if burst_factor <= 1.0:
            raise ValidationError("burst_factor must be > 1")
        if min_burst_rate <= 0.0:
            raise ValidationError("min_burst_rate must be positive")
        if warmup_evals < 1:
            raise ValidationError("warmup_evals must be >= 1")
        if novel_active_ns <= 0:
            raise ValidationError("novel_active_ns must be positive")
        if novel_bootstrap_ns < 0:
            raise ValidationError("novel_bootstrap_ns must be >= 0")
        super().__init__(clock, notifier, generator="pattern-ruler")
        self._ingester = ingester
        self._store = store
        self._cluster = cluster
        self._alpha = ewma_alpha
        self._burst_factor = burst_factor
        self._min_burst_rate = min_burst_rate
        self._warmup_evals = warmup_evals
        self._novel_active_ns = novel_active_ns
        self._novel_bootstrap_ns = novel_bootstrap_ns
        self._born_ns = clock.now_ns
        self._tracer = tracer
        self._baselines: dict[tuple[str, str], _Baseline] = {}
        self._bursting: set[tuple[str, str]] = set()
        self._last_burst_eval_ns: int | None = None
        self._novel_cursor = 0
        # (tenant, pattern_id) -> the NovelPattern event, kept active
        # until novel_active_ns elapses past first_seen.
        self._novel_active: dict[tuple[str, str], "NovelPattern"] = {}
        self.bursts_detected = 0
        self.novel_detected = 0
        self.active_bursts = 0
        self.novel_detections: list[NovelDetection] = []

    # ------------------------------------------------------------------
    # RuleEvaluator hooks
    # ------------------------------------------------------------------

    def _validate_expr(self, expr: str) -> None:
        if expr not in (BURST_EXPR, NOVEL_EXPR):
            raise ValidationError(
                f"pattern ruler only evaluates {BURST_EXPR!r} or "
                f"{NOVEL_EXPR!r}, got {expr!r}"
            )

    def _query(self, expr: str, time_ns: int) -> list[Sample]:
        if expr == BURST_EXPR:
            samples = self._burst_samples(time_ns)
        else:
            samples = self._novel_samples(time_ns)
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.record(
                "pattern-ruler",
                f"ruler.{expr}",
                None,
                start_ns=time_ns,
                end_ns=time_ns,
                attributes={"samples": str(len(samples))},
            )
        return samples

    # ------------------------------------------------------------------
    # Burst detection
    # ------------------------------------------------------------------

    def _burst_samples(self, now_ns: int) -> list[Sample]:
        samples: list[Sample] = []
        counts = self._store.counts_by_pattern()
        prev_eval_ns = self._last_burst_eval_ns
        self._last_burst_eval_ns = now_ns
        for key in sorted(counts):
            tenant, pattern_id = key
            total, template = counts[key]
            state = self._baselines.get(key)
            if state is None:
                if prev_eval_ns is None:
                    # Very first evaluation: no window to rate against —
                    # anchor and move on.
                    self._baselines[key] = _Baseline(
                        last_count=total, last_eval_ns=now_ns
                    )
                    continue
                # A template that did not exist at the previous
                # evaluation accumulated its whole count since then, so
                # that evaluation bounds its window: a brand-new storm
                # template trips the absolute floor on first sighting
                # (detection latency <= one evaluation interval).
                state = _Baseline(last_count=0, last_eval_ns=prev_eval_ns)
                self._baselines[key] = state
            delta = total - state.last_count
            dt = (now_ns - state.last_eval_ns) / NANOS_PER_SECOND
            state.last_count = total
            state.last_eval_ns = now_ns
            if dt <= 0.0:
                continue
            rate = delta / dt
            absolute_burst = rate >= self._min_burst_rate
            relative_burst = (
                state.evals >= self._warmup_evals
                and state.ewma is not None
                and rate >= self._burst_factor * max(state.ewma, 0.1)
                and rate >= 1.0
            )
            if absolute_burst or relative_burst:
                if key not in self._bursting:
                    self._bursting.add(key)
                    self.bursts_detected += 1
                samples.append(
                    Sample(
                        self._labels_for(tenant, pattern_id, template),
                        rate,
                        now_ns,
                    )
                )
            else:
                # Baseline only learns from non-burst traffic.
                self._bursting.discard(key)
                if state.ewma is None:
                    state.ewma = rate
                else:
                    state.ewma = (
                        self._alpha * rate + (1.0 - self._alpha) * state.ewma
                    )
                state.evals += 1
        self.active_bursts = len(samples)
        return samples

    def baseline_rate(self, tenant: str, pattern_id: str) -> float:
        state = self._baselines.get((tenant, pattern_id))
        if state is None or state.ewma is None:
            return 0.0
        return state.ewma

    # ------------------------------------------------------------------
    # Novelty detection
    # ------------------------------------------------------------------

    def _novel_samples(self, now_ns: int) -> list[Sample]:
        events = self._ingester.novel_events
        while self._novel_cursor < len(events):
            event = events[self._novel_cursor]
            self._novel_cursor += 1
            if not event.is_error:
                continue
            if (
                event.first_seen_ns - self._born_ns
                < self._novel_bootstrap_ns
            ):
                # Cold start: with an empty corpus every early template
                # is "never before seen".  Templates first sighted
                # inside the bootstrap window are corpus, not novelty.
                continue
            self._novel_active[(event.tenant, event.pattern_id)] = event
            self.novel_detected += 1
            self.novel_detections.append(
                NovelDetection(
                    pattern_id=event.pattern_id,
                    first_seen_ns=event.first_seen_ns,
                    detected_ns=now_ns,
                )
            )
        samples: list[Sample] = []
        expired = []
        for key, event in self._novel_active.items():
            if now_ns - event.first_seen_ns >= self._novel_active_ns:
                expired.append(key)
                continue
            samples.append(
                Sample(
                    self._labels_for(
                        event.tenant, event.pattern_id, event.template
                    ),
                    1.0,
                    now_ns,
                )
            )
        for key in expired:
            del self._novel_active[key]
        return samples

    # ------------------------------------------------------------------

    def _labels_for(
        self, tenant: str, pattern_id: str, template: str
    ) -> LabelSet:
        labels = {
            "pattern_id": pattern_id,
            "pattern": template[:_TEMPLATE_LABEL_LEN],
            "tenant": tenant,
        }
        if self._cluster:
            labels["cluster"] = self._cluster
        return LabelSet(labels)

    def counters(self) -> dict[str, int]:
        return {
            "bursts_detected": self.bursts_detected,
            "active_bursts": self.active_bursts,
            "novel_detected": self.novel_detected,
            "evaluations": self.evaluations,
        }
