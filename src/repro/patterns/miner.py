"""Online Drain-style log-template miner.

Implements the fixed-depth parse tree of Drain (He et al., ICWS'17), the
algorithm behind Loki's pattern ingester: an incoming line is routed by
its token count, then by its first few tokens (digit-bearing tokens
route through a wildcard branch so identifiers and counters never
explode the tree), landing in a leaf that holds a bounded set of
template clusters.  Within the leaf the line joins the most similar
cluster — similarity is the fraction of positions whose tokens match
exactly — and positions that disagree are widened to the ``<*>``
wildcard.  By construction every line matches the template of the
cluster it joined, and the total number of clusters is bounded by the
tree shape (see :meth:`DrainConfig.max_clusters`).

Cluster identities are content-derived: the pattern id is the mix64
finalizer over the FNV-1a hash of the *seed* template (the first line
with digits masked), so the same storm observed on different streams,
tenants, or simulation runs yields the same ``pattern_id`` — which is
what lets Alertmanager group a cross-stream storm into one incident.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.hashing import fnv1a_64, mix64

WILDCARD = "<*>"
# Overlong lines are clamped to ``max_length_tokens`` and tagged with a
# rest marker so stack traces / dumps of arbitrary length share one
# length group instead of minting one group per line length.
REST_MARKER = "<...>"
# Routing key used at internal nodes for positions past the end of a
# short line.  Real tokens come from str.split() and are never empty,
# so the empty string cannot collide with one.
_PAD_KEY = ""


@dataclass(frozen=True)
class DrainConfig:
    """Shape of the parse tree; every knob bounds the template count."""

    leading_tokens: int = 2
    sim_threshold: float = 0.5
    max_children: int = 8
    max_clusters_per_leaf: int = 16
    max_length_tokens: int = 40

    def __post_init__(self) -> None:
        if self.leading_tokens < 1:
            raise ValidationError("leading_tokens must be >= 1")
        if not 0.0 < self.sim_threshold <= 1.0:
            raise ValidationError("sim_threshold must be in (0, 1]")
        if self.max_children < 1:
            raise ValidationError("max_children must be >= 1")
        if self.max_clusters_per_leaf < 1:
            raise ValidationError("max_clusters_per_leaf must be >= 1")
        if self.max_length_tokens < 1:
            raise ValidationError("max_length_tokens must be >= 1")

    def max_clusters(self) -> int:
        """Hard bound on distinct clusters a single miner can create.

        One length group per token count in ``1..max_length_tokens``
        plus one for clamped overlong lines; each internal level admits
        at most ``max_children`` literal children plus the wildcard
        child; each leaf holds at most ``max_clusters_per_leaf``
        clusters.
        """
        leaves = (self.max_children + 1) ** self.leading_tokens
        return (self.max_length_tokens + 1) * leaves * self.max_clusters_per_leaf


def tokenize(line: str, config: DrainConfig) -> list[str] | None:
    """Split into the effective token sequence routed through the tree.

    Returns ``None`` for blank lines (nothing to mine).  Overlong lines
    are clamped and terminated with :data:`REST_MARKER`.
    """
    tokens = line.split()
    if not tokens:
        return None
    if len(tokens) > config.max_length_tokens:
        tokens = tokens[: config.max_length_tokens]
        tokens.append(REST_MARKER)
    return tokens


def _has_digit(token: str) -> bool:
    return any(ch.isdigit() for ch in token)


def _seed_template(tokens: list[str]) -> list[str]:
    """Mask digit-bearing tokens up front: sequence numbers, addresses
    and sector counts are parameters, never template structure."""
    return [WILDCARD if _has_digit(tok) else tok for tok in tokens]


def pattern_id_for(seed_tokens: list[str]) -> str:
    """Content-derived cluster id, stable across streams and runs."""
    digest = mix64(fnv1a_64(" ".join(seed_tokens).encode()))
    return format(digest, "016x")


def template_matches(template: str, line: str, config: DrainConfig) -> bool:
    """True iff ``line`` is an instance of ``template``."""
    tokens = tokenize(line, config)
    if tokens is None:
        return False
    ttokens = template.split(" ")
    if len(ttokens) != len(tokens):
        return False
    return all(t == WILDCARD or t == s for t, s in zip(ttokens, tokens))


@dataclass
class PatternCluster:
    """One mined template with its running aggregates."""

    pattern_id: str
    tokens: list[str]
    count: int = 0
    first_seen_ns: int = 0
    last_seen_ns: int = 0
    exemplar: str = ""

    @property
    def template(self) -> str:
        return " ".join(self.tokens)

    def _similarity(self, tokens: list[str]) -> float:
        """Fraction of positions matching exactly; wildcard positions
        earn no credit, so a template cannot dissolve into ``<*>`` by
        attracting everything."""
        exact = sum(1 for t, s in zip(self.tokens, tokens) if t == s)
        return exact / len(tokens)

    def _absorb(self, tokens: list[str], timestamp_ns: int) -> None:
        for i, tok in enumerate(tokens):
            if self.tokens[i] != tok and self.tokens[i] != WILDCARD:
                self.tokens[i] = WILDCARD
        self.count += 1
        self.first_seen_ns = min(self.first_seen_ns, timestamp_ns)
        self.last_seen_ns = max(self.last_seen_ns, timestamp_ns)


@dataclass
class _Node:
    children: dict[str, "_Node"] = field(default_factory=dict)
    clusters: list[PatternCluster] = field(default_factory=list)


class DrainMiner:
    """One online miner instance (per (tenant, stream) in the ingester)."""

    def __init__(self, config: DrainConfig | None = None) -> None:
        self.config = config or DrainConfig()
        self._root = _Node()
        self._clusters: list[PatternCluster] = []
        self.lines_mined = 0
        self.forced_merges = 0

    def add_line(
        self, line: str, timestamp_ns: int = 0
    ) -> tuple[PatternCluster, bool] | None:
        """Mine one line; returns ``(cluster, created)`` or ``None`` for
        blank input.  ``created`` is True when the line seeded a new
        cluster rather than joining an existing one."""
        tokens = tokenize(line, self.config)
        if tokens is None:
            return None
        self.lines_mined += 1
        leaf = self._route(tokens)
        cluster = self._best_match(leaf, tokens)
        if cluster is not None:
            cluster._absorb(tokens, timestamp_ns)
            return cluster, False
        if len(leaf.clusters) >= self.config.max_clusters_per_leaf:
            # Full leaf: force-merge into the closest cluster even below
            # the similarity threshold — boundedness beats purity.
            cluster = self._closest(leaf, tokens)
            cluster._absorb(tokens, timestamp_ns)
            self.forced_merges += 1
            return cluster, False
        seed = _seed_template(tokens)
        cluster = PatternCluster(
            pattern_id=pattern_id_for(seed),
            tokens=seed,
            count=1,
            first_seen_ns=timestamp_ns,
            last_seen_ns=timestamp_ns,
            exemplar=line,
        )
        leaf.clusters.append(cluster)
        self._clusters.append(cluster)
        return cluster, True

    def clusters(self) -> list[PatternCluster]:
        """All clusters in creation order (deterministic)."""
        return list(self._clusters)

    @property
    def cluster_count(self) -> int:
        return len(self._clusters)

    def _route(self, tokens: list[str]) -> _Node:
        # Level 0: length group.  Always admitted — lines of different
        # token counts must never share a leaf (similarity and widening
        # assume equal lengths), and tokenize() already bounds the
        # number of length groups to max_length_tokens + 1, so this
        # level needs no max_children folding.
        key = str(len(tokens))
        node = self._root.children.get(key)
        if node is None:
            node = _Node()
            self._root.children[key] = node
        # Levels 1..leading_tokens: leading tokens, digits masked.
        for i in range(self.config.leading_tokens):
            tok = tokens[i] if i < len(tokens) else _PAD_KEY
            key = WILDCARD if _has_digit(tok) else tok
            node = self._child(node, key)
        return node

    def _child(self, node: _Node, key: str) -> _Node:
        child = node.children.get(key)
        if child is not None:
            return child
        # The wildcard child is always admitted on top of the literal
        # budget; once literals are exhausted, new keys fold into it.
        if key != WILDCARD and len(node.children) >= self.config.max_children:
            return self._child(node, WILDCARD)
        child = _Node()
        node.children[key] = child
        return child

    def _best_match(
        self, leaf: _Node, tokens: list[str]
    ) -> PatternCluster | None:
        best = self._closest(leaf, tokens)
        if best is None:
            return None
        if best._similarity(tokens) >= self.config.sim_threshold:
            return best
        return None

    @staticmethod
    def _closest(leaf: _Node, tokens: list[str]) -> PatternCluster | None:
        best = None
        best_sim = -1.0
        for cluster in leaf.clusters:  # creation order breaks ties
            sim = cluster._similarity(tokens)
            if sim > best_sim:
                best, best_sim = cluster, sim
        return best
