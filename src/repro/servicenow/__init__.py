"""ServiceNow mock: the event-management and incident-management modules.

NERSC "only use their incident management module, and event management
module" (paper §III.D), so that is what this package implements, plus the
CMDB those modules consult:

* :mod:`repro.servicenow.cmdb` — configuration items (CIs) for Perlmutter
  assets, with containment relationships for impact analysis;
* :mod:`repro.servicenow.events` — SN Events as produced from
  Alertmanager notifications;
* :mod:`repro.servicenow.alerts` — correlation of events into SN Alerts
  (dedup by message key);
* :mod:`repro.servicenow.incidents` — incidents with the impact×urgency
  priority matrix and MTTR bookkeeping;
* :mod:`repro.servicenow.platform` — the platform facade plus the
  Alertmanager receiver adapter.
"""

from repro.servicenow.cmdb import CMDB, ConfigurationItem
from repro.servicenow.events import SnEvent, SnSeverity
from repro.servicenow.alerts import SnAlert, SnAlertState
from repro.servicenow.incidents import Incident, IncidentState, Priority
from repro.servicenow.platform import ServiceNowPlatform, ServiceNowReceiver

__all__ = [
    "CMDB",
    "ConfigurationItem",
    "SnEvent",
    "SnSeverity",
    "SnAlert",
    "SnAlertState",
    "Incident",
    "IncidentState",
    "Priority",
    "ServiceNowPlatform",
    "ServiceNowReceiver",
]
