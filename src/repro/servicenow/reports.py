"""Operational reporting over ServiceNow data.

The paper's framework promises "alerting prioritizing, prediction, and
reporting via single pane view dashboards" (§III).  This module produces
the reporting part: MTTR broken down by priority, incident volume by
category/CI class, alert flap analysis, and a text summary suitable for
a weekly operations review.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.common.simclock import NANOS_PER_SECOND
from repro.servicenow.incidents import IncidentState, Priority
from repro.servicenow.platform import ServiceNowPlatform


@dataclass(frozen=True)
class MttrRow:
    priority: Priority
    incidents: int
    resolved: int
    mttr_seconds: float | None


def mttr_by_priority(platform: ServiceNowPlatform) -> list[MttrRow]:
    """MTTR per priority band (unresolved incidents excluded)."""
    rows = []
    incidents = platform.incidents()
    for priority in Priority:
        mine = [i for i in incidents if i.priority is priority]
        if not mine:
            continue
        durations = [
            d for i in mine if (d := i.time_to_resolve_ns()) is not None
        ]
        rows.append(
            MttrRow(
                priority=priority,
                incidents=len(mine),
                resolved=len(durations),
                mttr_seconds=(
                    sum(durations) / len(durations) / NANOS_PER_SECOND
                    if durations
                    else None
                ),
            )
        )
    return rows


def incident_volume_by_ci_class(platform: ServiceNowPlatform) -> dict[str, int]:
    """How many incidents hit each CMDB CI class (compute vs network...)."""
    counts: Counter[str] = Counter()
    for incident in platform.incidents():
        if platform.cmdb.exists(incident.ci_name):
            counts[platform.cmdb.get(incident.ci_name).ci_class] += 1
        else:
            counts["<unmapped>"] += 1
    return dict(sorted(counts.items()))


def flapping_alerts(platform: ServiceNowPlatform, min_reopens: int = 2) -> list[str]:
    """Alerts that closed and reopened at least ``min_reopens`` times —
    the chronic conditions worth an engineering fix, not another page."""
    out = []
    for alert in platform.alerts():
        reopens = sum(
            1 for e in alert.events if not e.is_clear
        ) - 1  # first open is not a re-open
        closes = sum(1 for e in alert.events if e.is_clear)
        if min(reopens, closes) >= min_reopens:
            out.append(alert.number)
    return out


def operations_summary(platform: ServiceNowPlatform) -> str:
    """The weekly-review text report."""
    funnel = platform.funnel()
    lines = [
        "=== Operations summary ===",
        f"events received:   {funnel['events']}",
        f"correlated alerts: {funnel['alerts']}",
        f"incidents opened:  {funnel['incidents']}",
        "",
        f"{'priority':<10} {'incidents':>9} {'resolved':>9} {'mttr_s':>10}",
    ]
    for row in mttr_by_priority(platform):
        mttr = f"{row.mttr_seconds:,.0f}" if row.mttr_seconds is not None else "-"
        lines.append(
            f"P{row.priority.value:<9} {row.incidents:>9} {row.resolved:>9} "
            f"{mttr:>10}"
        )
    by_class = incident_volume_by_ci_class(platform)
    if by_class:
        lines.append("")
        lines.append("incidents by CI class:")
        for ci_class, count in by_class.items():
            lines.append(f"  {ci_class:<22} {count}")
    open_incidents = platform.incidents(IncidentState.NEW) + platform.incidents(
        IncidentState.IN_PROGRESS
    )
    lines.append("")
    lines.append(f"open incidents: {len(open_incidents)}")
    for incident in sorted(open_incidents, key=lambda i: i.number)[:10]:
        lines.append(f"  {incident.number} P{incident.priority.value} "
                     f"{incident.short_description}")
    flappers = flapping_alerts(platform)
    if flappers:
        lines.append("")
        lines.append(f"flapping alerts (chronic): {', '.join(flappers)}")
    return "\n".join(lines)
