"""SN Alerts: correlated groups of SN Events.

Events sharing a ``message_key`` collapse into one alert whose severity
tracks the worst non-clear event; a CLEAR event closes the alert (and
reopens it if the condition returns).  This is the second noise-reduction
stage after Alertmanager grouping — bench C7 measures the funnel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.servicenow.events import SnEvent, SnSeverity


class SnAlertState(enum.Enum):
    OPEN = "open"
    REOPENED = "reopened"
    CLOSED = "closed"


@dataclass
class SnAlert:
    """One row of the ``em_alert`` table."""

    number: str  # e.g. "ALERT0000042"
    message_key: str
    node: str
    metric_name: str
    severity: SnSeverity
    state: SnAlertState
    opened_at_ns: int
    closed_at_ns: int | None = None
    events: list[SnEvent] = field(default_factory=list)
    incident_number: str | None = None

    def absorb(self, event: SnEvent) -> None:
        """Fold one correlated event into this alert."""
        self.events.append(event)
        if event.is_clear:
            if self.state is not SnAlertState.CLOSED:
                self.state = SnAlertState.CLOSED
                self.closed_at_ns = event.time_ns
            return
        if self.state is SnAlertState.CLOSED:
            self.state = SnAlertState.REOPENED
            self.closed_at_ns = None
        # Severity escalates to the worst (numerically lowest non-clear).
        if self.severity is SnSeverity.CLEAR or event.severity < self.severity:
            self.severity = event.severity

    @property
    def is_active(self) -> bool:
        return self.state is not SnAlertState.CLOSED

    def event_count(self) -> int:
        return len(self.events)
