"""ServiceNow service maps: the CMDB-driven service topology view.

Paper §III.D: "service maps employ discovery and infrastructure
information in CMDB for creating an accurate and complete tag based map
of all applications, virtual systems, underlying network, databases,
servers and other IT components that supports the service. Furthermore,
the automation of the service mapping facilitates not only a user
interface illustrating an accurate service-level relationship but also
adaptation of the service maps in real-time."

:class:`ServiceMap` walks the CMDB containment tree under a service CI
and overlays live alert state, so the rendered map shows — in real time —
which components are degraded and how far the impact propagates up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import NotFoundError
from repro.servicenow.alerts import SnAlert
from repro.servicenow.cmdb import CMDB, ConfigurationItem
from repro.servicenow.events import SnSeverity


@dataclass
class MapNode:
    """One CI in the rendered map with its live status."""

    ci: ConfigurationItem
    status: SnSeverity  # worst of own alerts and children (CLEAR = healthy)
    own_alerts: list[SnAlert] = field(default_factory=list)
    children: list["MapNode"] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return self.status is SnSeverity.CLEAR

    def degraded_descendants(self) -> list["MapNode"]:
        out = []
        stack = list(self.children)
        while stack:
            node = stack.pop()
            if node.own_alerts:
                out.append(node)
            stack.extend(node.children)
        return sorted(out, key=lambda n: n.ci.name)


class ServiceMap:
    """Builds and renders the live map for one service CI."""

    def __init__(self, cmdb: CMDB, service_name: str) -> None:
        if not cmdb.exists(service_name):
            raise NotFoundError(f"no service CI named {service_name}")
        self._cmdb = cmdb
        self.service_name = service_name

    def build(self, alerts: list[SnAlert]) -> MapNode:
        """Overlay active alerts onto the containment tree.

        Status propagates upward: a node's status is the worst severity
        among its own active alerts and its children's statuses — the
        "service impact analysis" the CMDB exists for.
        """
        by_node: dict[str, list[SnAlert]] = {}
        for alert in alerts:
            if alert.is_active:
                by_node.setdefault(alert.node, []).append(alert)
        return self._build_node(self._cmdb.get(self.service_name), by_node)

    def _build_node(
        self, ci: ConfigurationItem, by_node: dict[str, list[SnAlert]]
    ) -> MapNode:
        children = [
            self._build_node(child, by_node)
            for child in self._cmdb.children_of(ci.name)
        ]
        children.sort(key=lambda n: n.ci.name)
        own = sorted(by_node.get(ci.name, []), key=lambda a: a.number)
        # Worst = numerically lowest non-clear severity (1 = critical).
        candidates = [a.severity for a in own if a.severity is not SnSeverity.CLEAR]
        candidates += [c.status for c in children if c.status is not SnSeverity.CLEAR]
        status = min(candidates) if candidates else SnSeverity.CLEAR
        return MapNode(ci=ci, status=status, own_alerts=own, children=children)

    def render(self, alerts: list[SnAlert], collapse_healthy: bool = True) -> str:
        """ASCII tree of the service; healthy subtrees may be summarised."""
        root = self.build(alerts)
        lines: list[str] = []
        self._render_node(root, "", lines, collapse_healthy)
        return "\n".join(lines)

    def _render_node(
        self, node: MapNode, indent: str, lines: list[str], collapse: bool
    ) -> None:
        marker = "OK " if node.healthy else f"[{node.status.name}] "
        suffix = ""
        if node.own_alerts:
            suffix = " ← " + ", ".join(a.number for a in node.own_alerts)
        lines.append(f"{indent}{marker}{node.ci.name} ({node.ci.ci_class}){suffix}")
        healthy_children = [c for c in node.children if c.healthy]
        sick_children = [c for c in node.children if not c.healthy]
        for child in sick_children:
            self._render_node(child, indent + "  ", lines, collapse)
        if collapse and healthy_children:
            lines.append(f"{indent}  OK ... {len(healthy_children)} healthy "
                         "component(s)")
        elif healthy_children:
            for child in healthy_children:
                self._render_node(child, indent + "  ", lines, collapse)
