"""The ServiceNow platform facade and its Alertmanager adapter.

Implements the paper's §IV pipeline tail: Alertmanager notification →
SN Events → correlated SN Alerts → automated response actions (incident
creation for qualifying severities).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import NotFoundError
from repro.common.simclock import SimClock
from repro.alerting.events import AlertState
from repro.alerting.receivers import Notification
from repro.servicenow.alerts import SnAlert, SnAlertState
from repro.servicenow.cmdb import CMDB
from repro.servicenow.events import SnEvent, SnSeverity
from repro.servicenow.incidents import (
    Incident,
    IncidentState,
    PRIORITY_MATRIX,
    impact_urgency_for,
)


@dataclass(frozen=True)
class EventRule:
    """Automated-response rule: which alerts earn an incident."""

    max_severity: SnSeverity = SnSeverity.MINOR  # this severity or worse
    auto_assign_to: str | None = None


class ServiceNowPlatform:
    """Event Management + Incident Management over a CMDB."""

    def __init__(
        self,
        clock: SimClock,
        cmdb: CMDB | None = None,
        event_rule: EventRule | None = None,
    ) -> None:
        self._clock = clock
        self.cmdb = cmdb or CMDB()
        self._event_rule = event_rule or EventRule()
        self.events: list[SnEvent] = []
        self._alerts_by_key: dict[str, SnAlert] = {}
        self._alerts: list[SnAlert] = []
        self._incidents: dict[str, Incident] = {}
        self._alert_counter = 0
        self._incident_counter = 0

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def process_event(self, event: SnEvent) -> SnAlert:
        """Record an event, correlate it and apply automated responses."""
        self.events.append(event)
        alert = self._alerts_by_key.get(event.message_key)
        if alert is None:
            return self._new_alert(event)
        alert.absorb(event)
        self._apply_rules(alert)
        return alert

    def _new_alert(self, event: SnEvent) -> SnAlert:
        self._alert_counter += 1
        alert = SnAlert(
            number=f"ALERT{self._alert_counter:07d}",
            message_key=event.message_key,
            node=event.node,
            metric_name=event.metric_name,
            severity=event.severity,
            state=SnAlertState.CLOSED if event.is_clear else SnAlertState.OPEN,
            opened_at_ns=event.time_ns,
            closed_at_ns=event.time_ns if event.is_clear else None,
        )
        alert.events.append(event)
        self._alerts_by_key[event.message_key] = alert
        self._alerts.append(alert)
        if not event.is_clear:
            self._apply_rules(alert)
        return alert

    def _apply_rules(self, alert: SnAlert) -> None:
        if not alert.is_active or alert.incident_number is not None:
            return
        if alert.severity <= self._event_rule.max_severity:
            incident = self.open_incident(
                short_description=f"[{alert.severity.name}] {alert.metric_name} "
                f"on {alert.node}",
                ci_name=alert.node,
                severity=alert.severity,
                alert_number=alert.number,
            )
            alert.incident_number = incident.number
            if self._event_rule.auto_assign_to:
                incident.assign(self._event_rule.auto_assign_to)

    # ------------------------------------------------------------------
    # Incidents
    # ------------------------------------------------------------------
    def open_incident(
        self,
        short_description: str,
        ci_name: str,
        severity: SnSeverity,
        alert_number: str | None = None,
    ) -> Incident:
        if self.cmdb and len(self.cmdb) and not self.cmdb.exists(ci_name):
            # Unknown CIs are allowed but flagged, as real SN would log.
            pass
        impact, urgency = impact_urgency_for(severity)
        self._incident_counter += 1
        incident = Incident(
            number=f"INC{self._incident_counter:07d}",
            short_description=short_description,
            ci_name=ci_name,
            priority=PRIORITY_MATRIX[(impact, urgency)],
            opened_at_ns=self._clock.now_ns,
            alert_number=alert_number,
        )
        self._incidents[incident.number] = incident
        return incident

    def incident(self, number: str) -> Incident:
        try:
            return self._incidents[number]
        except KeyError:
            raise NotFoundError(f"no incident {number}") from None

    def incidents(self, state: IncidentState | None = None) -> list[Incident]:
        out = sorted(self._incidents.values(), key=lambda i: i.number)
        if state is not None:
            out = [i for i in out if i.state is state]
        return out

    def alerts(self, active_only: bool = False) -> list[SnAlert]:
        out = list(self._alerts)
        if active_only:
            out = [a for a in out if a.is_active]
        return out

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def mttr_ns(self) -> float | None:
        """Mean time to resolve over resolved incidents; None if none."""
        durations = [
            d
            for i in self._incidents.values()
            if (d := i.time_to_resolve_ns()) is not None
        ]
        if not durations:
            return None
        return sum(durations) / len(durations)

    def funnel(self) -> dict[str, int]:
        """Events → alerts → incidents counts (bench C7)."""
        return {
            "events": len(self.events),
            "alerts": len(self._alerts),
            "incidents": len(self._incidents),
        }


class ServiceNowReceiver:
    """Alertmanager receiver translating notifications into SN Events.

    The correlation message key is the alert's full label set, so the same
    failing series maps onto the same SN Alert across repeats — the
    dedup behaviour event management is deployed for.
    """

    #: Labels consulted, in order, to find the affected CI.  ``cluster``
    #: is the last resort: service-scoped alerts (e.g. the SLO plane's
    #: burn-rate pages) have no component CI, so the incident lands on
    #: the cluster's own CMDB entry rather than "unknown".
    DEFAULT_CI_LABELS = (
        "xname", "Context", "hostname", "cdu", "pdu", "fs", "cluster",
    )

    def __init__(
        self,
        platform: ServiceNowPlatform,
        name: str = "servicenow",
        source: str = "alertmanager",
        ci_labels: tuple[str, ...] = DEFAULT_CI_LABELS,
    ) -> None:
        self.name = name
        self._platform = platform
        self._source = source
        self._ci_labels = ci_labels

    def notify(self, notification: Notification) -> None:
        for alert in notification.alerts:
            severity = (
                SnSeverity.CLEAR
                if alert.state is AlertState.RESOLVED
                else SnSeverity.from_label(alert.severity)
            )
            node = next(
                (
                    value
                    for name in self._ci_labels
                    if (value := alert.labels.get(name, ""))
                ),
                "unknown",
            )
            description = alert.annotations.get("summary", "") or alert.name
            key_parts = ",".join(
                f"{k}={v}" for k, v in alert.labels.items_tuple()
            )
            event = SnEvent(
                source=self._source,
                node=node,
                metric_name=alert.name,
                severity=severity,
                message_key=key_parts,
                description=description,
                time_ns=notification.timestamp_ns,
                additional_info=dict(alert.annotations),
            )
            self._platform.process_event(event)
