"""SN Events: the raw intake of ServiceNow Event Management.

"Alerts are transformed into ServiceNow (SN) 'Events', which are
correlated and grouped into SN 'Alerts'" (paper §IV).  An event's
``message_key`` drives that correlation: events sharing a key belong to
the same underlying condition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ValidationError


class SnSeverity(enum.IntEnum):
    """ServiceNow event severity scale (0 = clear, 1 = critical)."""

    CLEAR = 0
    CRITICAL = 1
    MAJOR = 2
    MINOR = 3
    WARNING = 4
    INFO = 5

    @classmethod
    def from_label(cls, severity: str) -> "SnSeverity":
        """Map Prometheus-style severity label values onto the SN scale."""
        return {
            "critical": cls.CRITICAL,
            "major": cls.MAJOR,
            "error": cls.MAJOR,
            "minor": cls.MINOR,
            "warning": cls.WARNING,
            "info": cls.INFO,
            "none": cls.INFO,
            "ok": cls.CLEAR,
            "resolved": cls.CLEAR,
        }.get(severity.lower(), cls.WARNING)


@dataclass(frozen=True)
class SnEvent:
    """One row of the ``em_event`` table."""

    source: str  # monitoring source, e.g. "alertmanager"
    node: str  # CI name (xname) the event is about
    metric_name: str  # what was measured / which rule
    severity: SnSeverity
    message_key: str  # correlation key
    description: str
    time_ns: int
    additional_info: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.message_key:
            raise ValidationError("event needs a message key for correlation")
        if not self.source:
            raise ValidationError("event needs a source")

    @property
    def is_clear(self) -> bool:
        return self.severity is SnSeverity.CLEAR
