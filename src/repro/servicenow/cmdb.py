"""The CMDB: configuration items and containment relationships.

Paper §III.D: ServiceNow "employs a configuration management database
(CMDB), that maintains accurate and up-to-date records of the IT assets"
and "CMDB and CI still needed to be configured using Perlmutter assets
only" — so :func:`build_from_cluster` populates exactly that: cabinets,
chassis, nodes and switches of the synthetic Perlmutter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import NotFoundError, ValidationError
from repro.cluster.topology import Cluster


@dataclass(frozen=True)
class ConfigurationItem:
    """One CI row."""

    sys_id: str
    name: str  # xname for hardware CIs
    ci_class: str  # cmdb_ci_cabinet / _chassis / _computer / _netgear / _service
    parent_sys_id: str | None = None


class CMDB:
    """CI registry with containment traversal (service impact analysis)."""

    def __init__(self) -> None:
        self._by_id: dict[str, ConfigurationItem] = {}
        self._by_name: dict[str, str] = {}
        self._children: dict[str, list[str]] = {}
        self._counter = 0

    def add(
        self, name: str, ci_class: str, parent: str | None = None
    ) -> ConfigurationItem:
        """Register a CI; ``parent`` is the parent CI's *name*."""
        if not name:
            raise ValidationError("CI needs a name")
        if name in self._by_name:
            raise ValidationError(f"duplicate CI name: {name}")
        parent_sys_id = None
        if parent is not None:
            parent_sys_id = self._by_name.get(parent)
            if parent_sys_id is None:
                raise NotFoundError(f"parent CI not found: {parent}")
        self._counter += 1
        sys_id = f"ci{self._counter:08d}"
        ci = ConfigurationItem(sys_id, name, ci_class, parent_sys_id)
        self._by_id[sys_id] = ci
        self._by_name[name] = sys_id
        if parent_sys_id is not None:
            self._children.setdefault(parent_sys_id, []).append(sys_id)
        return ci

    def get(self, name: str) -> ConfigurationItem:
        sys_id = self._by_name.get(name)
        if sys_id is None:
            raise NotFoundError(f"no CI named {name}")
        return self._by_id[sys_id]

    def exists(self, name: str) -> bool:
        return name in self._by_name

    def children_of(self, name: str) -> list[ConfigurationItem]:
        ci = self.get(name)
        return [self._by_id[cid] for cid in self._children.get(ci.sys_id, [])]

    def descendants_of(self, name: str) -> list[ConfigurationItem]:
        """Every CI contained (transitively) in ``name`` — the blast radius
        a service-impact analysis reports."""
        out: list[ConfigurationItem] = []
        stack = [self.get(name).sys_id]
        while stack:
            current = stack.pop()
            for child_id in self._children.get(current, []):
                out.append(self._by_id[child_id])
                stack.append(child_id)
        return sorted(out, key=lambda ci: ci.name)

    def __len__(self) -> int:
        return len(self._by_id)

    def by_class(self, ci_class: str) -> list[ConfigurationItem]:
        return sorted(
            (ci for ci in self._by_id.values() if ci.ci_class == ci_class),
            key=lambda ci: ci.name,
        )


def build_from_cluster(cluster: Cluster, service_name: str = "perlmutter") -> CMDB:
    """Populate a CMDB from the synthetic machine's topology."""
    cmdb = CMDB()
    cmdb.add(service_name, "cmdb_ci_service")
    for cab_x, cab in sorted(cluster.cabinets.items()):
        cmdb.add(str(cab_x), "cmdb_ci_cabinet", parent=service_name)
        for ch_x in cab.chassis:
            cmdb.add(str(ch_x), "cmdb_ci_chassis", parent=str(cab_x))
    for node_x in sorted(cluster.nodes):
        cmdb.add(str(node_x), "cmdb_ci_computer", parent=str(node_x.chassis_xname()))
    for sw_x in sorted(cluster.switches):
        cmdb.add(str(sw_x), "cmdb_ci_netgear", parent=str(sw_x.chassis_xname()))
    return cmdb
