"""Incidents: tickets with the SN impact×urgency priority matrix and MTTR.

"ServiceNow is the incident management platform adopted by NERSC"
(paper §III.D); the framework's goal is "reducing Mean Time to Repair
(MTTR)" (§I), so incidents record opened/resolved timestamps and the
platform reports MTTR aggregates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import StateError, ValidationError
from repro.servicenow.events import SnSeverity


class IncidentState(enum.Enum):
    NEW = "new"
    IN_PROGRESS = "in_progress"
    ON_HOLD = "on_hold"
    RESOLVED = "resolved"
    CLOSED = "closed"


class Impact(enum.IntEnum):
    HIGH = 1
    MEDIUM = 2
    LOW = 3


class Urgency(enum.IntEnum):
    HIGH = 1
    MEDIUM = 2
    LOW = 3


class Priority(enum.IntEnum):
    """P1 (critical) .. P5 (planning), from the standard SN matrix."""

    CRITICAL = 1
    HIGH = 2
    MODERATE = 3
    LOW = 4
    PLANNING = 5


#: The standard ServiceNow priority lookup: (impact, urgency) -> priority.
PRIORITY_MATRIX: dict[tuple[Impact, Urgency], Priority] = {
    (Impact.HIGH, Urgency.HIGH): Priority.CRITICAL,
    (Impact.HIGH, Urgency.MEDIUM): Priority.HIGH,
    (Impact.HIGH, Urgency.LOW): Priority.MODERATE,
    (Impact.MEDIUM, Urgency.HIGH): Priority.HIGH,
    (Impact.MEDIUM, Urgency.MEDIUM): Priority.MODERATE,
    (Impact.MEDIUM, Urgency.LOW): Priority.LOW,
    (Impact.LOW, Urgency.HIGH): Priority.MODERATE,
    (Impact.LOW, Urgency.MEDIUM): Priority.LOW,
    (Impact.LOW, Urgency.LOW): Priority.PLANNING,
}


def impact_urgency_for(severity: SnSeverity) -> tuple[Impact, Urgency]:
    """Default mapping from alert severity to the matrix inputs."""
    if severity is SnSeverity.CRITICAL:
        return Impact.HIGH, Urgency.HIGH
    if severity is SnSeverity.MAJOR:
        return Impact.HIGH, Urgency.MEDIUM
    if severity is SnSeverity.MINOR:
        return Impact.MEDIUM, Urgency.MEDIUM
    if severity is SnSeverity.WARNING:
        return Impact.MEDIUM, Urgency.LOW
    return Impact.LOW, Urgency.LOW


@dataclass
class Incident:
    """One row of the ``incident`` table."""

    number: str  # e.g. "INC0000123"
    short_description: str
    ci_name: str
    priority: Priority
    opened_at_ns: int
    state: IncidentState = IncidentState.NEW
    assigned_to: str | None = None
    resolved_at_ns: int | None = None
    closed_at_ns: int | None = None
    work_notes: list[str] = field(default_factory=list)
    alert_number: str | None = None

    # -- lifecycle -----------------------------------------------------------
    def assign(self, who: str) -> None:
        if self.state in (IncidentState.RESOLVED, IncidentState.CLOSED):
            raise StateError(f"{self.number} is {self.state.value}; cannot assign")
        if not who:
            raise ValidationError("assignee cannot be empty")
        self.assigned_to = who
        if self.state is IncidentState.NEW:
            self.state = IncidentState.IN_PROGRESS

    def hold(self, note: str = "") -> None:
        if self.state is not IncidentState.IN_PROGRESS:
            raise StateError(f"{self.number} must be in progress to hold")
        self.state = IncidentState.ON_HOLD
        if note:
            self.work_notes.append(note)

    def resume(self) -> None:
        if self.state is not IncidentState.ON_HOLD:
            raise StateError(f"{self.number} is not on hold")
        self.state = IncidentState.IN_PROGRESS

    def resolve(self, now_ns: int, note: str = "") -> None:
        if self.state in (IncidentState.RESOLVED, IncidentState.CLOSED):
            raise StateError(f"{self.number} already {self.state.value}")
        if now_ns < self.opened_at_ns:
            raise ValidationError("cannot resolve before opening")
        self.state = IncidentState.RESOLVED
        self.resolved_at_ns = now_ns
        if note:
            self.work_notes.append(note)

    def close(self, now_ns: int) -> None:
        if self.state is not IncidentState.RESOLVED:
            raise StateError(f"{self.number} must be resolved before closing")
        self.state = IncidentState.CLOSED
        self.closed_at_ns = now_ns

    # -- metrics ---------------------------------------------------------------
    def time_to_resolve_ns(self) -> int | None:
        """MTTR contribution: opened → resolved, or None if unresolved."""
        if self.resolved_at_ns is None:
            return None
        return self.resolved_at_ns - self.opened_at_ns
