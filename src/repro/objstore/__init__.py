"""repro.objstore — Loki's tiered chunk storage, reproduced.

The hot tier (ingester memory, optionally the RF-3 ring) keeps only
recent, open-or-just-sealed chunks; everything sealed ships to a
simulated S3-like :class:`ObjectStore` through the :class:`ChunkShipper`
and its period-partitioned :class:`ShipperIndex`.  A :class:`Compactor`
merges small objects, deduplicates what replication and WAL replay
multiplied, and applies retention / delete requests at chunk
granularity; a :class:`StoreGateway` serves historical selects straight
from the object store.  :class:`TieredLokiStore` snaps the pieces behind
the ordinary store surface so the LogQL engine, Promtail, the ruler and
the retention manager run unchanged with the tier on.
"""

from repro.objstore.compactor import (
    CompactionPolicy,
    CompactionResult,
    Compactor,
    DeleteRequest,
)
from repro.objstore.gateway import StoreGateway
from repro.objstore.index import ChunkRef, ShipperIndex, chunk_object_key
from repro.objstore.objectstore import (
    ObjectStore,
    ObjectStoreConfig,
    ObjectStoreUnavailable,
)
from repro.objstore.shipper import HEARTBEAT_KEY, ChunkShipper, FlushResult
from repro.objstore.tiered import TieredLokiStore

__all__ = [
    "ChunkRef",
    "ChunkShipper",
    "CompactionPolicy",
    "CompactionResult",
    "Compactor",
    "DeleteRequest",
    "FlushResult",
    "HEARTBEAT_KEY",
    "ObjectStore",
    "ObjectStoreConfig",
    "ObjectStoreUnavailable",
    "ShipperIndex",
    "StoreGateway",
    "TieredLokiStore",
    "chunk_object_key",
]
