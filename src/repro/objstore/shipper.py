"""The chunk shipper: sealed chunks leave memory for the object store.

Each flush walks every live store (the single ``LokiStore``, or every
active replica of the RF-3 ring), uploads each sealed chunk's compressed
payload under a content-addressed key, registers a :class:`ChunkRef` in
the shipper index, and only *then* drops the resident copy — a chunk is
never memory-released before its bytes are durable cold.  Because the
key is a content hash and replicas seal byte-identical chunks, RF-3
uploads collapse to one object per logical chunk: replicas two and three
count as dedups and are dropped without a second PUT.

An object-store outage aborts the flush mid-way: whatever was not yet
uploaded stays resident and the failure is counted (the
``ObjstoreFlushStalled`` alert's signal).  A flush with nothing to ship
still probes the backend with a heartbeat PUT, so a stalled tier is
detected even when the cluster is idle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.simclock import SimClock
from repro.loki.store import LokiStore
from repro.objstore.index import ChunkRef, ShipperIndex, chunk_object_key
from repro.objstore.objectstore import ObjectStore, ObjectStoreUnavailable
from repro.ring.cluster import RingLokiCluster
from repro.tempo.model import SpanStatus
from repro.tempo.tracer import Tracer
from repro.tenancy.limits import DEFAULT_TENANT, TENANT_LABEL

HEARTBEAT_KEY = "uploader/heartbeat"


@dataclass
class FlushResult:
    """One flush cycle's outcome (all counts are this-cycle, not totals)."""

    ok: bool = True
    chunks_shipped: int = 0
    chunks_deduped: int = 0
    bytes_shipped: int = 0
    bytes_freed: int = 0
    index_files: int = 0


class ChunkShipper:
    """Moves sealed chunks from the hot tier into the object store."""

    def __init__(
        self,
        source: LokiStore | RingLokiCluster,
        store: ObjectStore,
        index: ShipperIndex,
        clock: SimClock,
        tracer: Tracer | None = None,
        seal_aged: bool = True,
    ) -> None:
        if not isinstance(source, (LokiStore, RingLokiCluster)):
            raise ValidationError(
                "shipper source must be a LokiStore or RingLokiCluster"
            )
        self._source = source
        self._objstore = store
        self._index = index
        self._clock = clock
        self._tracer = tracer
        self._seal_aged = seal_aged
        self.flushes = 0
        self.flush_failures = 0
        #: Failed cycles since the last success — the
        #: ``ObjstoreFlushStalled`` signal: positive for the whole of an
        #: outage, back to zero the moment a flush lands again.
        self.consecutive_failures = 0
        self.chunks_shipped_total = 0
        self.chunks_deduped_total = 0
        self.bytes_shipped_total = 0
        self.bytes_freed_total = 0
        self.last_success_ns: int | None = None
        self.last_failure_ns: int | None = None

    @property
    def bucket(self) -> str:
        return self._index.bucket

    def _stores(self) -> list[LokiStore]:
        if isinstance(self._source, RingLokiCluster):
            return self._source.active_stores()
        return [self._source]

    def _ship_store(self, store: LokiStore, result: FlushResult) -> bool:
        """Flush one store's sealed chunks; True if any PUT happened."""
        put_happened = False
        for labels, chunk in store.sealed_chunks():
            payload = chunk.payload()
            tenant = labels.get(TENANT_LABEL, DEFAULT_TENANT)
            period = self._index.period_of(chunk.first_ts_ns or 0)
            key = chunk_object_key(tenant, labels, period, chunk, payload)
            if self._index.has_key(key):
                # A replica (or WAL-replayed re-seal) of a chunk already
                # shipped: the object is durable, just free the memory.
                result.chunks_deduped += 1
                self.chunks_deduped_total += 1
            else:
                self._objstore.put(self.bucket, key, payload)
                put_happened = True
                self._index.add(
                    ChunkRef(
                        tenant=tenant,
                        labels=labels,
                        first_ts_ns=chunk.first_ts_ns or 0,
                        last_ts_ns=chunk.last_ts_ns or 0,
                        entry_count=chunk.entry_count,
                        size_bytes=len(payload),
                        uncompressed_bytes=chunk.uncompressed_bytes(),
                        key=key,
                        period=period,
                    )
                )
                result.chunks_shipped += 1
                self.chunks_shipped_total += 1
                result.bytes_shipped += len(payload)
                self.bytes_shipped_total += len(payload)
            freed = chunk.stored_bytes()
            store.drop_chunk(labels, chunk)
            result.bytes_freed += freed
            self.bytes_freed_total += freed
        return put_happened

    def flush(self) -> FlushResult:
        """One flush cycle: seal aged chunks, ship everything sealed,
        persist dirty index periods.  Returns this cycle's counts."""
        now = self._clock.now_ns
        self.flushes += 1
        result = FlushResult()
        try:
            if self._seal_aged:
                self._source.flush_aged(now)
            touched_backend = False
            for store in self._stores():
                touched_backend |= self._ship_store(store, result)
            result.index_files = self._index.persist_dirty()
            touched_backend |= result.index_files > 0
            if not touched_backend:
                # Idle cycle: probe the backend so an outage is observed
                # (and counted) even with nothing to ship.
                self._objstore.put(self.bucket, HEARTBEAT_KEY, b"alive")
            self.last_success_ns = now
            self.consecutive_failures = 0
        except ObjectStoreUnavailable:
            result.ok = False
            self.flush_failures += 1
            self.consecutive_failures += 1
            self.last_failure_ns = now
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.record(
                service="shipper",
                name="objstore.flush",
                parent=None,
                start_ns=now,
                end_ns=self._clock.now_ns,
                attributes={
                    "chunks_shipped": str(result.chunks_shipped),
                    "chunks_deduped": str(result.chunks_deduped),
                    "bytes_shipped": str(result.bytes_shipped),
                    "index_files": str(result.index_files),
                },
                status=SpanStatus.OK if result.ok else SpanStatus.ERROR,
            )
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def dedup_ratio(self) -> float:
        """Fraction of flushed chunks that were already cold — ≈ (RF-1)/RF
        on a healthy RF-replicated ring."""
        total = self.chunks_shipped_total + self.chunks_deduped_total
        return self.chunks_deduped_total / total if total else 0.0

    def counters(self) -> dict[str, int]:
        return {
            "flushes": self.flushes,
            "flush_failures": self.flush_failures,
            "consecutive_failures": self.consecutive_failures,
            "chunks_shipped": self.chunks_shipped_total,
            "chunks_deduped": self.chunks_deduped_total,
            "bytes_shipped": self.bytes_shipped_total,
            "bytes_freed": self.bytes_freed_total,
        }
