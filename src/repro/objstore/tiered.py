"""TieredLokiStore: hot + cold behind the ordinary store surface.

The facade the rest of the stack talks to when object storage is on.
Writes go to the hot tier (a single ``LokiStore`` or the RF-3 ring)
unchanged; reads fan out to both tiers and merge per stream with
max-multiplicity semantics, so a window spanning resident and flushed
data returns every entry exactly once even while chunks are mid-flight
(resident *and* shipped).  Maintenance — retention, expiry preview,
flushes — covers both tiers, which is what lets the OMNI retention
manager, the LogQL engine, Promtail and the ruler run unmodified.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.common.labels import LabelSet, Matcher
from repro.loki.model import LogEntry, PushRequest, PushStream
from repro.loki.store import LokiStore, StoreStats
from repro.objstore.compactor import CompactionResult, Compactor
from repro.objstore.gateway import StoreGateway
from repro.objstore.index import ShipperIndex, stream_fingerprint
from repro.objstore.objectstore import ObjectStore
from repro.objstore.shipper import ChunkShipper, FlushResult
from repro.ring.cluster import RingLokiCluster
from repro.ring.distributor import _merge_replicas
from repro.tempo.model import SpanContext


class TieredLokiStore:
    """Hot ingest tier + object-store cold tier, one store surface."""

    #: queryx hint protocol: ``select`` takes ``shard``/``line_contains``
    #: pruning hints.  The shard cut is pushed down to the gateway (refs
    #: pruned before any GET) and applied to hot results by fingerprint;
    #: line hints reach the gateway's bloom gate.
    supports_shard_hints = True
    supports_line_hints = True

    def __init__(
        self,
        hot: LokiStore | RingLokiCluster,
        objstore: ObjectStore,
        index: ShipperIndex,
        shipper: ChunkShipper,
        compactor: Compactor,
        gateway: StoreGateway,
    ) -> None:
        self.hot = hot
        self.objstore = objstore
        self.index = index
        self.shipper = shipper
        self.compactor = compactor
        self.gateway = gateway
        self._hot_is_ring = isinstance(hot, RingLokiCluster)

    # ------------------------------------------------------------------
    # Ingest (hot tier only; the shipper moves data cold later)
    # ------------------------------------------------------------------
    def push(
        self, request: PushRequest, trace_ctx: SpanContext | None = None
    ) -> int:
        if self._hot_is_ring:
            return self.hot.push(request, trace_ctx=trace_ctx)
        return self.hot.push(request)

    def push_stream(
        self,
        labels: LabelSet | Mapping[str, str],
        entries: Iterable[LogEntry],
        trace_ctx: SpanContext | None = None,
    ) -> int:
        if self._hot_is_ring:
            return self.hot.push_stream(labels, entries, trace_ctx=trace_ctx)
        request = PushRequest(
            streams=(
                PushStream(
                    labels=(
                        labels
                        if isinstance(labels, LabelSet)
                        else LabelSet(labels)
                    ),
                    entries=tuple(entries),
                ),
            )
        )
        return self.hot.push(request)

    # ------------------------------------------------------------------
    # Reads: both tiers, merged
    # ------------------------------------------------------------------
    def select(
        self,
        matchers: Iterable[Matcher],
        start_ns: int,
        end_ns: int,
        shard: tuple[int, int] | None = None,
        line_contains: Sequence[str] = (),
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        matchers = list(matchers)
        merged: dict[LabelSet, list[list[LogEntry]]] = {}
        for labels, entries in self.hot.select(matchers, start_ns, end_ns):
            if shard is not None and (
                stream_fingerprint(labels) % shard[1] != shard[0]
            ):
                continue
            merged.setdefault(labels, []).append(entries)
        for labels, entries in self.gateway.select(
            matchers, start_ns, end_ns, shard=shard, line_contains=line_contains
        ):
            merged.setdefault(labels, []).append(entries)
        out = [
            (labels, _merge_replicas(entry_lists))
            for labels, entry_lists in merged.items()
        ]
        out.sort(key=lambda pair: pair[0].items_tuple())
        return out

    # ------------------------------------------------------------------
    # Tier movement
    # ------------------------------------------------------------------
    def flush_all(self) -> int:
        return self.hot.flush_all()

    def flush_aged(self, now_ns: int) -> int:
        return self.hot.flush_aged(now_ns)

    def flush_to_cold(self) -> FlushResult:
        """Seal aged chunks, ship everything sealed, free hot memory."""
        return self.shipper.flush()

    def compact(self) -> CompactionResult:
        return self.compactor.run()

    # ------------------------------------------------------------------
    # Retention across both tiers
    # ------------------------------------------------------------------
    def delete_before(self, cutoff_ns: int) -> int:
        """Chunk-granularity retention on both tiers; returns chunks
        dropped (hot) plus objects deleted (cold)."""
        dropped = self.hot.delete_before(cutoff_ns)
        dropped += self.compactor.delete_chunks_before(cutoff_ns)
        return dropped

    def expired_entries(
        self, cutoff_ns: int
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """What :meth:`delete_before` would doom, hot and cold merged —
        entries flushed but still WAL-resident in a replica count once."""
        merged: dict[LabelSet, list[list[LogEntry]]] = {}
        for labels, entries in self.hot.expired_entries(cutoff_ns):
            merged.setdefault(labels, []).append(entries)
        for labels, entries in self.gateway.expired_entries(cutoff_ns):
            merged.setdefault(labels, []).append(entries)
        out = [
            (labels, _merge_replicas(entry_lists))
            for labels, entry_lists in merged.items()
        ]
        out.sort(key=lambda pair: pair[0].items_tuple())
        return out

    # ------------------------------------------------------------------
    # Accounting: resident figures are the hot tier's (that is the
    # memory story); the cold tier reports its own set
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        return self.hot.stats

    def stream_count(self) -> int:
        hot_labels = set(self.hot.stream_labels())
        return len(hot_labels | self.index.stream_labels())

    def stream_labels(self) -> list[LabelSet]:
        labels = set(self.hot.stream_labels()) | self.index.stream_labels()
        return sorted(labels, key=lambda ls: ls.items_tuple())

    def chunk_count(self) -> int:
        return self.hot.chunk_count()

    def stored_bytes(self) -> int:
        return self.hot.stored_bytes()

    def uncompressed_bytes(self) -> int:
        return self.hot.uncompressed_bytes()

    def index_bytes(self) -> int:
        return self.hot.index_bytes()

    def compression_ratio(self) -> float:
        return self.hot.compression_ratio()

    def oldest_entry_ns(self) -> int | None:
        candidates = [
            ts
            for ts in (self.hot.oldest_entry_ns(), self.gateway.oldest_entry_ns())
            if ts is not None
        ]
        return min(candidates) if candidates else None

    # Cold-tier accounting for the exporter / storage report.
    def cold_chunk_count(self) -> int:
        return self.index.ref_count()

    def cold_bytes(self) -> int:
        return self.objstore.stored_bytes(self.index.bucket)

    def cold_entry_count(self) -> int:
        return self.index.entry_count()
