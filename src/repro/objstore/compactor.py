"""The compactor: fewer, bigger, deduplicated cold objects.

Three jobs, same as Loki's compactor component:

* **Merge** — within one index period, a stream's many small chunk
  objects are fetched, merged in timestamp order, and rewritten as few
  target-sized objects; the small originals are deleted.  Entry-level
  duplicates (divergent replica chunks from crash windows, where content
  hashing could not dedup at ship time) collapse here via the same
  max-multiplicity merge the ring's read path uses.
* **Retention** — per-tenant (or default) horizons delete every chunk
  wholly older than the cutoff; straddling chunks survive, exactly like
  the hot store's ``delete_before``.
* **Delete requests** — explicit, tenant-scoped, matcher + time-window
  requests (GDPR-style) processed at chunk granularity on the next run.

Each run finishes by persisting dirty index periods and collapsing every
period's snapshot pile to a single file.  An outage aborts the run and
counts a failure; whatever was already rewritten stays consistent
because an object is only deleted after its replacement is durable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet, Matcher
from repro.common.simclock import SimClock
from repro.loki.chunks import Chunk, ChunkPolicy
from repro.loki.model import LogEntry
from repro.objstore.index import ChunkRef, ShipperIndex, chunk_object_key
from repro.objstore.objectstore import ObjectStore, ObjectStoreUnavailable
from repro.ring.distributor import _merge_replicas
from repro.tempo.model import SpanStatus
from repro.tempo.tracer import Tracer

# Merged chunks are sealed by size only; a compactor never ages chunks.
_NEVER_AGE_NS = 10**18


@dataclass(frozen=True)
class CompactionPolicy:
    """When to merge: any stream with at least ``min_merge_chunks`` in a
    period is rewritten into objects of ~``target_object_bytes``."""

    target_object_bytes: int = 1 << 20
    min_merge_chunks: int = 2

    def __post_init__(self) -> None:
        if self.target_object_bytes < 1:
            raise ValidationError("target object size must be positive")
        if self.min_merge_chunks < 2:
            raise ValidationError("min_merge_chunks must be >= 2")


@dataclass
class DeleteRequest:
    """An explicit chunk-level delete: tenant + matchers + time window.

    Processed on the next compactor run; only chunks *wholly inside*
    ``[start_ns, end_ns)`` are deleted (chunk granularity, like Loki)."""

    request_id: int
    tenant: str
    matchers: tuple[Matcher, ...]
    start_ns: int
    end_ns: int
    processed: bool = False
    chunks_deleted: int = 0


@dataclass
class CompactionResult:
    """One run's outcome."""

    ok: bool = True
    groups_examined: int = 0
    chunks_merged: int = 0
    chunks_written: int = 0
    objects_deleted: int = 0
    entries_in: int = 0
    entries_out: int = 0
    duplicates_dropped: int = 0
    retention_chunks_deleted: int = 0
    delete_requests_processed: int = 0
    index_files_removed: int = 0
    bloom_blocks_built: int = 0
    pattern_blocks_built: int = 0


class Compactor:
    """Merges, deduplicates and expires cold chunks period by period."""

    def __init__(
        self,
        store: ObjectStore,
        index: ShipperIndex,
        clock: SimClock,
        policy: CompactionPolicy | None = None,
        default_retention_ns: int | None = None,
        tenant_retention_ns: dict[str, int] | None = None,
        tracer: Tracer | None = None,
        blooms=None,
        patterns=None,
    ) -> None:
        self._objstore = store
        self._index = index
        self._clock = clock
        self.policy = policy or CompactionPolicy()
        self.default_retention_ns = default_retention_ns
        self.tenant_retention_ns = dict(tenant_retention_ns or {})
        self._tracer = tracer
        #: Optional ``repro.queryx.bloom.BloomStore`` (duck-typed; the
        #: compactor is the bloom *writer* — it already holds every
        #: stream-period's entries when it runs).
        self.blooms = blooms
        #: Optional ``repro.patterns.store.PatternStore`` (duck-typed,
        #: same contract as blooms): the compactor re-mines pattern
        #: blocks for stream-periods that have no live block or whose
        #: chunk coverage changed.
        self.patterns = patterns
        self._chunk_policy = ChunkPolicy(
            target_size_bytes=self.policy.target_object_bytes,
            max_age_ns=_NEVER_AGE_NS,
        )
        self.delete_requests: list[DeleteRequest] = []
        self._next_request_id = 1
        self.runs = 0
        self.run_failures = 0
        self.bloom_blocks_built_total = 0
        self.pattern_blocks_built_total = 0
        self.chunks_merged_total = 0
        self.chunks_written_total = 0
        self.duplicates_dropped_total = 0
        self.retention_deleted_total = 0
        self.delete_requests_total = 0
        self.index_files_removed_total = 0
        self.last_success_ns: int | None = None

    @property
    def bucket(self) -> str:
        return self._index.bucket

    # ------------------------------------------------------------------
    # Delete requests
    # ------------------------------------------------------------------
    def request_delete(
        self,
        tenant: str,
        matchers: list[Matcher] | tuple[Matcher, ...],
        start_ns: int,
        end_ns: int,
    ) -> DeleteRequest:
        if end_ns <= start_ns:
            raise ValidationError("delete request needs a non-empty window")
        request = DeleteRequest(
            request_id=self._next_request_id,
            tenant=tenant,
            matchers=tuple(matchers),
            start_ns=start_ns,
            end_ns=end_ns,
        )
        self._next_request_id += 1
        self.delete_requests.append(request)
        return request

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def _fetch_entries(self, ref: ChunkRef) -> list[LogEntry]:
        payload = self._objstore.get(self.bucket, ref.key)
        chunk = Chunk.restore(
            self._chunk_policy,
            payload,
            ref.first_ts_ns,
            ref.last_ts_ns,
            ref.entry_count,
            ref.uncompressed_bytes,
        )
        return chunk.entries()

    def _rebuild_chunks(self, entries: list[LogEntry]) -> list[Chunk]:
        chunks: list[Chunk] = []
        current: Chunk | None = None
        for entry in entries:
            if current is None or not current.space_for(entry):
                if current is not None:
                    current.seal()
                current = Chunk(self._chunk_policy)
                chunks.append(current)
            current.append(entry)
        if current is not None:
            current.seal()
        return chunks

    def _delete_ref(self, ref: ChunkRef) -> None:
        self._objstore.delete(self.bucket, ref.key)
        self._index.remove(ref.key)

    def _compact_group(
        self,
        tenant: str,
        labels: LabelSet,
        refs: list[ChunkRef],
        result: CompactionResult,
    ) -> None:
        refs = sorted(refs, key=lambda r: (r.first_ts_ns, r.last_ts_ns, r.key))
        entry_lists = [self._fetch_entries(ref) for ref in refs]
        entries_in = sum(len(entries) for entries in entry_lists)
        # Max-multiplicity merge: disjoint sequential chunks concatenate
        # unchanged; overlapping divergent-replica chunks dedup per
        # (timestamp, line), the same semantics the ring read path uses.
        merged = _merge_replicas(entry_lists)
        new_chunks = self._rebuild_chunks(merged)
        new_keys: set[str] = set()
        for chunk in new_chunks:
            payload = chunk.payload()
            period = self._index.period_of(chunk.first_ts_ns or 0)
            key = chunk_object_key(tenant, labels, period, chunk, payload)
            new_keys.add(key)
            if not self._index.has_key(key):
                self._objstore.put(self.bucket, key, payload)
                self._index.add(
                    ChunkRef(
                        tenant=tenant,
                        labels=labels,
                        first_ts_ns=chunk.first_ts_ns or 0,
                        last_ts_ns=chunk.last_ts_ns or 0,
                        entry_count=chunk.entry_count,
                        size_bytes=len(payload),
                        uncompressed_bytes=chunk.uncompressed_bytes(),
                        key=key,
                        period=period,
                    )
                )
                result.chunks_written += 1
                self.chunks_written_total += 1
        for ref in refs:
            if ref.key not in new_keys:
                self._delete_ref(ref)
                result.objects_deleted += 1
        result.chunks_merged += len(refs)
        self.chunks_merged_total += len(refs)
        result.entries_in += entries_in
        result.entries_out += len(merged)
        result.duplicates_dropped += entries_in - len(merged)
        self.duplicates_dropped_total += entries_in - len(merged)

    def _compact_period(self, period: int, result: CompactionResult) -> None:
        groups: dict[tuple[str, LabelSet], list[ChunkRef]] = {}
        for ref in self._index.refs_in_period(period):
            groups.setdefault((ref.tenant, ref.labels), []).append(ref)
        for (tenant, labels), refs in sorted(
            groups.items(), key=lambda kv: (kv[0][0], kv[0][1].items_tuple())
        ):
            result.groups_examined += 1
            if len(refs) < self.policy.min_merge_chunks:
                continue
            self._compact_group(tenant, labels, refs, result)

    # ------------------------------------------------------------------
    # Bloom blocks
    # ------------------------------------------------------------------
    def _build_blooms(self, result: CompactionResult) -> None:
        """(Re)build the bloom block of every stream-period group whose
        chunk coverage changed since the last build.

        Runs after merge/retention/deletes so the blocks describe the
        bucket as it will be read.  Coverage is pinned to the exact
        chunk-key set: a chunk shipped after this run is outside every
        block and therefore never skipped on a stale bloom's word.
        """
        assert self.blooms is not None
        for period in self._index.periods():
            groups: dict[tuple[str, LabelSet], list[ChunkRef]] = {}
            for ref in self._index.refs_in_period(period):
                groups.setdefault((ref.tenant, ref.labels), []).append(ref)
            for (tenant, labels), refs in sorted(
                groups.items(), key=lambda kv: (kv[0][0], kv[0][1].items_tuple())
            ):
                keys = {ref.key for ref in refs}
                if not self.blooms.needs_build(tenant, labels, period, keys):
                    continue
                entry_lists = [self._fetch_entries(ref) for ref in refs]
                self.blooms.build_block(
                    tenant, labels, period, _merge_replicas(entry_lists), keys
                )
                result.bloom_blocks_built += 1
                self.bloom_blocks_built_total += 1

    # ------------------------------------------------------------------
    # Pattern blocks
    # ------------------------------------------------------------------
    def _build_patterns(self, result: CompactionResult) -> None:
        """Re-mine pattern blocks for stream-periods the store cannot
        answer from live mining: a cold restart, or a compacted block
        whose chunk coverage changed.  Live blocks are authoritative and
        ``needs_build`` declines them."""
        assert self.patterns is not None
        for period in self._index.periods():
            groups: dict[tuple[str, LabelSet], list[ChunkRef]] = {}
            for ref in self._index.refs_in_period(period):
                groups.setdefault((ref.tenant, ref.labels), []).append(ref)
            for (tenant, labels), refs in sorted(
                groups.items(), key=lambda kv: (kv[0][0], kv[0][1].items_tuple())
            ):
                keys = {ref.key for ref in refs}
                if not self.patterns.needs_build(tenant, labels, period, keys):
                    continue
                entry_lists = [self._fetch_entries(ref) for ref in refs]
                self.patterns.build_block(
                    tenant, labels, period, _merge_replicas(entry_lists), keys
                )
                result.pattern_blocks_built += 1
                self.pattern_blocks_built_total += 1

    # ------------------------------------------------------------------
    # Retention and deletes
    # ------------------------------------------------------------------
    def delete_chunks_before(
        self, cutoff_ns: int, tenant: str | None = None
    ) -> int:
        """Drop every cold chunk wholly before ``cutoff_ns``; straddling
        chunks are kept (chunk granularity).  Returns chunks deleted."""
        deleted = 0
        for ref in self._index.refs_wholly_before(cutoff_ns, tenant=tenant):
            self._delete_ref(ref)
            deleted += 1
        return deleted

    def _apply_retention(self, now_ns: int, result: CompactionResult) -> None:
        for tenant in self._index.tenants():
            horizon = self.tenant_retention_ns.get(
                tenant, self.default_retention_ns
            )
            if horizon is None:
                continue
            deleted = self.delete_chunks_before(now_ns - horizon, tenant=tenant)
            result.retention_chunks_deleted += deleted
            self.retention_deleted_total += deleted

    def _apply_delete_requests(self, result: CompactionResult) -> None:
        for request in self.delete_requests:
            if request.processed:
                continue
            doomed = [
                ref
                for ref in self._index.refs_overlapping(
                    request.start_ns, request.end_ns, tenant=request.tenant,
                    matchers=request.matchers,
                )
                if ref.first_ts_ns >= request.start_ns
                and ref.last_ts_ns < request.end_ns
            ]
            for ref in doomed:
                self._delete_ref(ref)
                result.objects_deleted += 1
            request.chunks_deleted = len(doomed)
            request.processed = True
            result.delete_requests_processed += 1
            self.delete_requests_total += 1

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self) -> CompactionResult:
        """One full compaction cycle over every period."""
        now = self._clock.now_ns
        self.runs += 1
        result = CompactionResult()
        try:
            for period in self._index.periods():
                self._compact_period(period, result)
            self._apply_delete_requests(result)
            if self.default_retention_ns is not None or self.tenant_retention_ns:
                self._apply_retention(now, result)
            if self.blooms is not None:
                self._build_blooms(result)
            if self.patterns is not None:
                self._build_patterns(result)
            self._index.persist_dirty()
            for period in self._index.periods():
                removed = self._index.compact_period_files(period)
                result.index_files_removed += removed
                self.index_files_removed_total += removed
            self.last_success_ns = now
        except ObjectStoreUnavailable:
            result.ok = False
            self.run_failures += 1
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.record(
                service="compactor",
                name="objstore.compact",
                parent=None,
                start_ns=now,
                end_ns=self._clock.now_ns,
                attributes={
                    "chunks_merged": str(result.chunks_merged),
                    "chunks_written": str(result.chunks_written),
                    "duplicates_dropped": str(result.duplicates_dropped),
                    "retention_deleted": str(result.retention_chunks_deleted),
                },
                status=SpanStatus.OK if result.ok else SpanStatus.ERROR,
            )
        return result

    def counters(self) -> dict[str, int]:
        return {
            "runs": self.runs,
            "run_failures": self.run_failures,
            "chunks_merged": self.chunks_merged_total,
            "chunks_written": self.chunks_written_total,
            "duplicates_dropped": self.duplicates_dropped_total,
            "retention_deleted": self.retention_deleted_total,
            "delete_requests": self.delete_requests_total,
            "index_files_removed": self.index_files_removed_total,
            "bloom_blocks_built": self.bloom_blocks_built_total,
            "pattern_blocks_built": self.pattern_blocks_built_total,
        }
