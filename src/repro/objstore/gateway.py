"""The store-gateway: historical selects served from the object store.

The gateway is the read half of the cold tier.  A select consults the
shipper index for overlapping chunk refs (matcher filtering happens on
ref metadata — no chunk is fetched unless its stream matches and its
time bounds overlap), GETs each payload, restores the chunk, and merges
per stream with the same max-multiplicity semantics the ring uses — so
divergent replica chunks that were shipped before the compactor could
dedup them still read back exactly once.

Latency is accounted per query from the object store's charge model;
``last_query_latency_ns`` is what bench S1 prices cold reads with.

Two pushed-down pruning hints cut the fetch set before any GET is paid
(both optional, both exact):

* ``shard=(i, n)`` keeps only refs whose stream fingerprint lands in
  shard ``i`` of ``n`` — the queryx engine's stream partition;
* ``line_contains=(needles...)`` consults the bloom store (when one is
  attached): a chunk whose bloom block proves a needle absent is
  skipped.  Blooms never produce false negatives and only blocks that
  *cover* a ref may veto it, so skipped chunks cannot change answers.

``chunks_considered`` / ``chunks_fetched`` / ``chunks_skipped`` count
the pruning per query and in total — the numbers Q1 and the "Query
Engine" dashboard report.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.errors import ValidationError
from repro.common.labels import LabelSet, Matcher
from repro.common.simclock import SimClock
from repro.loki.chunks import Chunk, ChunkPolicy
from repro.loki.model import LogEntry
from repro.objstore.index import ChunkRef, ShipperIndex, stream_fingerprint
from repro.objstore.objectstore import ObjectStore
from repro.ring.distributor import _merge_replicas
from repro.tempo.tracer import Tracer


class StoreGateway:
    """Selects over shipped chunks, transparently to the querier."""

    #: The queryx hint protocol: ``select`` accepts ``shard`` and
    #: ``line_contains`` keyword pruning hints.
    supports_shard_hints = True
    supports_line_hints = True

    def __init__(
        self,
        store: ObjectStore,
        index: ShipperIndex,
        clock: SimClock,
        policy: ChunkPolicy | None = None,
        tracer: Tracer | None = None,
        blooms=None,
        patterns=None,
    ) -> None:
        self._objstore = store
        self._index = index
        self._clock = clock
        self._policy = policy or ChunkPolicy()
        self._tracer = tracer
        #: Optional ``repro.queryx.bloom.BloomStore`` (duck-typed so the
        #: storage layer carries no dependency on the query engine).
        self.blooms = blooms
        #: Optional ``repro.patterns.store.PatternStore`` (duck-typed):
        #: lets ``detected_patterns`` answer cold, from blocks the
        #: compactor rebuilt out of shipped chunks.
        self.patterns = patterns
        self.queries = 0
        self.chunks_fetched_total = 0
        self.bytes_fetched_total = 0
        self.fetch_latency_ns_total = 0
        self.last_query_latency_ns = 0
        self.chunks_considered_total = 0
        self.chunks_skipped_total = 0
        self.last_chunks_considered = 0
        self.last_chunks_fetched = 0
        self.last_chunks_skipped = 0

    @property
    def bucket(self) -> str:
        return self._index.bucket

    def _fetch(self, ref: ChunkRef) -> tuple[Chunk, int]:
        payload, latency = self._objstore.get_with_latency(self.bucket, ref.key)
        chunk = Chunk.restore(
            self._policy,
            payload,
            ref.first_ts_ns,
            ref.last_ts_ns,
            ref.entry_count,
            ref.uncompressed_bytes,
        )
        self.chunks_fetched_total += 1
        self.bytes_fetched_total += len(payload)
        return chunk, latency

    def _merge_per_stream(
        self, fetched: list[tuple[LabelSet, list[LogEntry]]]
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        per_stream: dict[LabelSet, list[list[LogEntry]]] = {}
        for labels, entries in fetched:
            if entries:
                per_stream.setdefault(labels, []).append(entries)
        out = [
            (labels, _merge_replicas(entry_lists))
            for labels, entry_lists in per_stream.items()
        ]
        out.sort(key=lambda pair: pair[0].items_tuple())
        return out

    def select(
        self,
        matchers: Iterable[Matcher],
        start_ns: int,
        end_ns: int,
        tenant: str | None = None,
        shard: tuple[int, int] | None = None,
        line_contains: Sequence[str] = (),
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Cold entries per matching stream with ``start <= ts < end``."""
        started = self._clock.now_ns
        self.queries += 1
        refs = self._index.refs_overlapping(
            start_ns, end_ns, tenant=tenant, matchers=list(matchers)
        )
        considered = len(refs)
        if shard is not None:
            shard_index, shard_count = shard
            refs = [
                ref
                for ref in refs
                if stream_fingerprint(ref.labels) % shard_count == shard_index
            ]
            # Off-shard refs belong to another subquery, not to this
            # query's pruning story: they are not "considered" here.
            considered = len(refs)
        skipped = 0
        if self.blooms is not None and line_contains:
            kept = []
            for ref in refs:
                if self.blooms.can_skip(ref, line_contains):
                    skipped += 1
                else:
                    kept.append(ref)
            refs = kept
        latency = 0
        fetched: list[tuple[LabelSet, list[LogEntry]]] = []
        for ref in refs:
            chunk, chunk_latency = self._fetch(ref)
            latency += chunk_latency
            fetched.append((ref.labels, chunk.entries_between(start_ns, end_ns)))
        self.last_query_latency_ns = latency
        self.fetch_latency_ns_total += latency
        self.last_chunks_considered = considered
        self.last_chunks_fetched = len(refs)
        self.last_chunks_skipped = skipped
        self.chunks_considered_total += considered
        self.chunks_skipped_total += skipped
        out = self._merge_per_stream(fetched)
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.record(
                service="store-gateway",
                name="objstore.select",
                parent=None,
                start_ns=started,
                end_ns=self._clock.now_ns,
                attributes={
                    "chunks_considered": str(considered),
                    "chunks_fetched": str(len(refs)),
                    "chunks_skipped": str(skipped),
                    "streams": str(len(out)),
                    "cold_latency_ns": str(latency),
                },
            )
        return out

    def detected_patterns(
        self,
        matchers: Sequence[Matcher],
        start_ns: int,
        end_ns: int,
        tenant: str | None = None,
    ) -> list:
        """Cold ``detected_patterns``: answered from the pattern blocks
        the compactor rebuilt beside the chunks, no chunk GET paid."""
        if self.patterns is None:
            raise ValidationError("no pattern store attached to the gateway")
        return self.patterns.query(matchers, start_ns, end_ns, tenant=tenant)

    def expired_entries(
        self, cutoff_ns: int, tenant: str | None = None
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Entries cold retention would drop at ``cutoff_ns`` (chunks
        wholly before the cutoff) — what a retention sweep archives."""
        fetched: list[tuple[LabelSet, list[LogEntry]]] = []
        for ref in self._index.refs_wholly_before(cutoff_ns, tenant=tenant):
            chunk, _ = self._fetch(ref)
            fetched.append((ref.labels, chunk.entries()))
        return self._merge_per_stream(fetched)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def oldest_entry_ns(self) -> int | None:
        return self._index.oldest_first_ts()

    def skip_ratio(self) -> float:
        """Fraction of considered chunks the blooms let us not fetch."""
        if self.chunks_considered_total == 0:
            return 0.0
        return self.chunks_skipped_total / self.chunks_considered_total

    def counters(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "chunks_considered": self.chunks_considered_total,
            "chunks_fetched": self.chunks_fetched_total,
            "chunks_skipped": self.chunks_skipped_total,
            "bytes_fetched": self.bytes_fetched_total,
            "fetch_latency_ns": self.fetch_latency_ns_total,
        }
