"""The store-gateway: historical selects served from the object store.

The gateway is the read half of the cold tier.  A select consults the
shipper index for overlapping chunk refs (matcher filtering happens on
ref metadata — no chunk is fetched unless its stream matches and its
time bounds overlap), GETs each payload, restores the chunk, and merges
per stream with the same max-multiplicity semantics the ring uses — so
divergent replica chunks that were shipped before the compactor could
dedup them still read back exactly once.

Latency is accounted per query from the object store's charge model;
``last_query_latency_ns`` is what bench S1 prices cold reads with.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.labels import LabelSet, Matcher
from repro.common.simclock import SimClock
from repro.loki.chunks import Chunk, ChunkPolicy
from repro.loki.model import LogEntry
from repro.objstore.index import ChunkRef, ShipperIndex
from repro.objstore.objectstore import ObjectStore
from repro.ring.distributor import _merge_replicas
from repro.tempo.tracer import Tracer


class StoreGateway:
    """Selects over shipped chunks, transparently to the querier."""

    def __init__(
        self,
        store: ObjectStore,
        index: ShipperIndex,
        clock: SimClock,
        policy: ChunkPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._objstore = store
        self._index = index
        self._clock = clock
        self._policy = policy or ChunkPolicy()
        self._tracer = tracer
        self.queries = 0
        self.chunks_fetched_total = 0
        self.bytes_fetched_total = 0
        self.fetch_latency_ns_total = 0
        self.last_query_latency_ns = 0

    @property
    def bucket(self) -> str:
        return self._index.bucket

    def _fetch(self, ref: ChunkRef) -> tuple[Chunk, int]:
        payload, latency = self._objstore.get_with_latency(self.bucket, ref.key)
        chunk = Chunk.restore(
            self._policy,
            payload,
            ref.first_ts_ns,
            ref.last_ts_ns,
            ref.entry_count,
            ref.uncompressed_bytes,
        )
        self.chunks_fetched_total += 1
        self.bytes_fetched_total += len(payload)
        return chunk, latency

    def _merge_per_stream(
        self, fetched: list[tuple[LabelSet, list[LogEntry]]]
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        per_stream: dict[LabelSet, list[list[LogEntry]]] = {}
        for labels, entries in fetched:
            if entries:
                per_stream.setdefault(labels, []).append(entries)
        out = [
            (labels, _merge_replicas(entry_lists))
            for labels, entry_lists in per_stream.items()
        ]
        out.sort(key=lambda pair: pair[0].items_tuple())
        return out

    def select(
        self,
        matchers: Iterable[Matcher],
        start_ns: int,
        end_ns: int,
        tenant: str | None = None,
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Cold entries per matching stream with ``start <= ts < end``."""
        started = self._clock.now_ns
        self.queries += 1
        refs = self._index.refs_overlapping(
            start_ns, end_ns, tenant=tenant, matchers=list(matchers)
        )
        latency = 0
        fetched: list[tuple[LabelSet, list[LogEntry]]] = []
        for ref in refs:
            chunk, chunk_latency = self._fetch(ref)
            latency += chunk_latency
            fetched.append((ref.labels, chunk.entries_between(start_ns, end_ns)))
        self.last_query_latency_ns = latency
        self.fetch_latency_ns_total += latency
        out = self._merge_per_stream(fetched)
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.record(
                service="store-gateway",
                name="objstore.select",
                parent=None,
                start_ns=started,
                end_ns=self._clock.now_ns,
                attributes={
                    "chunks_fetched": str(len(refs)),
                    "streams": str(len(out)),
                    "cold_latency_ns": str(latency),
                },
            )
        return out

    def expired_entries(
        self, cutoff_ns: int, tenant: str | None = None
    ) -> list[tuple[LabelSet, list[LogEntry]]]:
        """Entries cold retention would drop at ``cutoff_ns`` (chunks
        wholly before the cutoff) — what a retention sweep archives."""
        fetched: list[tuple[LabelSet, list[LogEntry]]] = []
        for ref in self._index.refs_wholly_before(cutoff_ns, tenant=tenant):
            chunk, _ = self._fetch(ref)
            fetched.append((ref.labels, chunk.entries()))
        return self._merge_per_stream(fetched)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def oldest_entry_ns(self) -> int | None:
        return self._index.oldest_first_ts()

    def counters(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "chunks_fetched": self.chunks_fetched_total,
            "bytes_fetched": self.bytes_fetched_total,
            "fetch_latency_ns": self.fetch_latency_ns_total,
        }
