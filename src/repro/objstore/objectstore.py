"""A simulated S3-compatible object store: the cold tier's substrate.

Buckets hold opaque blobs under flat keys; "directories" are only key
prefixes, exactly like S3.  Every operation *accounts* a latency —
returned to the caller and accumulated in counters so benches can price
cold reads against hot ones — but never advances the simulation clock
itself: object-store calls happen inside scheduled callbacks, and a
callback that moved the clock would corrupt the event loop.

Fault injection mirrors the chaos framework's needs: an *outage* makes
every operation raise :class:`ObjectStoreUnavailable` (S3 5xx), a
*slowdown* multiplies accounted latencies (degraded backend / saturated
uplink).  Both are reversible toggles driven by ``OBJSTORE_OUTAGE`` /
``OBJSTORE_SLOW`` faults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.common.simclock import NANOS_PER_SECOND, SimClock


class ObjectStoreUnavailable(StateError):
    """The backend is down (S3 5xx): the operation did not happen."""


@dataclass(frozen=True)
class ObjectStoreConfig:
    """Per-operation base latencies plus a size-dependent transfer term.

    Defaults sketch an S3-over-WAN profile: tens of milliseconds per
    request, ~100 MiB/s of streaming throughput.  All values are
    *accounted*, not slept.
    """

    put_latency_ns: int = 30_000_000
    get_latency_ns: int = 15_000_000
    delete_latency_ns: int = 10_000_000
    list_latency_ns: int = 20_000_000
    throughput_bytes_per_sec: int = 100 * 1024 * 1024

    def __post_init__(self) -> None:
        for name in (
            "put_latency_ns",
            "get_latency_ns",
            "delete_latency_ns",
            "list_latency_ns",
        ):
            if getattr(self, name) < 0:
                raise ValidationError(f"{name} must be >= 0")
        if self.throughput_bytes_per_sec < 1:
            raise ValidationError("throughput must be positive")


@dataclass
class _Object:
    data: bytes
    created_ns: int


class ObjectStore:
    """In-memory S3 lookalike with latency accounting and chaos toggles."""

    def __init__(
        self, clock: SimClock, config: ObjectStoreConfig | None = None
    ) -> None:
        self._clock = clock
        self.config = config or ObjectStoreConfig()
        self._buckets: dict[str, dict[str, _Object]] = {}
        self._outage = False
        self._slowdown = 1.0
        # Operation counters for the exporter.
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.lists = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.overwrites = 0
        self.outage_rejections = 0
        self.total_latency_ns = 0

    # ------------------------------------------------------------------
    # Fault toggles
    # ------------------------------------------------------------------
    @property
    def outage(self) -> bool:
        return self._outage

    @property
    def slowdown(self) -> float:
        return self._slowdown

    def set_outage(self, down: bool) -> None:
        self._outage = bool(down)

    def set_slowdown(self, factor: float) -> None:
        if factor < 1.0:
            raise ValidationError("slowdown factor must be >= 1.0")
        self._slowdown = float(factor)

    # ------------------------------------------------------------------
    # Latency accounting
    # ------------------------------------------------------------------
    def _charge(self, base_ns: int, nbytes: int = 0) -> int:
        if self._outage:
            self.outage_rejections += 1
            raise ObjectStoreUnavailable("object store is unavailable")
        transfer_ns = nbytes * NANOS_PER_SECOND // self.config.throughput_bytes_per_sec
        latency = int((base_ns + transfer_ns) * self._slowdown)
        self.total_latency_ns += latency
        return latency

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def put(self, bucket: str, key: str, data: bytes) -> int:
        """Store ``data`` under ``bucket/key``; returns accounted latency.

        Last-writer-wins overwrite, like S3 — callers that must not
        clobber check existence first (our keys are content-addressed, so
        an overwrite writes identical bytes anyway)."""
        if not bucket or not key:
            raise ValidationError("bucket and key must be non-empty")
        latency = self._charge(self.config.put_latency_ns, len(data))
        objects = self._buckets.setdefault(bucket, {})
        if key in objects:
            self.overwrites += 1
        objects[key] = _Object(bytes(data), self._clock.now_ns)
        self.puts += 1
        self.bytes_in += len(data)
        return latency

    def get_with_latency(self, bucket: str, key: str) -> tuple[bytes, int]:
        latency = self._charge(self.config.get_latency_ns)
        obj = self._buckets.get(bucket, {}).get(key)
        if obj is None:
            raise NotFoundError(f"no such object: {bucket}/{key}")
        # Transfer cost is only known once the object is found.
        transfer_ns = int(
            len(obj.data)
            * NANOS_PER_SECOND
            // self.config.throughput_bytes_per_sec
            * self._slowdown
        )
        self.total_latency_ns += transfer_ns
        self.gets += 1
        self.bytes_out += len(obj.data)
        return obj.data, latency + transfer_ns

    def get(self, bucket: str, key: str) -> bytes:
        return self.get_with_latency(bucket, key)[0]

    def head(self, bucket: str, key: str) -> bool:
        """Existence check (charged like a GET without the transfer)."""
        self._charge(self.config.get_latency_ns)
        return key in self._buckets.get(bucket, {})

    def delete(self, bucket: str, key: str) -> bool:
        """Delete an object; returns whether it existed (S3 is idempotent
        here, and so are we)."""
        self._charge(self.config.delete_latency_ns)
        removed = self._buckets.get(bucket, {}).pop(key, None)
        self.deletes += 1
        return removed is not None

    def list_keys(self, bucket: str, prefix: str = "") -> list[str]:
        """Keys under ``prefix``, sorted — per-tenant listings are just
        prefix listings, as on real S3."""
        self._charge(self.config.list_latency_ns)
        self.lists += 1
        return sorted(
            k for k in self._buckets.get(bucket, {}) if k.startswith(prefix)
        )

    # ------------------------------------------------------------------
    # Introspection (uncharged: the exporter's view, not a client's)
    # ------------------------------------------------------------------
    def buckets(self) -> list[str]:
        return sorted(self._buckets)

    def object_count(self, bucket: str | None = None, prefix: str = "") -> int:
        if bucket is not None:
            return sum(
                1 for k in self._buckets.get(bucket, {}) if k.startswith(prefix)
            )
        return sum(len(objects) for objects in self._buckets.values())

    def stored_bytes(self, bucket: str | None = None, prefix: str = "") -> int:
        if bucket is not None:
            return sum(
                len(o.data)
                for k, o in self._buckets.get(bucket, {}).items()
                if k.startswith(prefix)
            )
        return sum(
            len(o.data)
            for objects in self._buckets.values()
            for o in objects.values()
        )

    def counters(self) -> dict[str, int]:
        return {
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "lists": self.lists,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "overwrites": self.overwrites,
            "outage_rejections": self.outage_rejections,
            "total_latency_ns": self.total_latency_ns,
        }
